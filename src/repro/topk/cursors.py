"""Sorted-access cursors over pattern matches.

A cursor exposes two operations:

* ``peek()`` — an upper bound on the score of the next item (None when
  exhausted).  Peeking may be optimistic before the cursor has *opened*
  (computed or fetched its underlying list); after opening, peek is exact.
* ``pop()`` — the next :class:`ScoredMatch` in descending score order.

:class:`PostingCursor` walks a store posting list (optionally attenuated by
a relaxation weight and token-match similarities).
:class:`MaterializedJoinCursor` serves a multi-pattern relaxation (e.g. the
chain expansion of Figure 4 rule 3): it lazily evaluates the replacement
sub-join, projects it onto the original pattern's variables, and serves the
results sorted.  Laziness matters — the sub-join is only computed if the
merged stream actually asks for it, which is the paper's "invoking a
relaxation only when it can contribute to the top-k answers".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from repro.core.results import BindingKey, PatternMatchInfo, QueryStats, binding_key
from repro.core.terms import Term, Variable
from repro.core.triples import TriplePattern
from repro.relax.rules import RelaxationRule
from repro.scoring.language_model import PatternScorer
from repro.storage.store import StoredTriple, TripleStore
from repro.storage.text_index import TokenMatch


@dataclass(frozen=True)
class ScoredMatch:
    """One match emitted by a cursor: a binding, its score, and provenance."""

    binding: BindingKey
    score: float
    info: PatternMatchInfo


class Cursor(Protocol):
    """Sorted-access protocol; see module docstring."""

    def peek(self) -> float | None: ...

    def pop(self) -> ScoredMatch | None: ...

    def ensure_exact(self) -> bool:
        """Make ``peek`` exact; return True if it already was.

        Cursors with optimistic bounds (unmaterialised sub-joins) do their
        expensive work here; the merged stream calls this only when the
        cursor's bound has reached the head — the adaptive-invocation point.
        """
        ...


class PostingCursor:
    """Sorted access over one pattern's posting list.

    Parameters
    ----------
    store, scorer:
        Storage and the pattern scorer.
    pattern:
        The concrete pattern to evaluate (constants may include exact token
        phrases).
    multiplier:
        Attenuation from relaxation weight × token-match similarity; all
        emitted scores are ``multiplier × P(t | pattern)``.
    rule, token_matches:
        Provenance carried into each emitted match.
    stats:
        Work counters (sorted accesses, cursor opens) shared with the
        processor.
    """

    def __init__(
        self,
        store: TripleStore,
        scorer: PatternScorer,
        pattern: TriplePattern,
        *,
        multiplier: float = 1.0,
        rule: RelaxationRule | None = None,
        token_matches: tuple[TokenMatch, ...] = (),
        stats: QueryStats | None = None,
    ):
        self.store = store
        self.scorer = scorer
        self.pattern = pattern
        self.multiplier = multiplier
        self.rule = rule
        self.token_matches = token_matches
        self.stats = stats
        self._ids: Sequence[int] | None = None
        self._position = 0
        self._needs_filter = _has_repeated_variable(pattern)

    def _open(self) -> None:
        if self._ids is None:
            self._ids = self.store.sorted_ids(self.pattern)
            if self.stats is not None:
                self.stats.cursors_opened += 1

    def _current_record(self) -> StoredTriple | None:
        """Advance past filtered-out entries; return the record at position."""
        self._open()
        assert self._ids is not None
        while self._position < len(self._ids):
            record = self.store.record(self._ids[self._position])
            if not self._needs_filter or self.pattern.bind(record.triple) is not None:
                return record
            self._position += 1
        return None

    def peek(self) -> float | None:
        record = self._current_record()
        if record is None:
            return None
        return self.multiplier * self.scorer.score(self.pattern, record)

    def ensure_exact(self) -> bool:
        """Posting peeks are exact (peeking opens the list); always True."""
        return True

    def pop(self) -> ScoredMatch | None:
        record = self._current_record()
        if record is None:
            return None
        self._position += 1
        if self.stats is not None:
            self.stats.sorted_accesses += 1
        binding = self.pattern.bind(record.triple)
        assert binding is not None  # _current_record guarantees a match
        score = self.multiplier * self.scorer.score(self.pattern, record)
        info = PatternMatchInfo(
            pattern=self.pattern,
            records=(record,),
            score=score,
            rule=self.rule,
            token_matches=self.token_matches,
        )
        return ScoredMatch(binding_key(binding), score, info)


class MaterializedJoinCursor:
    """Sorted access over a multi-pattern relaxation's sub-join.

    The replacement patterns are joined exhaustively *on first pop*; results
    are projected onto ``interface_vars`` (the original pattern's variables
    that the rest of the query can see), deduplicated keeping the best score,
    sorted descending, then served like a posting list.

    Until materialisation, ``peek`` returns a cheap upper bound:
    ``multiplier × min_i max_score(pattern_i)`` — valid because every
    per-pattern score is ≤ 1 and the sub-join score is their product.
    """

    def __init__(
        self,
        store: TripleStore,
        scorer: PatternScorer,
        patterns: tuple[TriplePattern, ...],
        interface_vars: tuple[Variable, ...],
        *,
        multiplier: float = 1.0,
        rule: RelaxationRule | None = None,
        token_matches: tuple[TokenMatch, ...] = (),
        stats: QueryStats | None = None,
        max_results: int = 50_000,
    ):
        self.store = store
        self.scorer = scorer
        self.patterns = patterns
        self.interface_vars = interface_vars
        self.multiplier = multiplier
        self.rule = rule
        self.token_matches = token_matches
        self.stats = stats
        self.max_results = max_results
        self._items: list[ScoredMatch] | None = None
        self._position = 0
        self._bound: float | None = None

    def _upper_bound(self) -> float:
        if self._bound is None:
            bounds = [self.scorer.max_score(p) for p in _bindable(self.patterns)]
            self._bound = self.multiplier * (min(bounds) if bounds else 0.0)
        return self._bound

    def _materialize(self) -> None:
        if self._items is not None:
            return
        if self.stats is not None:
            self.stats.cursors_opened += 1
        best: dict[BindingKey, tuple[float, tuple[StoredTriple, ...]]] = {}

        def backtrack(
            index: int,
            binding: dict[Variable, Term],
            score: float,
            used: tuple[StoredTriple, ...],
        ) -> None:
            if len(best) > self.max_results:
                return
            if index == len(self.patterns):
                key = binding_key(
                    {v: binding[v] for v in self.interface_vars if v in binding}
                )
                entry = best.get(key)
                if entry is None or score > entry[0]:
                    best[key] = (score, used)
                return
            # Match with the binding substituted in, but score against the
            # original pattern: a pattern's emission mass must not depend on
            # the evaluation order of the sub-join.
            original = self.patterns[index]
            pattern = original.substitute(binding)
            for record in self.store.matches(pattern):
                if self.stats is not None:
                    self.stats.sorted_accesses += 1
                local = pattern.bind(record.triple)
                if local is None:
                    continue
                pattern_score = self.scorer.score(original, record)
                extended = dict(binding)
                extended.update(local)
                backtrack(index + 1, extended, score * pattern_score, used + (record,))

        # Evaluate most-selective-first to keep intermediate results small.
        order = sorted(
            range(len(self.patterns)),
            key=lambda i: self.store.cardinality(self.patterns[i]),
        )
        self.patterns = tuple(self.patterns[i] for i in order)
        backtrack(0, {}, 1.0, ())

        items = [
            ScoredMatch(
                key,
                self.multiplier * score,
                PatternMatchInfo(
                    # The first replacement pattern stands for the whole
                    # sub-join in explanations; all matched records are kept.
                    pattern=self.patterns[0],
                    records=records,
                    score=self.multiplier * score,
                    rule=self.rule,
                    token_matches=self.token_matches,
                ),
            )
            for key, (score, records) in best.items()
        ]
        items.sort(key=lambda m: (-m.score, m.binding))
        self._items = items

    @property
    def is_materialized(self) -> bool:
        return self._items is not None

    def ensure_exact(self) -> bool:
        """Materialise the sub-join if needed; True when already exact."""
        if self._items is not None:
            return True
        self._materialize()
        return False

    def peek(self) -> float | None:
        if self._items is None:
            bound = self._upper_bound()
            return bound if bound > 0.0 else None
        if self._position < len(self._items):
            return self._items[self._position].score
        return None

    def pop(self) -> ScoredMatch | None:
        self._materialize()
        assert self._items is not None
        if self._position >= len(self._items):
            return None
        item = self._items[self._position]
        self._position += 1
        return item


def _has_repeated_variable(pattern: TriplePattern) -> bool:
    variables = [t for t in pattern.terms() if t.is_variable]
    return len(variables) != len(set(variables))


def _bindable(patterns: Iterable[TriplePattern]) -> list[TriplePattern]:
    """Patterns usable for upper-bound estimation (all of them, currently)."""
    return list(patterns)
