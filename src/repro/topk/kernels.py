"""Zero-dependency batch kernels for the id-space hot path.

Every layer below the top-k driver is columnar, yet the innermost loops
used to burn Python-object time: one score call per posting, one merge-key
tuple per head, one ``IdMatch`` per sorted access.  The kernels here turn
those per-item loops into **block** operations over the stores' columns
and memoryview slices, so the interpreter dispatches once per block
instead of once per posting:

* :func:`score_block` — scored weights for a whole decoded block in one
  call, with float operations element-for-element identical to the scalar
  ``IdPostingCursor._score_weight`` (byte-identity with the per-item
  reference is load-bearing: the property suite pins it);
* :func:`prepare_head_block` — a posting range translated to pre-keyed
  merge heads as two parallel columns (``-weight`` merge keys + global
  ids, gathered by one ``itemgetter`` call per column), the unit the
  sharded k-way merge and the process-pool workers ship around instead of
  lists of per-head tuples;
* :func:`filter_consistent_block` / :func:`bind_block` — the block
  variants of :meth:`PatternPlan.consistent` / ``bind_into`` (repeated
  variable filtering over columns);
* :class:`HotBlockCache` — a small bounded LRU over prepared head blocks,
  keyed on ``(backend identity, segment, signature, block range)``, so
  Zipfian head queries stop re-decoding the same front blocks.  The engine
  owns one instance and clears it at the ``on_store_swap`` quiet point.

This module deliberately imports nothing from the storage or topk layers
(both import *it*), and it sits inside the determinism rule's scope: no
wall clocks, no unseeded randomness, no ``id()``-keyed orderings.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from operator import itemgetter, neg
from typing import Callable, Sequence

#: Postings scored per kernel call when ``EngineConfig.block_size`` is left
#: adaptive (``None``) and the posting list is a monolithic zero-copy view
#: (no merge to pace against).  Merged segment postings use the merge's own
#: adaptive batch size instead, so the score granularity tracks the pull
#: granularity.
DEFAULT_SCORE_BLOCK = 256

#: A prepared head block: parallel (-weight, global id) columns.
HeadBlock = tuple[Sequence[float], Sequence[int]]


def score_block(
    weights: Sequence[float],
    lam: float,
    mass: float,
    cmass: float,
    multiplier: float,
) -> Sequence[float]:
    """Scored weights for one block, hoisting the branches out of the loop.

    Element-for-element this performs *exactly* the float operations of the
    scalar reference (``PatternScorer.score_weight``) in the same order —
    ``multiplier * ((1 - lam) * (w / mass) + lam * (w / cmass))`` with the
    documented zero-mass substitutions — so a block-scored cursor emits the
    same bits as the per-item fallback.  The win is dispatch: one call and
    one branch resolution per block instead of per posting.
    """
    if lam == 0.0:
        if mass > 0:
            return [multiplier * (w / mass) for w in weights]
        return [multiplier * 0.0 for _w in weights]
    one_minus = 1.0 - lam
    if mass > 0:
        if cmass > 0:
            return [
                multiplier * (one_minus * (w / mass) + lam * (w / cmass))
                for w in weights
            ]
        return [
            multiplier * (one_minus * (w / mass) + lam * 0.0) for w in weights
        ]
    if cmass > 0:
        return [
            multiplier * (one_minus * 0.0 + lam * (w / cmass)) for w in weights
        ]
    return [multiplier * (one_minus * 0.0 + lam * 0.0) for _w in weights]


def gather_weights(weights, tids: Sequence[int]) -> Sequence[float]:
    """The weight column values of one block of triple ids.

    ``map`` keeps the gather loop in C for array/memoryview columns; for a
    delta-extended store the column is a dispatching view and the same call
    works unchanged (its ``__getitem__`` routes delta ids).
    """
    return list(map(weights.__getitem__, tids))


def prepare_head_block(
    postings: Sequence[int],
    globals_: Sequence[int],
    weights,
    lo: int,
    hi: int,
) -> HeadBlock:
    """Translate a local posting range into pre-keyed merge-head columns.

    The block counterpart of the old per-head tuple list
    ``[(-weights[g], g) for g in ...]``: two parallel columns — the
    ``-weight`` merge keys and the global ids — gathered by a single
    ``itemgetter(*block)`` call per column (one C dispatch per *block*,
    not per head) with no per-head tuple allocation.  Identical values in
    identical order; ``-w`` float negation flips the sign bit only, so the
    merge keys are bit-equal to the old tuple keys.
    """
    block = postings[lo:hi]
    n = len(block)
    if n == 0:
        return [], ()
    if n == 1:
        gid = globals_[block[0]]
        return [-weights[gid]], (gid,)
    gids = itemgetter(*block)(globals_)
    negw = list(map(neg, itemgetter(*gids)(weights)))
    return negw, gids


def filter_consistent_block(
    tids: Sequence[int],
    slot_ids: Callable[[int], tuple[int, int, int]],
    repeat_pairs: Sequence[tuple[int, int]],
) -> list[int]:
    """Triple ids of one block passing repeated-variable consistency.

    The block variant of :meth:`PatternPlan.consistent`: one call filters a
    whole decoded block, preserving order.  The common single-pair case
    (``?x knows ?x``) gets a tuple-unpacked fast path.
    """
    if len(repeat_pairs) == 1:
        a, b = repeat_pairs[0]
        out = []
        for tid in tids:
            spo = slot_ids(tid)
            if spo[a] == spo[b]:
                out.append(tid)
        return out
    out = []
    for tid in tids:
        spo = slot_ids(tid)
        consistent = True
        for a, b in repeat_pairs:
            if spo[a] != spo[b]:
                consistent = False
                break
        if consistent:
            out.append(tid)
    return out


def bind_block(
    tids: Sequence[int],
    slot_ids: Callable[[int], tuple[int, int, int]],
    var_positions: Sequence[tuple[int, int]],
    template: Sequence[int],
) -> list[tuple[int, ...]]:
    """Bindings for one block of (already consistency-filtered) triple ids.

    The block variant of :meth:`PatternPlan.bind_into` for single-pattern
    cursors: the template carries every slot the pattern does not bind, so
    each output tuple is full binding width.  Conflicts cannot arise here —
    repeated-variable ids were filtered by :func:`filter_consistent_block`
    and a posting cursor binds into an otherwise-unbound template.
    """
    out: list[tuple[int, ...]] = []
    base = list(template)
    for tid in tids:
        spo = slot_ids(tid)
        row = base.copy()
        for position, slot in var_positions:
            row[slot] = spo[position]
        out.append(tuple(row))
    return out


class HotBlockCache:
    """Bounded LRU of prepared head blocks for Zipfian front pages.

    Keys are ``(backend identity, segment index, signature/key, lo, hi)``
    tuples supplied by the caller; values are the immutable prepared
    blocks (self-owned arrays — safe to serve even after the backend that
    produced them was closed or swapped away).  The cache is engine-owned:
    one instance per engine, handed to the sharded backend through
    ``configure_block_cache`` and **cleared at the store-swap quiet point**
    (compaction publishes a new generation, so cached front blocks of the
    old generation must not outlive it) as well as on engine close.

    Thread-safe: the engine's query fan-out shares one instance across
    worker threads.  Hit/miss totals are lifetime counters for
    introspection and tests; per-query accounting is done by the consumer
    (``MergedPostings`` counts hits per merge, the cursor diffs them into
    ``QueryStats.block_cache_hits``).
    """

    __slots__ = ("_lock", "_entries", "_capacity", "hits", "misses")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"Cache capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, HeadBlock] = OrderedDict()
        self._capacity = capacity
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, key: tuple) -> HeadBlock | None:
        with self._lock:
            block = self._entries.get(key)
            if block is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return block

    def put(self, key: tuple, block: HeadBlock) -> None:
        with self._lock:
            existing = self._entries.pop(key, None)
            self._entries[key] = block if existing is None else existing
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
