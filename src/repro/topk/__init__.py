"""Top-k query processing with incremental merging of relaxations.

This package implements the paper's extension of the incremental top-k
algorithm of Theobald, Schenkel & Weikum (SIGIR 2005):

* :mod:`idspace` — the default execution core: cursors, rank join and
  answer aggregation operating on dictionary-encoded integer ids end to
  end, with decode-to-:class:`Term` deferred to answer materialisation;
* :mod:`cursors` — the original term-space sorted access
  (:class:`PostingCursor`, :class:`MaterializedJoinCursor`), retained as
  the executable reference semantics;
* :mod:`incremental_merge` — merges a pattern's cursor with its relaxed
  forms' cursors (representation-agnostic: serves both cores), invoking a
  relaxation only when its upper bound reaches the head of the merged
  stream;
* :mod:`rank_join` — term-space n-ary rank join with HRJN-style upper
  bounds and threshold termination (id-space twin lives in
  :mod:`idspace`);
* :mod:`processor` — the :class:`TopKProcessor` tying rewriting enumeration,
  cursor specs, joins, scoring and answer aggregation together, selecting
  the execution core via ``ProcessorConfig.execution``;
* :mod:`driver` — the resumable :class:`TopKDriver` state machine the
  processor's eager ``query()`` and the public ``AnswerStream`` both drain:
  suspended joins and the rewriting frontier persist between ``advance``
  calls, and strict tie settlement makes every emitted prefix final;
* :mod:`exhaustive` — the same semantics without early termination, used as
  the correctness reference and the efficiency-bench baseline.
"""

from repro.topk.cursors import Cursor, PostingCursor, MaterializedJoinCursor, ScoredMatch
from repro.topk.idspace import (
    IdAnswerAggregator,
    IdExecutionContext,
    IdMatch,
    IdPostingCursor,
    IdRankJoin,
    IdSubJoinCursor,
    PatternPlan,
    SlotTable,
    UNBOUND,
)
from repro.topk.incremental_merge import IncrementalMergeCursor
from repro.topk.rank_join import NaryRankJoin
from repro.topk.processor import TopKProcessor, ProcessorConfig
from repro.topk.driver import TopKDriver
from repro.topk.exhaustive import naive_join

__all__ = [
    "Cursor",
    "PostingCursor",
    "MaterializedJoinCursor",
    "ScoredMatch",
    "IdAnswerAggregator",
    "IdExecutionContext",
    "IdMatch",
    "IdPostingCursor",
    "IdRankJoin",
    "IdSubJoinCursor",
    "PatternPlan",
    "SlotTable",
    "UNBOUND",
    "IncrementalMergeCursor",
    "NaryRankJoin",
    "TopKDriver",
    "TopKProcessor",
    "ProcessorConfig",
    "naive_join",
]
