"""Top-k query processing with incremental merging of relaxations.

This package implements the paper's extension of the incremental top-k
algorithm of Theobald, Schenkel & Weikum (SIGIR 2005):

* :mod:`cursors` — sorted access over a pattern's matches
  (:class:`PostingCursor`), and lazily-materialised sorted access over a
  multi-pattern relaxation's sub-join (:class:`MaterializedJoinCursor`);
* :mod:`incremental_merge` — merges a pattern's cursor with its relaxed
  forms' cursors, invoking a relaxation only when its upper bound reaches
  the head of the merged stream;
* :mod:`rank_join` — n-ary rank join across the merged per-pattern streams
  with HRJN-style upper bounds and threshold termination;
* :mod:`processor` — the :class:`TopKProcessor` tying rewriting enumeration,
  cursor construction, joins, scoring and answer aggregation together;
* :mod:`exhaustive` — the same semantics without early termination, used as
  the correctness reference and the efficiency-bench baseline.
"""

from repro.topk.cursors import Cursor, PostingCursor, MaterializedJoinCursor, ScoredMatch
from repro.topk.incremental_merge import IncrementalMergeCursor
from repro.topk.rank_join import NaryRankJoin
from repro.topk.processor import TopKProcessor, ProcessorConfig
from repro.topk.exhaustive import naive_join

__all__ = [
    "Cursor",
    "PostingCursor",
    "MaterializedJoinCursor",
    "ScoredMatch",
    "IncrementalMergeCursor",
    "NaryRankJoin",
    "TopKProcessor",
    "ProcessorConfig",
    "naive_join",
]
