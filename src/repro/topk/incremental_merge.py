"""Incremental merging of a pattern's cursor with its relaxed forms.

This is the heart of the paper's extension of Theobald et al.'s incremental
top-k: a triple pattern and its relaxations (predicate rewrites, token
expansions, materialised sub-joins) form one *merged* descending stream.  The
merge maintains a max-heap over cursor peeks:

* a relaxation cursor with only an optimistic upper bound is *refined*
  (opened / materialised) only when that bound reaches the head of the heap
  — relaxations that can never beat what the original pattern still has to
  offer are never evaluated;
* the same binding reachable through several cursors is emitted once, at its
  maximal score (streams descend, so the first emission is the maximum).
"""

from __future__ import annotations

import heapq
import itertools

from repro.core.results import QueryStats
from repro.topk.cursors import Cursor, ScoredMatch

#: Tolerance when deciding whether a heap entry's cached peek is stale.
_EPS = 1e-12


class IncrementalMergeCursor:
    """Merge several descending cursors into one descending stream.

    Parameters
    ----------
    cursors:
        The original pattern's cursor first, relaxation cursors after; order
        only matters for deterministic tie-breaks.
    stats:
        Shared work counters; ``relaxations_considered`` is bumped per
        relaxation cursor at construction, ``relaxations_invoked`` when one
        first emits an item.
    """

    def __init__(self, cursors: list[Cursor], stats: QueryStats | None = None):
        self.stats = stats
        self._counter = itertools.count()
        self._heap: list[tuple[float, int, Cursor]] = []
        # Bindings are only required to be hashable: term-space cursors emit
        # BindingKey pair-tuples, id-space cursors emit int tuples — the
        # merge serves both execution cores unchanged.
        self._emitted: set = set()
        self._invoked: set[int] = set()
        self._cursor_index: dict[int, int] = {}
        for index, cursor in enumerate(cursors):
            self._cursor_index[id(cursor)] = index
            peek = cursor.peek()
            if peek is not None:
                heapq.heappush(self._heap, (-peek, next(self._counter), cursor))
        if stats is not None and len(cursors) > 1:
            stats.relaxations_considered += len(cursors) - 1

    def peek(self) -> float | None:
        """Upper bound on the next emitted score (may be optimistic)."""
        while self._heap:
            neg_peek, order, cursor = self._heap[0]
            current = cursor.peek()
            if current is None:
                heapq.heappop(self._heap)
                continue
            if current < -neg_peek - _EPS:
                heapq.heapreplace(self._heap, (-current, order, cursor))
                continue
            return -neg_peek
        return None

    def pop(self) -> ScoredMatch | None:
        """Next item in globally descending score order, deduped by binding."""
        while self._heap:
            neg_peek, order, cursor = heapq.heappop(self._heap)
            current = cursor.peek()
            if current is None:
                continue
            if current < -neg_peek - _EPS:
                heapq.heappush(self._heap, (-current, order, cursor))
                continue
            if not cursor.ensure_exact():
                refined = cursor.peek()
                if refined is not None:
                    heapq.heappush(self._heap, (-refined, order, cursor))
                continue
            item = cursor.pop()
            new_peek = cursor.peek()
            if new_peek is not None:
                heapq.heappush(self._heap, (-new_peek, order, cursor))
            if item is None:
                continue
            if self.stats is not None:
                cursor_pos = self._cursor_index[id(cursor)]
                if cursor_pos > 0 and cursor_pos not in self._invoked:
                    self._invoked.add(cursor_pos)
                    self.stats.relaxations_invoked += 1
            if item.binding in self._emitted:
                continue
            self._emitted.add(item.binding)
            return item
        return None

    def ensure_exact(self) -> bool:
        """The merged peek is exact iff the head cursor's peek is exact.

        Refines at most the head; returns False when refinement occurred so
        outer consumers (nested merges, the rank join) re-read the peek.
        """
        if not self._heap:
            return True
        _neg, order, cursor = self._heap[0]
        if cursor.ensure_exact():
            return True
        heapq.heappop(self._heap)
        refined = cursor.peek()
        if refined is not None:
            heapq.heappush(self._heap, (-refined, order, cursor))
        return False

    def drain(self) -> list[ScoredMatch]:
        """Exhaust the stream (used by tests and the exhaustive evaluator)."""
        items = []
        while True:
            item = self.pop()
            if item is None:
                return items
            items.append(item)
