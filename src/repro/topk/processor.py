"""The adaptive top-k query processor.

Pulls together the whole pipeline of Sections 3–4 of the paper:

1. **Rewriting enumeration** — multi-pattern relaxation rules (granularity
   repair and other rules whose original spans several patterns) are applied
   at the query level by the :class:`~repro.relax.rewriting.RewriteEngine`,
   best-first by derivation weight, lazily: a rewriting is never even built
   once its weight cannot beat the current k-th answer.
2. **Per-pattern streams** — each pattern of a rewriting becomes an
   :class:`~repro.topk.incremental_merge.IncrementalMergeCursor` over (a) the
   pattern itself, token-expanded against the store's phrases, and (b) its
   single-pattern relaxations (predicate rewrites → posting cursors; chain
   expansions → lazily materialised sub-join cursors).
3. **Rank join** — the merged streams are joined with threshold termination
   shared across rewritings.
4. **Aggregation** — answers deduplicate by projection binding, keeping the
   maximal score over all derivation sequences.

Streams are described once as *cursor specs* (pattern, multiplier, rule,
token expansions) and then lowered onto one of two execution cores selected
by ``config.execution``:

* ``"idspace"`` (default) — the dictionary-encoded hot path of
  :mod:`repro.topk.idspace`: bindings are int tuples, scores come straight
  off the weight column, decoding to :class:`Term` happens only when the
  final :class:`AnswerSet` materialises.
* ``"termspace"`` — the original object-based cursors
  (:mod:`repro.topk.cursors`); retained as the executable reference
  semantics that the equivalence suite and the id-space benchmark compare
  against.

Setting ``config.exhaustive = True`` disables every early-termination check,
yielding reference semantics (used by correctness tests and as the
efficiency-comparison baseline).

Control flow lives in the resumable :class:`~repro.topk.driver.TopKDriver`:
:meth:`TopKProcessor.query` drains a fresh driver eagerly to ``k``, while
:meth:`TopKProcessor.driver` hands the suspendable machine to streaming
consumers (``engine.stream``) that advance it incrementally.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.query import Query
from repro.core.results import AnswerSet, QueryStats
from repro.core.terms import TextToken, Variable
from repro.core.triples import TriplePattern
from repro.errors import TopKError
from repro.relax.rewriting import RewriteEngine
from repro.relax.rules import RelaxationRule, RuleSet
from repro.scoring.language_model import PatternScorer, ScoringConfig
from repro.storage.store import TripleStore
from repro.storage.text_index import TokenMatch, TokenMatcher
from repro.topk.cursors import Cursor, MaterializedJoinCursor, PostingCursor
from repro.topk.idspace import (
    IdExecutionContext,
    IdPostingCursor,
    IdSubJoinCursor,
)
from repro.topk.incremental_merge import IncrementalMergeCursor

if TYPE_CHECKING:  # pragma: no cover - cycle guard (driver imports us)
    from repro.topk.driver import TopKDriver

#: Valid values of :attr:`ProcessorConfig.execution`.
EXECUTION_MODES = ("idspace", "termspace")


@dataclass(frozen=True)
class ProcessorConfig:
    """Knobs of the top-k processor.

    Attributes
    ----------
    k:
        Default number of answers when the caller does not override.
    max_rewrite_depth, max_rewrites, min_rewriting_weight:
        Budgets of the query-level rewrite enumeration.
    max_relaxations_per_pattern:
        Cap on relaxation cursors merged into one pattern stream (highest
        weight first).
    max_token_expansions:
        Cap on fuzzy phrase expansions per token slot.
    min_cursor_multiplier:
        Cursors whose total attenuation falls below this are dropped.
    use_relaxation, use_token_expansion:
        Ablation switches.
    pattern_level_merge:
        When True (paper behaviour) single-pattern rules are merged into
        pattern streams; when False they are routed through the query-level
        rewrite enumeration instead (ablation of incremental merging).
    exhaustive:
        Disable all early termination (reference evaluation).
    execution:
        Execution core: "idspace" (dictionary-encoded hot path, default) or
        "termspace" (the original Term-object reference path).
    """

    k: int = 10
    max_rewrite_depth: int = 2
    max_rewrites: int = 200
    min_rewriting_weight: float = 0.05
    max_relaxations_per_pattern: int = 8
    max_token_expansions: int = 10
    min_cursor_multiplier: float = 0.01
    use_relaxation: bool = True
    use_token_expansion: bool = True
    pattern_level_merge: bool = True
    exhaustive: bool = False
    unknown_resource_fallback: bool = True
    unknown_resource_penalty: float = 0.9
    execution: str = "idspace"

    def __post_init__(self):
        if self.k < 1:
            raise TopKError(f"k must be >= 1, got {self.k}")
        if self.max_rewrite_depth < 0:
            raise TopKError("max_rewrite_depth must be >= 0")
        if not 0.0 <= self.min_rewriting_weight <= 1.0:
            raise TopKError("min_rewriting_weight must be in [0, 1]")
        if self.execution not in EXECUTION_MODES:
            raise TopKError(
                f"execution must be one of {EXECUTION_MODES}, got {self.execution!r}"
            )


@dataclass(frozen=True)
class PostingSpec:
    """One posting-cursor stream: a concrete pattern and its attenuation."""

    pattern: TriplePattern
    multiplier: float = 1.0
    rule: RelaxationRule | None = None
    token_matches: tuple[TokenMatch, ...] = ()


@dataclass(frozen=True)
class SubJoinSpec:
    """One lazily-materialised sub-join stream (multi-pattern relaxation)."""

    patterns: tuple[TriplePattern, ...]
    interface_vars: tuple[Variable, ...]
    multiplier: float = 1.0
    rule: RelaxationRule | None = None


class TopKProcessor:
    """Answer queries over one frozen store with relaxation and top-k pruning."""

    def __init__(
        self,
        store: TripleStore,
        *,
        rules: RuleSet | None = None,
        scorer: PatternScorer | None = None,
        matcher: TokenMatcher | None = None,
        config: ProcessorConfig | None = None,
        scoring: ScoringConfig | None = None,
        executor=None,
    ):
        if not store.is_frozen:
            raise TopKError("TopKProcessor requires a frozen store")
        self.store = store
        self.rules = rules if rules is not None else RuleSet()
        self.scorer = scorer if scorer is not None else PatternScorer(store, scoring)
        self.matcher = matcher if matcher is not None else TokenMatcher(store)
        self.config = config if config is not None else ProcessorConfig()
        #: Optional shared thread pool (engine-owned): the driver uses it to
        #: prime one rewriting's posting cursors concurrently.  ``None``
        #: keeps every pull on the consuming thread.
        self.executor = executor
        self._rules_by_predicate: dict | None = None

    # -- rule management ------------------------------------------------------

    def add_rules(self, rules) -> int:
        """Add rules at runtime (e.g. user-supplied); returns #new rules."""
        added = self.rules.extend(rules)
        self._rules_by_predicate = None
        return added

    def _is_translation_rule(self, rule: RelaxationRule) -> bool:
        """True when the rule's original predicate has no store matches.

        Such a rule (e.g. the alias ``worksFor → affiliation`` for a
        predicate the user invented) does not *relax* an evaluable pattern —
        it *translates* the query into the store's vocabulary.  Translations
        must run at the query-rewriting level so that the translated pattern
        can in turn be relaxed by pattern-level rules (``affiliation →
        'works at'``); keeping them at pattern level would cap relaxation
        composition at depth one exactly where depth two is essential.
        """
        if not rule.is_single_pattern:
            return False
        predicate = rule.original[0].p
        return (
            predicate.is_constant
            and self.store.dictionary.id_of(predicate) is None
        )

    def _single_rule_index(self) -> dict:
        """Single-pattern rules indexed by their original's predicate term.

        Rules with a variable predicate (rare) are indexed under ``None`` and
        tried against every pattern.  Translation rules (unknown original
        predicate) are excluded — they run at the rewriting level.
        """
        if self._rules_by_predicate is None:
            index: dict = {}
            for rule in self.rules.single_pattern_rules():
                if self._is_translation_rule(rule):
                    continue
                predicate = rule.original[0].p
                key = None if predicate.is_variable else predicate
                index.setdefault(key, []).append(rule)
            self._rules_by_predicate = index
        return self._rules_by_predicate

    def _rules_for_pattern(self, pattern: TriplePattern) -> list[RelaxationRule]:
        index = self._single_rule_index()
        candidates = list(index.get(None, ()))
        if pattern.p.is_constant:
            candidates.extend(index.get(pattern.p, ()))
        candidates.sort(key=lambda r: (-r.weight, r.n3()))
        return candidates

    # -- stream planning ------------------------------------------------------

    def _effective_pattern(self, pattern: TriplePattern) -> tuple[TriplePattern, float]:
        """Handle vocabulary mismatch: unknown resources fall back to tokens.

        A constant resource the store has never seen (the user guessed a
        name like ``hasAdvisor``) cannot match anything exactly; with the
        fallback enabled its camel-case surface words become a text token,
        which fuzzy expansion can then translate into stored phrases or
        canonical resources — at a small penalty.
        """
        if not (
            self.config.unknown_resource_fallback
            and self.config.use_token_expansion
        ):
            return pattern, 1.0
        from repro.core.terms import Resource
        from repro.util.text import camel_to_words

        terms = list(pattern.terms())
        penalty = 1.0
        for slot, term in enumerate(terms):
            if (
                isinstance(term, Resource)
                and self.store.dictionary.id_of(term) is None
            ):
                terms[slot] = TextToken(camel_to_words(term.name))
                penalty *= self.config.unknown_resource_penalty
        if penalty == 1.0:
            return pattern, 1.0
        return TriplePattern(*terms), penalty

    def _expand_pattern(
        self,
        pattern: TriplePattern,
        *,
        multiplier: float,
        rule: RelaxationRule | None,
    ) -> list[PostingSpec]:
        """Posting specs for a pattern, fuzzy-expanding token constants."""
        pattern, penalty = self._effective_pattern(pattern)
        multiplier *= penalty
        token_slots = [
            (slot, term)
            for slot, term in enumerate(pattern.terms())
            if isinstance(term, TextToken)
        ]
        if not token_slots or not self.config.use_token_expansion:
            return [PostingSpec(pattern, multiplier, rule)]
        options = []
        for slot, term in token_slots:
            matches = self.matcher.matches(term, slot)
            options.append(matches[: self.config.max_token_expansions])
        specs: list[PostingSpec] = []
        for combo in itertools.product(*options):
            total = multiplier
            terms = list(pattern.terms())
            for (slot, _term), match in zip(token_slots, combo):
                total *= match.similarity
                terms[slot] = match.token
            if total < self.config.min_cursor_multiplier:
                continue
            specs.append(
                PostingSpec(TriplePattern(*terms), total, rule, tuple(combo))
            )
        return specs

    def _stream_specs(
        self,
        pattern: TriplePattern,
        query: Query,
        fresh_names,
    ) -> list[PostingSpec | SubJoinSpec]:
        """The merged stream of one pattern, as an ordered list of specs.

        The original pattern's (token-expanded) posting specs come first,
        then the pattern-level relaxations, weight-descending and capped —
        exactly the cursor order both execution cores merge.
        """
        base: list[PostingSpec | SubJoinSpec] = list(
            self._expand_pattern(pattern, multiplier=1.0, rule=None)
        )
        relaxations: list[tuple[float, int, PostingSpec | SubJoinSpec]] = []
        if self.config.use_relaxation and self.config.pattern_level_merge:
            interface = self._interface_vars(pattern, query)
            order = itertools.count()
            for rule in self._rules_for_pattern(pattern):
                if rule.weight < self.config.min_cursor_multiplier:
                    continue
                for _positions, theta in rule.unify((pattern,)):
                    rename = {
                        var.name: next(fresh_names)
                        for var in rule.fresh_variables()
                    }
                    replacement = tuple(
                        p.rename_variables(rename).substitute(theta)
                        for p in rule.replacement
                    )
                    replacement_vars = {
                        v for p in replacement for v in p.variables()
                    }
                    if not interface <= replacement_vars:
                        continue  # relaxation would hide a visible variable
                    if replacement == (pattern,):
                        continue  # no-op
                    if len(replacement) == 1:
                        for spec in self._expand_pattern(
                            replacement[0],
                            multiplier=rule.weight,
                            rule=rule,
                        ):
                            relaxations.append((rule.weight, next(order), spec))
                    else:
                        spec = SubJoinSpec(
                            replacement,
                            tuple(sorted(interface, key=lambda v: v.name)),
                            multiplier=rule.weight,
                            rule=rule,
                        )
                        relaxations.append((rule.weight, next(order), spec))
        relaxations.sort(key=lambda entry: (-entry[0], entry[1]))
        kept = [
            spec
            for _weight, _order, spec in relaxations[
                : self.config.max_relaxations_per_pattern
            ]
        ]
        return base + kept

    def _holds_in_store(self, pattern: TriplePattern) -> bool:
        """Condition check for rule application: does this fact hold?"""
        return self.store.cardinality(pattern) > 0

    @staticmethod
    def _interface_vars(pattern: TriplePattern, query: Query) -> set[Variable]:
        """Variables of ``pattern`` the rest of the query can observe."""
        own = set(pattern.variables())
        visible = set(query.projection)
        for other in query.patterns:
            if other is not pattern:
                visible |= set(other.variables())
        return own & visible

    # -- spec lowering ------------------------------------------------------

    def _term_cursor(self, spec: PostingSpec | SubJoinSpec, stats: QueryStats) -> Cursor:
        if isinstance(spec, PostingSpec):
            return PostingCursor(
                self.store,
                self.scorer,
                spec.pattern,
                multiplier=spec.multiplier,
                rule=spec.rule,
                token_matches=spec.token_matches,
                stats=stats,
            )
        return MaterializedJoinCursor(
            self.store,
            self.scorer,
            spec.patterns,
            spec.interface_vars,
            multiplier=spec.multiplier,
            rule=spec.rule,
            stats=stats,
        )

    @staticmethod
    def _id_cursor(spec: PostingSpec | SubJoinSpec, ctx: IdExecutionContext):
        if isinstance(spec, PostingSpec):
            return IdPostingCursor(
                ctx,
                spec.pattern,
                multiplier=spec.multiplier,
                rule=spec.rule,
                token_matches=spec.token_matches,
            )
        return IdSubJoinCursor(
            ctx,
            spec.patterns,
            spec.interface_vars,
            multiplier=spec.multiplier,
            rule=spec.rule,
        )

    @staticmethod
    def _merge(cursors: list[Cursor], stats: QueryStats) -> Cursor:
        if len(cursors) == 1:
            return cursors[0]
        return IncrementalMergeCursor(cursors, stats)

    # -- querying ------------------------------------------------------------

    def _make_rewriter(self) -> RewriteEngine:
        if self.config.use_relaxation:
            rule_filter = (
                (
                    lambda rule: not rule.is_single_pattern
                    or self._is_translation_rule(rule)
                )
                if self.config.pattern_level_merge
                else None
            )
            return RewriteEngine(
                self.rules,
                max_depth=self.config.max_rewrite_depth,
                max_rewrites=self.config.max_rewrites,
                min_weight=self.config.min_rewriting_weight,
                rule_filter=rule_filter,
                condition_checker=self._holds_in_store,
            )
        return RewriteEngine(RuleSet(), max_depth=0, max_rewrites=1)

    def query(self, query: Query, k: int | None = None) -> AnswerSet:
        """Evaluate ``query`` and return its top-k answer set.

        Eager wrapper over the resumable :class:`~repro.topk.driver.
        TopKDriver`: one drain to the settled top-k, then materialise.  The
        driver settles score ties at the k boundary before stopping, so the
        returned list is the true ranking prefix — identical to what the
        same ``k`` reached through any sequence of ``AnswerStream.next_k``
        calls.
        """
        k = k if k is not None else (query.limit or self.config.k)
        if k < 1:
            raise TopKError(f"k must be >= 1, got {k}")
        return self.driver(query).advance(k).answer_set(k)

    def driver(self, query: Query) -> "TopKDriver":
        """A fresh resumable execution driver for ``query``.

        The driver is the streaming entry point: advance it incrementally
        (:class:`~repro.core.results.AnswerStream` does) instead of paying
        for a full top-k per pagination step.
        """
        from repro.topk.driver import TopKDriver

        return TopKDriver(self, query)

    def with_config(self, **overrides) -> "TopKProcessor":
        """A sibling processor sharing store/rules but different config."""
        return TopKProcessor(
            self.store,
            rules=self.rules,
            scorer=self.scorer,
            matcher=self.matcher,
            config=replace(self.config, **overrides),
            executor=self.executor,
        )
