"""N-ary rank join across per-pattern merged streams.

HRJN-style: streams are consumed in descending score order; every new item is
probed against the items already seen on the other streams; complete,
variable-compatible combinations become candidate answers.  The upper bound
on any answer not yet formed is::

    U = rewriting_weight · max_i ( peek_i · Π_{j≠i} cap_j )

where ``cap_j`` is stream j's maximum item score (its first item, since
streams descend; until stream j has emitted anything, its peek bounds it).
When the k-th best distinct answer already scores ≥ U, no future combination
can change the top-k and the join terminates — this, together with lazy
relaxation cursors, is what keeps TriniT from exploring the whole rewriting
space.
"""

from __future__ import annotations

from typing import Callable

from repro.core.query import Query
from repro.core.results import (
    BindingKey,
    Derivation,
    QueryStats,
    binding_key,
)
from repro.core.terms import Term, Variable
from repro.relax.rules import RuleApplication
from repro.scoring.answer_scoring import AnswerAggregator
from repro.topk.cursors import Cursor, ScoredMatch
from repro.util.heap import DistinctTopKTracker


class NaryRankJoin:
    """Joins one rewriting's pattern streams into scored answers.

    Parameters
    ----------
    query:
        The rewritten query (supplies projection variables).
    streams:
        One (merged) cursor per query pattern.
    rewriting_weight, rewriting:
        The derivation weight and rule applications of this rewriting;
        recorded into every produced derivation.
    aggregator, tracker:
        Shared across rewritings: answer dedup with max-score semantics, and
        the distinct top-k threshold used for termination.
    stats:
        Shared work counters.
    exhaustive:
        Disables bound-based termination (reference semantics for tests and
        the efficiency baseline).
    """

    def __init__(
        self,
        query: Query,
        streams: list[Cursor],
        *,
        rewriting_weight: float = 1.0,
        rewriting: tuple[RuleApplication, ...] = (),
        aggregator: AnswerAggregator,
        tracker: DistinctTopKTracker,
        stats: QueryStats | None = None,
        exhaustive: bool = False,
        strict_ties: bool = False,
    ):
        if len(streams) != len(query.patterns):
            raise ValueError(
                f"{len(query.patterns)} patterns but {len(streams)} streams"
            )
        self.query = query
        self.streams = streams
        self.rewriting_weight = rewriting_weight
        self.rewriting = rewriting
        self.aggregator = aggregator
        self.tracker = tracker
        self.stats = stats
        self.exhaustive = exhaustive
        self.strict_ties = strict_ties
        self._seen: list[dict[BindingKey, ScoredMatch]] = [{} for _ in streams]
        self._best: list[float | None] = [None] * len(streams)
        self._projection = tuple(query.projection)
        # Join-variable signatures: vars of pattern j shared with any other
        # pattern.  Items are indexed by their values on these vars so probes
        # are hash lookups whenever the partial binding determines them.
        all_vars = [set(p.variables()) for p in query.patterns]
        self._join_vars: list[tuple[Variable, ...]] = []
        for j, own in enumerate(all_vars):
            shared = set()
            for i, other in enumerate(all_vars):
                if i != j:
                    shared |= own & other
            self._join_vars.append(tuple(sorted(shared, key=lambda v: v.name)))
        self._join_index: list[dict[tuple, list[ScoredMatch]]] = [
            {} for _ in streams
        ]

    # -- bounds ------------------------------------------------------------

    def _caps(self, peeks: list[float | None]) -> list[float]:
        caps = []
        for i, stream_seen in enumerate(self._seen):
            if self._best[i] is not None:
                caps.append(self._best[i])
            elif peeks[i] is not None:
                caps.append(peeks[i])
            else:
                caps.append(0.0)
        return caps

    def upper_bound(self, peeks: list[float | None] | None = None) -> float:
        """Best score any not-yet-formed combination could still reach."""
        if peeks is None:
            peeks = [stream.peek() for stream in self.streams]
        caps = self._caps(peeks)
        bound = 0.0
        for i, peek in enumerate(peeks):
            if peek is None:
                continue
            product = peek
            for j, cap in enumerate(caps):
                if j != i:
                    product *= cap
            bound = max(bound, product)
        return bound * self.rewriting_weight

    # -- combination formation ------------------------------------------------

    def _emit(self, items: list[ScoredMatch]) -> None:
        """Form the answer from one complete combination and record it."""
        full_binding: dict[Variable, Term] = {}
        score = self.rewriting_weight
        for item in items:
            score *= item.score
            for var, term in item.binding:
                full_binding[var] = term
        projected = binding_key(
            {v: full_binding[v] for v in self._projection if v in full_binding}
        )
        derivation = Derivation(
            matches=tuple(item.info for item in items),
            rewriting=self.rewriting,
            rewriting_weight=self.rewriting_weight,
        )
        if self.stats is not None:
            self.stats.candidates_formed += 1
        best = self.aggregator.add(projected, score, derivation)
        self.tracker.offer(projected, best)

    def _index_key(self, item: ScoredMatch, stream_index: int) -> tuple:
        values = dict(item.binding)
        return tuple(values.get(v) for v in self._join_vars[stream_index])

    def _probe(self, new_item: ScoredMatch, stream_index: int) -> None:
        """Enumerate all combinations of the new item with seen items."""
        others = [j for j in range(len(self.streams)) if j != stream_index]
        # Visit scarcer streams first: fails fast on empty/selective ones.
        others.sort(key=lambda j: len(self._seen[j]))
        if any(not self._seen[j] for j in others):
            return

        combo: list[ScoredMatch | None] = [None] * len(self.streams)
        combo[stream_index] = new_item

        def compatible(binding: BindingKey, assigned: dict[Variable, Term]) -> bool:
            return all(
                assigned.get(var, term) == term for var, term in binding
            )

        def candidates(j: int, assigned: dict[Variable, Term]) -> list[ScoredMatch]:
            join_vars = self._join_vars[j]
            if join_vars and all(v in assigned for v in join_vars):
                key = tuple(assigned[v] for v in join_vars)
                return self._join_index[j].get(key, [])
            return list(self._seen[j].values())

        def backtrack(position: int, assigned: dict[Variable, Term]) -> None:
            if position == len(others):
                self._emit([item for item in combo if item is not None])
                return
            j = others[position]
            for item in candidates(j, assigned):
                if not compatible(item.binding, assigned):
                    continue
                extended = dict(assigned)
                extended.update(dict(item.binding))
                combo[j] = item
                backtrack(position + 1, extended)
            combo[j] = None

        backtrack(0, dict(new_item.binding))

    # -- main loop ------------------------------------------------------------

    def run(self, should_stop: Callable[[], bool] | None = None) -> bool:
        """Consume streams until exhaustion or threshold termination.

        Returns True when exhausted (no further combination is possible),
        False when suspended by threshold termination or ``should_stop`` —
        the same resumable contract as the id-space twin
        (:meth:`repro.topk.idspace.IdRankJoin.run`), including the
        ``strict_ties`` settlement rule.
        """
        while True:
            peeks = [stream.peek() for stream in self.streams]
            live = [i for i, p in enumerate(peeks) if p is not None]
            if not live:
                return True
            # A stream that is exhausted without ever emitting can never be
            # part of a combination — the whole join is empty-handed.
            if any(
                peeks[i] is None and not self._seen[i]
                for i in range(len(self.streams))
            ):
                return True
            if not self.exhaustive:
                bound = self.upper_bound(peeks)
                if self.tracker.is_full and (
                    self.tracker.threshold > bound
                    if self.strict_ties
                    else self.tracker.threshold >= bound
                ):
                    return False
            if should_stop is not None and should_stop():
                return False
            # Advance the stream with the highest head (ties: lowest index).
            index = max(live, key=lambda i: (peeks[i], -i))
            item = self.streams[index].pop()
            if item is None:
                continue
            if self._best[index] is None:
                self._best[index] = item.score
            if item.binding in self._seen[index]:
                continue  # merged streams dedupe already; double guard
            self._seen[index][item.binding] = item
            self._join_index[index].setdefault(
                self._index_key(item, index), []
            ).append(item)
            self._probe(item, index)
