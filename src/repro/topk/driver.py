"""The resumable top-k execution driver.

The rewriting → merge → rank-join loop of :class:`~repro.topk.processor.
TopKProcessor` used to live inside one eager ``query()`` call; this module
restructures it as a suspendable state machine so the same computation can
be *continued* — the anytime surface interactive exploration needs ("show me
ten more") and the substrate of the public :class:`~repro.core.results.
AnswerStream` API.

State the driver persists between :meth:`TopKDriver.advance` calls:

* the lazy rewriting enumeration (weight-descending, one pending rewriting
  buffered so its weight can bound everything not yet enumerated),
* every rank join started so far, with all of its cursor and probe state —
  the joins are naturally resumable (their loops keep state on ``self``),
  split into an *active* list and a *parked* list of settled joins tagged
  with their frozen upper bounds,
* the shared answer aggregator and a :class:`~repro.util.heap.
  GrowableTopKTracker` whose ``k`` grows as the consumer asks for more.

**Settlement, and why the prefix is stable.**  The driver stops a drain for
target ``k`` only when the k-th best distinct score *strictly* exceeds every
remaining upper bound (``strict_ties`` in the joins) — or when everything is
exhausted.  Strictness means every combination that could still *tie* into
the top-k has been formed, so the ranked prefix is the true ranking with
ties fully resolved, independent of the trajectory that produced it and of
where the computation was split.  That is the prefix-stability guarantee:
``next_k(3)`` then ``next_k(7)`` is byte-identical to an eager ``ask(k=10)``
(which since this refactor is itself the driver drained in one go).

A parked join whose frozen bound falls strictly below the current threshold
can never contribute again *at this k*; when ``advance`` is called with a
larger ``k`` the threshold drops and such joins are re-activated — resumed,
never rebuilt.
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING

from repro.core.query import Query
from repro.core.results import Answer, AnswerSet, QueryStats
from repro.errors import TopKError
from repro.scoring.answer_scoring import AnswerAggregator
from repro.topk.idspace import (
    IdAnswerAggregator,
    IdExecutionContext,
    IdRankJoin,
)
from repro.topk.rank_join import NaryRankJoin
from repro.util.heap import GrowableTopKTracker

if TYPE_CHECKING:  # pragma: no cover - cycle guard (processor imports us)
    from repro.topk.processor import TopKProcessor


class TopKDriver:
    """Suspendable top-k execution over one query.

    Construct via :meth:`TopKProcessor.driver`.  :meth:`advance` drains
    until the top-``k`` answer prefix is settled (or the search space is
    exhausted); :meth:`ranked` decodes it.  Calling :meth:`advance` again
    with a larger ``k`` resumes every suspended join and the rewriting
    enumeration from exactly where they stopped.
    """

    def __init__(
        self,
        processor: "TopKProcessor",
        query: Query,
        *,
        stats: QueryStats | None = None,
    ):
        self.processor = processor
        self.query = query
        self.stats = stats if stats is not None else QueryStats()
        config = processor.config
        self._exhaustive = config.exhaustive
        self._id_space = config.execution == "idspace"
        if self._id_space:
            self._aggregator = IdAnswerAggregator(
                tuple(sorted(query.projection, key=lambda v: v.name))
            )
        else:
            self._aggregator = AnswerAggregator()
        self._tracker = GrowableTopKTracker(1)
        self._fresh_names = (f"pv{i}" for i in itertools.count())
        self._rewrites = processor._make_rewriter().iter_rewrites(query)
        self._rewriter_done = False
        self._pending = None
        self._active: list = []
        self._parked: list[tuple[object, float]] = []
        self._started = False

    # -- introspection ------------------------------------------------------

    @property
    def store(self):
        return self.processor.store

    @property
    def is_exhausted(self) -> bool:
        """True once every rewriting and join has been fully consumed."""
        return (
            self._rewriter_done
            and self._pending is None
            and not self._active
            and not self._parked
        )

    def __len__(self) -> int:
        """Distinct answers aggregated so far (not all necessarily settled)."""
        return len(self._aggregator)

    # -- driving ------------------------------------------------------------

    def advance(self, k: int) -> "TopKDriver":
        """Drain until the top-``k`` prefix is settled or nothing remains.

        Settled means: at least ``k`` distinct answers exist and the k-th
        best score strictly exceeds every remaining upper bound — no future
        combination can enter *or tie into* the prefix, so
        ``ranked(k)`` is final for every smaller limit too.
        """
        if k < 1:
            raise TopKError(f"k must be >= 1, got {k}")
        started = time.perf_counter()
        if self._started:
            self.stats.resumes += 1
        else:
            self._started = True
        if k != self._tracker.k:
            self._tracker.set_k(k, self._aggregator.best_scores())
            self._reactivate()
        try:
            self._drain()
        finally:
            self.stats.elapsed_seconds += time.perf_counter() - started
        return self

    def _reactivate(self) -> None:
        """Move parked joins the retargeted threshold no longer settles."""
        tracker = self._tracker
        still_parked: list[tuple[object, float]] = []
        for join, bound in self._parked:
            if tracker.is_full and tracker.threshold > bound:
                still_parked.append((join, bound))
            else:
                self._active.append(join)
        self._parked = still_parked

    def _drain(self) -> None:
        tracker = self._tracker
        while True:
            # Run every active join to settlement or exhaustion.  Bounds
            # only fall and the threshold only rises within a drain, so a
            # join settled here stays settled for the rest of the drain.
            while self._active:
                join = self._active.pop(0)
                if not join.run():
                    self._parked.append((join, join.upper_bound()))
            if self._pending is None and not self._rewriter_done:
                self._pending = next(self._rewrites, None)
                if self._pending is None:
                    self._rewriter_done = True
                else:
                    self.stats.rewritings_enumerated += 1
            if self._pending is not None:
                # Rewritings come weight-descending, and combination scores
                # never exceed the rewriting weight, so the pending weight
                # bounds everything not yet enumerated: once the threshold
                # strictly beats it, the enumeration itself is settled.
                if self._exhaustive or not (
                    tracker.is_full and tracker.threshold > self._pending.weight
                ):
                    rewriting = self._pending
                    self._pending = None
                    self.stats.rewritings_processed += 1
                    self._active.append(self._build_join(rewriting))
                    continue
            return

    def _prime(self, cursor_lists: list[list]) -> None:
        """Fan the rewriting's posting cursors onto the shared executor.

        ``prime`` warms each cursor's posting list and scoring caches off
        the consuming thread — for a segmented backend that also kicks off
        every segment's first batch prefetch, so one query's sorted-access
        streams open concurrently.  Fire-and-forget: the consumer's
        ``_open`` adopts a finished prime or does the work itself, so a
        prime that never ran (pool busy, engine closing) costs nothing and
        changes nothing — answers and stats are identical either way.
        """
        executor = self.processor.executor
        if executor is None:
            return
        for cursors in cursor_lists:
            for cursor in cursors:
                prime = getattr(cursor, "prime", None)
                if prime is None:
                    continue
                try:
                    executor.submit(prime)
                except RuntimeError:  # pool shut down under us (close())
                    return

    def _build_join(self, rewriting):
        """Lower one rewriting into a (resumable) rank join over its streams."""
        processor = self.processor
        stats = self.stats
        spec_lists = [
            processor._stream_specs(pattern, rewriting.query, self._fresh_names)
            for pattern in rewriting.query.patterns
        ]
        if self._id_space:
            ctx = IdExecutionContext(processor.store, processor.scorer, stats)
            cursor_lists = [
                [processor._id_cursor(spec, ctx) for spec in specs]
                for specs in spec_lists
            ]
            self._prime(cursor_lists)
            streams = [
                processor._merge(cursors, stats) for cursors in cursor_lists
            ]
            return IdRankJoin(
                rewriting.query,
                streams,
                ctx,
                rewriting_weight=rewriting.weight,
                rewriting=rewriting.applications,
                aggregator=self._aggregator,
                tracker=self._tracker,
                exhaustive=self._exhaustive,
                strict_ties=True,
            )
        streams = [
            processor._merge(
                [processor._term_cursor(spec, stats) for spec in specs], stats
            )
            for specs in spec_lists
        ]
        return NaryRankJoin(
            rewriting.query,
            streams,
            rewriting_weight=rewriting.weight,
            rewriting=rewriting.applications,
            aggregator=self._aggregator,
            tracker=self._tracker,
            stats=stats,
            exhaustive=self._exhaustive,
            strict_ties=True,
        )

    # -- results ------------------------------------------------------------

    def ranked(self, limit: int | None = None) -> list[Answer]:
        """The current ranked answers, decoded; final up to the settled k."""
        return self.ranked_window(0, limit)

    def ranked_window(self, start: int, stop: int | None = None) -> list[Answer]:
        """Ranks ``[start:stop]`` only — the settled prefix before ``start``
        is neither re-decoded nor re-materialised (streaming pagination)."""
        if self._id_space:
            return self._aggregator.ranked_answers(
                self.processor.store, stop, start
            )
        return self._aggregator.ranked_answers(stop, start)

    def answer_set(self, k: int) -> AnswerSet:
        """The top-``k`` answers as an :class:`AnswerSet` (after advancing).

        Stats are a snapshot: continuing to advance this driver does not
        mutate the returned set's counters.
        """
        return AnswerSet(
            query=self.query, answers=self.ranked(k), k=k, stats=self.stats.copy()
        )
