"""The id-space execution core: top-k processing on integer term ids.

The store dictionary-encodes every term at ``add()`` time, yet the original
execution path immediately decoded triples back into :class:`Term` objects
and re-bound patterns object-by-object — hashing dataclasses, building
per-match dicts, and sorting (Variable, Term) pairs inside every inner loop.
This module keeps the *whole* hot path in integer id-space:

* a per-rewriting :class:`SlotTable` assigns each variable a dense slot;
  a binding is a plain ``tuple[int, ...]`` of term ids (``UNBOUND`` = -1),
* :class:`PatternPlan` compiles a :class:`TriplePattern` into constant ids
  and variable slots once, so matching a posting is integer comparisons,
* :class:`IdPostingCursor` / :class:`IdSubJoinCursor` stream id-space
  matches with scores computed straight off the store's weight column,
* :class:`IdRankJoin` probes and merges bindings as int tuples,
* :class:`IdAnswerAggregator` collects id-space derivations and decodes to
  :class:`~repro.core.results.Answer` objects only at materialisation.

Semantics are *identical* to the term-space reference path
(:mod:`repro.topk.cursors` / :mod:`repro.topk.rank_join`): same enumeration
orders, same float arithmetic, same tie-breaks — which the equivalence suite
(`tests/topk/test_idspace_equivalence.py`) asserts answer-by-answer.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.query import Query
from repro.core.results import Answer, Derivation, PatternMatchInfo, QueryStats
from repro.core.terms import Variable
from repro.core.triples import TriplePattern
from repro.errors import TopKError
from repro.relax.rules import RelaxationRule, RuleApplication
from repro.scoring.language_model import PatternScorer
from repro.storage.store import TripleStore
from repro.storage.text_index import TokenMatch
from repro.topk import kernels
from repro.util.heap import DistinctTopKTracker

#: Sentinel id for "this slot is not bound".  Term ids are non-negative.
UNBOUND = -1


class SlotTable:
    """Dense variable → slot numbering for one rewriting's execution.

    Slots are assigned on demand while streams are built; the table is
    frozen before the rank join runs, fixing the binding-tuple width.
    """

    __slots__ = ("_slots", "_variables", "_frozen")

    def __init__(self):
        self._slots: dict[Variable, int] = {}
        self._variables: list[Variable] = []
        self._frozen = False

    @property
    def width(self) -> int:
        return len(self._variables)

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        self._frozen = True

    def slot(self, variable: Variable) -> int:
        """The slot of ``variable``, assigning a fresh one if unseen."""
        existing = self._slots.get(variable)
        if existing is not None:
            return existing
        if self._frozen:
            raise KeyError(f"Unknown variable after freeze: {variable}")
        index = len(self._variables)
        self._slots[variable] = index
        self._variables.append(variable)
        return index

    def slots_for(self, variables: Sequence[Variable]) -> tuple[int, ...]:
        return tuple(self.slot(v) for v in variables)

    def variable(self, slot: int) -> Variable:
        return self._variables[slot]


class PatternPlan:
    """A :class:`TriplePattern` compiled against a dictionary + slot table.

    Per S/P/O position: either a constant term id (or ``None`` when the
    constant is unknown to the store — the pattern then matches nothing) or
    the variable's slot.  ``repeat_pairs`` lists position pairs that share a
    variable (``?x knows ?x``) and must carry equal ids.
    """

    __slots__ = (
        "pattern",
        "const_ids",
        "var_positions",
        "bound_slots",
        "repeat_pairs",
        "missing_constant",
    )

    def __init__(self, pattern: TriplePattern, store: TripleStore, table: SlotTable):
        self.pattern = pattern
        const_ids: list[int | None] = [None, None, None]
        var_positions: list[tuple[int, int]] = []
        first_position: dict[int, int] = {}
        repeat_pairs: list[tuple[int, int]] = []
        missing = False
        for position, term in enumerate(pattern.terms()):
            if term.is_variable:
                slot = table.slot(term)
                var_positions.append((position, slot))
                seen_at = first_position.get(slot)
                if seen_at is None:
                    first_position[slot] = position
                else:
                    repeat_pairs.append((seen_at, position))
            else:
                term_id = store.dictionary.id_of(term)
                if term_id is None:
                    missing = True
                const_ids[position] = term_id
        self.const_ids: tuple[int | None, int | None, int | None] = tuple(const_ids)
        self.var_positions = tuple(var_positions)
        self.bound_slots = tuple(dict.fromkeys(slot for _pos, slot in var_positions))
        self.repeat_pairs = tuple(repeat_pairs)
        self.missing_constant = missing

    @property
    def has_repeated_variable(self) -> bool:
        return bool(self.repeat_pairs)

    def consistent(self, spo: tuple[int, int, int]) -> bool:
        """Repeated-variable consistency of one triple's slot ids."""
        for a, b in self.repeat_pairs:
            if spo[a] != spo[b]:
                return False
        return True

    def bind_into(self, spo: tuple[int, int, int], out: list[int]) -> bool:
        """Write the triple's variable ids into ``out``; False on conflict."""
        for position, slot in self.var_positions:
            value = spo[position]
            current = out[slot]
            if current != UNBOUND:
                if current != value:
                    return False
            else:
                out[slot] = value
        return True

    def consistent_block(self, tids: Sequence[int], slot_ids) -> list[int]:
        """Block variant of :meth:`consistent`: one call filters a whole
        decoded posting block to the repeated-variable-consistent ids,
        preserving order (:func:`repro.topk.kernels.
        filter_consistent_block`)."""
        return kernels.filter_consistent_block(
            tids, slot_ids, self.repeat_pairs
        )

    def bind_block(
        self, tids: Sequence[int], slot_ids, template: Sequence[int]
    ) -> list[tuple[int, ...]]:
        """Block variant of :meth:`bind_into` for an already
        consistency-filtered block: full-width binding tuples over
        ``template`` (conflicts cannot arise — a single pattern binds into
        an otherwise-unbound template)."""
        return kernels.bind_block(
            tids, slot_ids, self.var_positions, template
        )


class IdMatchInfo:
    """Id-space provenance of one pattern match (decoded lazily)."""

    __slots__ = ("pattern", "triple_ids", "score", "rule", "token_matches")

    def __init__(
        self,
        pattern: TriplePattern,
        triple_ids: tuple[int, ...],
        score: float,
        rule: RelaxationRule | None = None,
        token_matches: tuple[TokenMatch, ...] = (),
    ):
        self.pattern = pattern
        self.triple_ids = triple_ids
        self.score = score
        self.rule = rule
        self.token_matches = token_matches

    def decode(self, store: TripleStore) -> PatternMatchInfo:
        return PatternMatchInfo(
            pattern=self.pattern,
            records=tuple(store.record(t) for t in self.triple_ids),
            score=self.score,
            rule=self.rule,
            token_matches=self.token_matches,
        )


class IdDerivation:
    """Id-space analogue of :class:`~repro.core.results.Derivation`."""

    __slots__ = ("matches", "rewriting", "rewriting_weight")

    def __init__(
        self,
        matches: tuple[IdMatchInfo, ...],
        rewriting: tuple[RuleApplication, ...] = (),
        rewriting_weight: float = 1.0,
    ):
        self.matches = matches
        self.rewriting = rewriting
        self.rewriting_weight = rewriting_weight

    def decode(self, store: TripleStore) -> Derivation:
        return Derivation(
            matches=tuple(m.decode(store) for m in self.matches),
            rewriting=self.rewriting,
            rewriting_weight=self.rewriting_weight,
        )


class IdMatch:
    """One match emitted by an id-space cursor.

    ``binding`` is a full-width tuple over the rewriting's slot table with
    ``UNBOUND`` in slots this match does not constrain — hashable, cheap to
    compare, and merge-compatible across patterns by slot position.
    ``slots`` names the bound positions (a tuple shared with the emitting
    cursor's plan, not allocated per match), so probes and merges touch
    only the slots that matter.
    """

    __slots__ = ("binding", "score", "info", "slots")

    def __init__(
        self,
        binding: tuple[int, ...],
        score: float,
        info: IdMatchInfo,
        slots: tuple[int, ...] = (),
    ):
        self.binding = binding
        self.score = score
        self.info = info
        self.slots = slots


class IdExecutionContext:
    """Shared per-rewriting state: store, scorer, stats, and the slot table."""

    __slots__ = ("store", "scorer", "stats", "table")

    def __init__(
        self, store: TripleStore, scorer: PatternScorer, stats: QueryStats | None
    ):
        self.store = store
        self.scorer = scorer
        self.stats = stats
        self.table = SlotTable()

    def plan(self, pattern: TriplePattern) -> PatternPlan:
        return PatternPlan(pattern, self.store, self.table)


class IdPostingCursor:
    """Sorted access over one pattern's posting list, entirely in id-space.

    Consumption is **block-at-a-time** by default: the cursor decodes a
    whole posting block, filters repeated-variable mismatches over the
    block, and scores it in one :func:`repro.topk.kernels.score_block`
    call — ``peek`` then reads a precomputed score and ``pop``
    materialises an :class:`IdMatch` only for heads the rank join actually
    consumes.  Block granularity follows ``TripleStore.block_size``
    (``EngineConfig.block_size``): ``None`` adapts — merged segment
    postings score exactly what each batched pull materialised, monolithic
    views use :data:`~repro.topk.kernels.DEFAULT_SCORE_BLOCK` — while
    ``1`` selects the original per-item path, retained as the
    byte-identical reference the property suite pins the block path
    against.  Emitted matches and scores are identical in both modes; only
    the ``blocks_decoded`` counter differs.
    """

    __slots__ = (
        "ctx",
        "pattern",
        "plan",
        "multiplier",
        "rule",
        "token_matches",
        "_ids",
        "_position",
        "_head_score",
        "_lam",
        "_mass",
        "_cmass",
        "_weights",
        "_slot_ids",
        "_template",
        "_primed",
        "_merged",
        "_delta_seen",
        "_cache_seen",
        "_use_blocks",
        "_block_limit",
        "_block_tids",
        "_block_scores",
        "_block_pos",
    )

    def __init__(
        self,
        ctx: IdExecutionContext,
        pattern: TriplePattern,
        *,
        multiplier: float = 1.0,
        rule: RelaxationRule | None = None,
        token_matches: tuple[TokenMatch, ...] = (),
    ):
        self.ctx = ctx
        self.pattern = pattern
        self.plan = ctx.plan(pattern)
        self.multiplier = multiplier
        self.rule = rule
        self.token_matches = token_matches
        self._ids: Sequence[int] | None = None
        self._position = 0
        self._head_score: float | None = None
        self._template: list[int] | None = None
        self._primed: Sequence[int] | None = None
        self._merged = None
        self._delta_seen = 0
        self._cache_seen = 0
        self._use_blocks = True
        self._block_limit: int | None = None
        self._block_tids: Sequence[int] = ()
        self._block_scores: Sequence[float] = ()
        self._block_pos = 0

    def prime(self) -> None:
        """Warm the posting list and scoring caches ahead of consumption.

        Safe to call from a worker thread: it touches only idempotent
        shared caches (pattern mass, emission constants) and stashes the
        fetched posting sequence for :meth:`_open` to adopt — stats
        counters stay untouched, so the consuming thread's accounting is
        identical to a serial run.  The driver fans one ``prime`` per
        posting cursor onto the engine executor, which for a segmented
        backend also kicks off each posting list's first batch prefetch —
        the concurrent posting pulls of one query.
        """
        if self._ids is None and self._primed is None:
            store = self.ctx.store
            self.ctx.scorer.emission_model(self.pattern)
            self._primed = store.sorted_ids(self.pattern)

    def _open(self) -> None:
        if self._ids is None:
            store = self.ctx.store
            ids = self._primed
            if ids is None:
                ids = store.sorted_ids(self.pattern)
            self._ids = ids
            self._primed = None
            # Lazily-merged segment postings support batched pulls; plain
            # posting views are fully materialised already.
            self._merged = ids if hasattr(ids, "pull") else None
            self._lam, self._mass, self._cmass = self.ctx.scorer.emission_model(
                self.pattern
            )
            # Posting ids are trusted; read the columns without per-id
            # validation (the public store.weight/spo_ids validate).
            self._weights = store.weights()
            self._slot_ids = store.backend.slot_ids
            limit = store.block_size
            self._block_limit = limit
            self._use_blocks = limit != 1
            if self.ctx.stats is not None:
                self.ctx.stats.cursors_opened += 1
                if self._merged is not None:
                    self.ctx.stats.segments_touched += self._merged.segments

    def _score_weight(self, weight: float) -> float:
        # Same float ops, same order, as PatternScorer.score_weight.
        mass = self._mass
        foreground = weight / mass if mass > 0 else 0.0
        lam = self._lam
        if lam == 0.0:
            return self.multiplier * foreground
        cmass = self._cmass
        background = weight / cmass if cmass > 0 else 0.0
        return self.multiplier * ((1.0 - lam) * foreground + lam * background)

    def _current(self) -> int | None:
        """Triple id at the cursor head, skipping repeated-var mismatches."""
        self._open()
        ids = self._ids
        merged = self._merged
        plan = self.plan
        needs_filter = plan.has_repeated_variable
        while self._position < len(ids):
            if merged is not None and self._position >= merged.materialized:
                # Batched sorted access: pull a whole batch of merged heads
                # at once instead of paying the per-item merge hand-off on
                # every index — the amortisation the parallel prefetch
                # relies on.
                pulled = merged.pull(merged.batch_size)
                if self.ctx.stats is not None:
                    self.ctx.stats.postings_materialized += pulled
                    self.ctx.stats.posting_pulls += 1
                    emitted = merged.delta_emitted
                    if emitted != self._delta_seen:
                        self.ctx.stats.delta_hits += emitted - self._delta_seen
                        self._delta_seen = emitted
            tid = ids[self._position]
            if not needs_filter or plan.consistent(self._slot_ids(tid)):
                return tid
            self._position += 1
            self._head_score = None
        return None

    def _refill_block(self) -> bool:
        """Decode, filter and score the next non-empty posting block.

        Advances ``_position`` in block strides, pulling merged batches
        exactly as the per-item path would (same pull sizes, same stats),
        and leaves the surviving ids with their scores staged for
        :meth:`peek`/:meth:`pop`.  Returns False once the list is spent.
        """
        ids = self._ids
        merged = self._merged
        plan = self.plan
        slot_ids = self._slot_ids
        stats = self.ctx.stats
        needs_filter = plan.has_repeated_variable
        n = len(ids)
        while self._position < n:
            position = self._position
            if merged is not None:
                if position >= merged.materialized:
                    pulled = merged.pull(merged.batch_size)
                    if stats is not None:
                        stats.postings_materialized += pulled
                        stats.posting_pulls += 1
                        emitted = merged.delta_emitted
                        if emitted != self._delta_seen:
                            stats.delta_hits += emitted - self._delta_seen
                            self._delta_seen = emitted
                        hits = merged.cache_hits
                        if hits != self._cache_seen:
                            stats.block_cache_hits += hits - self._cache_seen
                            self._cache_seen = hits
                # Score only what is already merged: slicing past the
                # materialized frontier would force an eager full fill.
                stop = merged.materialized
                if self._block_limit is not None:
                    stop = min(stop, position + self._block_limit)
            else:
                limit = self._block_limit
                if limit is None:
                    limit = kernels.DEFAULT_SCORE_BLOCK
                stop = min(n, position + limit)
            raw = ids[position:stop]
            self._position = stop
            tids = plan.consistent_block(raw, slot_ids) if needs_filter else raw
            if not len(tids):
                continue
            scores = kernels.score_block(
                kernels.gather_weights(self._weights, tids),
                self._lam,
                self._mass,
                self._cmass,
                self.multiplier,
            )
            if stats is not None:
                stats.blocks_decoded += 1
            self._block_tids = tids
            self._block_scores = scores
            self._block_pos = 0
            return True
        return False

    def peek(self) -> float | None:
        self._open()
        if self._use_blocks:
            if self._block_pos >= len(self._block_scores):
                if not self._refill_block():
                    return None
            return self._block_scores[self._block_pos]
        tid = self._current()
        if tid is None:
            return None
        if self._head_score is None:
            self._head_score = self._score_weight(self._weights[tid])
        return self._head_score

    def ensure_exact(self) -> bool:
        """Posting peeks are exact (peeking opens the list); always True."""
        return True

    def pop(self) -> IdMatch | None:
        score = self.peek()
        if score is None:
            return None
        if self._use_blocks:
            tid = self._block_tids[self._block_pos]
            self._block_pos += 1
        else:
            tid = self._ids[self._position]
            self._position += 1
            self._head_score = None
        if self.ctx.stats is not None:
            self.ctx.stats.sorted_accesses += 1
        if self._template is None:
            self._template = [UNBOUND] * self.ctx.table.width
        out = self._template.copy()
        bound = self.plan.bind_into(self._slot_ids(tid), out)
        assert bound  # _current guarantees repeated-var consistency
        info = IdMatchInfo(
            self.pattern, (tid,), score, self.rule, self.token_matches
        )
        return IdMatch(tuple(out), score, info, self.plan.bound_slots)


class IdSubJoinCursor:
    """Sorted access over a multi-pattern relaxation's sub-join, in id-space.

    Mirrors :class:`~repro.topk.cursors.MaterializedJoinCursor`: lazy
    materialisation on first pop, projection onto the interface variables,
    best-score dedup, then descending serve.  Until materialisation,
    ``peek`` is the optimistic bound ``multiplier × min_i max_score(p_i)``.
    """

    __slots__ = (
        "ctx",
        "patterns",
        "interface_vars",
        "interface_slots",
        "multiplier",
        "rule",
        "token_matches",
        "max_results",
        "_items",
        "_position",
        "_bound",
    )

    def __init__(
        self,
        ctx: IdExecutionContext,
        patterns: tuple[TriplePattern, ...],
        interface_vars: tuple[Variable, ...],
        *,
        multiplier: float = 1.0,
        rule: RelaxationRule | None = None,
        token_matches: tuple[TokenMatch, ...] = (),
        max_results: int = 50_000,
    ):
        self.ctx = ctx
        self.patterns = patterns
        self.interface_vars = interface_vars
        # Every interface variable must be bindable by the sub-join, or the
        # emitted matches would carry UNBOUND in slots the rank join treats
        # as concrete values.  The processor's replacement filter guarantees
        # this; direct constructions must honour it too.
        replacement_vars = {v for p in patterns for v in p.variables()}
        missing = [v for v in interface_vars if v not in replacement_vars]
        if missing:
            names = ", ".join(str(v) for v in missing)
            raise TopKError(
                f"Sub-join patterns do not bind interface variable(s): {names}"
            )
        # Register every replacement variable now — plans are compiled
        # lazily, after the slot table has frozen.
        for pattern in patterns:
            ctx.table.slots_for(pattern.variables())
        # Interface vars arrive name-sorted (the processor guarantees it),
        # so this slot order matches term-space BindingKey order.
        self.interface_slots = ctx.table.slots_for(interface_vars)
        self.multiplier = multiplier
        self.rule = rule
        self.token_matches = token_matches
        self.max_results = max_results
        self._items: list[IdMatch] | None = None
        self._position = 0
        self._bound: float | None = None

    def _upper_bound(self) -> float:
        if self._bound is None:
            bounds = [self.ctx.scorer.max_score(p) for p in self.patterns]
            self._bound = self.multiplier * (min(bounds) if bounds else 0.0)
        return self._bound

    def _materialize(self) -> None:
        if self._items is not None:
            return
        ctx = self.ctx
        store = ctx.store
        stats = ctx.stats
        if stats is not None:
            stats.cursors_opened += 1
        # Evaluate most-selective-first to keep intermediate results small
        # (same stable order as the term-space reference).
        order = sorted(
            range(len(self.patterns)),
            key=lambda i: store.cardinality(self.patterns[i]),
        )
        self.patterns = tuple(self.patterns[i] for i in order)
        plans = [ctx.plan(p) for p in self.patterns]
        models = [ctx.scorer.emission_model(p) for p in self.patterns]
        weights = store.weights()
        slot_ids = store.backend.slot_ids
        width = ctx.table.width
        best: dict[tuple[int, ...], tuple[float, tuple[int, ...]]] = {}
        interface_slots = self.interface_slots

        def score_pattern(index: int, weight: float) -> float:
            lam, mass, cmass = models[index]
            foreground = weight / mass if mass > 0 else 0.0
            if lam == 0.0:
                return foreground
            background = weight / cmass if cmass > 0 else 0.0
            return (1.0 - lam) * foreground + lam * background

        def backtrack(
            index: int, binding: list[int], score: float, used: tuple[int, ...]
        ) -> None:
            if len(best) > self.max_results:
                return
            if index == len(plans):
                key = tuple(binding[s] for s in interface_slots)
                entry = best.get(key)
                if entry is None or score > entry[0]:
                    best[key] = (score, used)
                return
            plan = plans[index]
            if plan.missing_constant:
                return
            const_ids = plan.const_ids
            requirements: list[int | None] = list(const_ids)
            for position, slot in plan.var_positions:
                value = binding[slot]
                if value != UNBOUND:
                    requirements[position] = value
            ids = store.postings_ids(*requirements)
            check_repeats = plan.has_repeated_variable
            for tid in ids:
                spo = slot_ids(tid)
                if check_repeats and not plan.consistent(spo):
                    continue
                if stats is not None:
                    stats.sorted_accesses += 1
                extended = binding.copy()
                if not plan.bind_into(spo, extended):
                    continue
                pattern_score = score_pattern(index, weights[tid])
                backtrack(index + 1, extended, score * pattern_score, used + (tid,))

        backtrack(0, [UNBOUND] * width, 1.0, ())

        decode = store.dictionary.decode
        template = [UNBOUND] * width
        items = []
        for key, (score, used) in best.items():
            out = template.copy()
            for slot, value in zip(interface_slots, key):
                out[slot] = value
            total = self.multiplier * score
            items.append(
                IdMatch(
                    tuple(out),
                    total,
                    IdMatchInfo(
                        # The first replacement pattern stands for the whole
                        # sub-join in explanations; all matched ids are kept.
                        self.patterns[0],
                        used,
                        total,
                        self.rule,
                        self.token_matches,
                    ),
                    interface_slots,
                )
            )
        # Ties break on the decoded terms' lexical order — identical to the
        # term-space reference, which sorts BindingKey pairs.  Decoding is
        # deferred to tied runs only.
        sort_descending_with_decoded_ties(
            items,
            lambda m: m.score,
            lambda m: tuple(
                decode(m.binding[s]).sort_key()
                for s in interface_slots
                if m.binding[s] != UNBOUND
            ),
        )
        self._items = items

    @property
    def is_materialized(self) -> bool:
        return self._items is not None

    def ensure_exact(self) -> bool:
        """Materialise the sub-join if needed; True when already exact."""
        if self._items is not None:
            return True
        self._materialize()
        return False

    def peek(self) -> float | None:
        if self._items is None:
            bound = self._upper_bound()
            return bound if bound > 0.0 else None
        if self._position < len(self._items):
            return self._items[self._position].score
        return None

    def pop(self) -> IdMatch | None:
        self._materialize()
        assert self._items is not None
        if self._position >= len(self._items):
            return None
        item = self._items[self._position]
        self._position += 1
        return item


def sort_descending_with_decoded_ties(
    items: list, score_of, tie_key, limit: int | None = None
) -> None:
    """Sort ``items`` by (score desc, tie_key asc), computing ``tie_key``
    only inside runs of equal score.

    Tie keys in id-space require decoding term ids back to terms; scores
    rarely tie, so resolving ties lazily keeps materialisation free of
    wholesale decoding while producing the byte-identical order of a full
    ``sort(key=(-score, tie_key))`` for the first ``limit`` items (all of
    them when ``limit`` is None) — runs that start at or beyond the limit
    can never surface and are left score-ordered only.
    """
    items.sort(key=lambda item: -score_of(item))
    n = len(items)
    cut = n if limit is None else min(limit, n)
    start = 0
    while start < cut:
        stop = start + 1
        score = score_of(items[start])
        while stop < n and score_of(items[stop]) == score:
            stop += 1
        if stop - start > 1:
            items[start:stop] = sorted(items[start:stop], key=tie_key)
        start = stop


class IdAnswerAggregator:
    """Max-score answer dedup over id-space projection keys.

    Keys are tuples of term ids aligned to the query's name-sorted
    projection variables (``UNBOUND`` where a rewriting left a projection
    variable unbound), so keys from different rewritings of the same query
    always agree.  Decoding to :class:`Answer` happens once, at
    :meth:`ranked_answers`.
    """

    def __init__(self, projection: tuple[Variable, ...]):
        self.projection = projection
        self._best: dict[tuple[int, ...], tuple[float, IdDerivation]] = {}
        self._counts: dict[tuple[int, ...], int] = {}

    def __len__(self) -> int:
        return len(self._best)

    def add(self, key: tuple[int, ...], score: float, derivation: IdDerivation) -> float:
        """Record one derivation; return the key's best known score."""
        self._counts[key] = self._counts.get(key, 0) + 1
        existing = self._best.get(key)
        if existing is None or score > existing[0]:
            self._best[key] = (score, derivation)
            return score
        return existing[0]

    def best_scores(self) -> list[tuple[tuple[int, ...], float]]:
        """Every distinct key with its best score (tracker rebuilds)."""
        return [(key, entry[0]) for key, entry in self._best.items()]

    def ranked_answers(
        self, store: TripleStore, limit: int | None = None, start: int = 0
    ) -> list[Answer]:
        """Decode and rank: (score desc, binding lexical) — deterministic.

        Only the answers that make the cut are decoded: entries are ranked
        by score first (pure float/int work), equal-score runs intersecting
        the top-``limit`` are tie-broken on their decoded terms, and
        derivations materialise for the returned answers alone.  ``start``
        skips decoding a settled prefix (streaming pagination returns only
        the window ``[start:limit]`` — ranks the caller already holds are
        never re-decoded).
        """
        decode = store.dictionary.decode
        projection = self.projection

        def tie_key(entry: tuple[tuple[int, ...], float, IdDerivation]) -> tuple:
            key = entry[0]
            return tuple(
                (var.name, decode(tid).sort_key())
                for var, tid in zip(projection, key)
                if tid != UNBOUND
            )

        entries = [
            (key, score, derivation)
            for key, (score, derivation) in self._best.items()
        ]
        sort_descending_with_decoded_ties(
            entries, lambda entry: entry[1], tie_key, limit
        )
        cut = len(entries) if limit is None else min(limit, len(entries))

        answers = []
        for key, score, derivation in entries[start:cut]:
            binding = tuple(
                (var, decode(tid))
                for var, tid in zip(projection, key)
                if tid != UNBOUND
            )
            answers.append(
                Answer(binding, score, derivation.decode(store), self._counts[key])
            )
        return answers


class IdRankJoin:
    """N-ary HRJN-style rank join over id-space streams.

    The algorithm — stream advance order, probe enumeration, upper bound,
    threshold termination — is the same as the term-space
    :class:`~repro.topk.rank_join.NaryRankJoin`; only the binding
    representation changed, so probes hash int tuples instead of
    (Variable, Term) pair tuples.
    """

    def __init__(
        self,
        query: Query,
        streams: list,
        ctx: IdExecutionContext,
        *,
        rewriting_weight: float = 1.0,
        rewriting: tuple[RuleApplication, ...] = (),
        aggregator: IdAnswerAggregator,
        tracker: DistinctTopKTracker,
        exhaustive: bool = False,
        strict_ties: bool = False,
    ):
        if len(streams) != len(query.patterns):
            raise ValueError(
                f"{len(query.patterns)} patterns but {len(streams)} streams"
            )
        self.query = query
        self.streams = streams
        self.ctx = ctx
        self.rewriting_weight = rewriting_weight
        self.rewriting = rewriting
        self.aggregator = aggregator
        self.tracker = tracker
        self.exhaustive = exhaustive
        self.strict_ties = strict_ties
        table = ctx.table
        # Projection keys align with the aggregator's name-sorted projection.
        self._projection_slots = table.slots_for(
            tuple(sorted(query.projection, key=lambda v: v.name))
        )
        all_vars = [set(p.variables()) for p in query.patterns]
        self._join_slots: list[tuple[int, ...]] = []
        for j, own in enumerate(all_vars):
            shared = set()
            for i, other in enumerate(all_vars):
                if i != j:
                    shared |= own & other
            self._join_slots.append(
                table.slots_for(tuple(sorted(shared, key=lambda v: v.name)))
            )
        table.freeze()
        self._width = table.width
        self._seen: list[dict[tuple[int, ...], IdMatch]] = [{} for _ in streams]
        self._best: list[float | None] = [None] * len(streams)
        self._join_index: list[dict[tuple[int, ...], list[IdMatch]]] = [
            {} for _ in streams
        ]

    # -- bounds ------------------------------------------------------------

    def _caps(self, peeks: list[float | None]) -> list[float]:
        caps = []
        for i in range(len(self.streams)):
            if self._best[i] is not None:
                caps.append(self._best[i])
            elif peeks[i] is not None:
                caps.append(peeks[i])
            else:
                caps.append(0.0)
        return caps

    def upper_bound(self, peeks: list[float | None] | None = None) -> float:
        """Best score any not-yet-formed combination could still reach."""
        if peeks is None:
            peeks = [stream.peek() for stream in self.streams]
        caps = self._caps(peeks)
        bound = 0.0
        for i, peek in enumerate(peeks):
            if peek is None:
                continue
            product = peek
            for j, cap in enumerate(caps):
                if j != i:
                    product *= cap
            bound = max(bound, product)
        return bound * self.rewriting_weight

    # -- combination formation ------------------------------------------------

    def _emit(self, items: list[IdMatch]) -> None:
        """Form the answer from one complete combination and record it."""
        merged = [UNBOUND] * self._width
        score = self.rewriting_weight
        for item in items:
            score *= item.score
            binding = item.binding
            for slot in item.slots:
                merged[slot] = binding[slot]
        projected = tuple(merged[s] for s in self._projection_slots)
        derivation = IdDerivation(
            matches=tuple(item.info for item in items),
            rewriting=self.rewriting,
            rewriting_weight=self.rewriting_weight,
        )
        if self.ctx.stats is not None:
            self.ctx.stats.candidates_formed += 1
        best = self.aggregator.add(projected, score, derivation)
        self.tracker.offer(projected, best)

    def _probe(self, new_item: IdMatch, stream_index: int) -> None:
        """Enumerate all combinations of the new item with seen items."""
        others = [j for j in range(len(self.streams)) if j != stream_index]
        # Visit scarcer streams first: fails fast on empty/selective ones.
        others.sort(key=lambda j: len(self._seen[j]))
        if any(not self._seen[j] for j in others):
            return

        combo: list[IdMatch | None] = [None] * len(self.streams)
        combo[stream_index] = new_item

        def candidates(j: int, assigned: list[int]) -> list[IdMatch]:
            join_slots = self._join_slots[j]
            if join_slots and all(assigned[s] != UNBOUND for s in join_slots):
                key = tuple(assigned[s] for s in join_slots)
                return self._join_index[j].get(key, [])
            return list(self._seen[j].values())

        def backtrack(position: int, assigned: list[int]) -> None:
            if position == len(others):
                self._emit([item for item in combo if item is not None])
                return
            j = others[position]
            for item in candidates(j, assigned):
                binding = item.binding
                compatible = True
                for slot in item.slots:
                    current = assigned[slot]
                    if current != UNBOUND and current != binding[slot]:
                        compatible = False
                        break
                if not compatible:
                    continue
                extended = assigned.copy()
                for slot in item.slots:
                    extended[slot] = binding[slot]
                combo[j] = item
                backtrack(position + 1, extended)
            combo[j] = None

        backtrack(0, list(new_item.binding))

    def _index_key(self, item: IdMatch, stream_index: int) -> tuple[int, ...]:
        binding = item.binding
        return tuple(binding[s] for s in self._join_slots[stream_index])

    # -- main loop ------------------------------------------------------------

    def run(self, should_stop: Callable[[], bool] | None = None) -> bool:
        """Consume streams until exhaustion or threshold termination.

        Returns True when the join is *exhausted* — it can never emit
        another combination — and False when it merely suspended (threshold
        termination or ``should_stop``).  A suspended join is resumable:
        all state lives on the instance, so calling :meth:`run` again
        continues exactly where it left off (the driver does this when a
        stream's consumer asks for more answers and the threshold drops).

        With ``strict_ties`` termination requires the k-th best score to
        *strictly* beat the upper bound: combinations tying the threshold
        are still formed, which makes the surviving top-k independent of
        where the computation was split — the invariant resumable streams
        are built on.  The default (``>=``) is the seed's eager rule.
        """
        streams = self.streams
        while True:
            peeks = [stream.peek() for stream in streams]
            live = [i for i, p in enumerate(peeks) if p is not None]
            if not live:
                return True
            # A stream that is exhausted without ever emitting can never be
            # part of a combination — the whole join is empty-handed.
            if any(
                peeks[i] is None and not self._seen[i]
                for i in range(len(streams))
            ):
                return True
            if not self.exhaustive:
                bound = self.upper_bound(peeks)
                if self.tracker.is_full and (
                    self.tracker.threshold > bound
                    if self.strict_ties
                    else self.tracker.threshold >= bound
                ):
                    return False
            if should_stop is not None and should_stop():
                return False
            # Advance the stream with the highest head (ties: lowest index).
            index = max(live, key=lambda i: (peeks[i], -i))
            item = streams[index].pop()
            if item is None:
                continue
            if self._best[index] is None:
                self._best[index] = item.score
            if item.binding in self._seen[index]:
                continue  # merged streams dedupe already; double guard
            self._seen[index][item.binding] = item
            self._join_index[index].setdefault(
                self._index_key(item, index), []
            ).append(item)
            self._probe(item, index)
