"""Naive reference evaluation, independent of the top-k machinery.

:func:`naive_join` evaluates a query by plain backtracking over the store
with exact matching only — no relaxation, no token expansion, no pruning.
Tests compare the :class:`~repro.topk.processor.TopKProcessor` (with
relaxation disabled) against it; any disagreement is a bug in cursors, the
merge, the join, or the bounds.

For reference semantics *with* relaxation, use a processor configured with
``exhaustive=True`` — same semantics as the adaptive processor, all early
termination disabled.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.core.results import BindingKey, binding_key
from repro.core.terms import Term, Variable
from repro.scoring.language_model import PatternScorer
from repro.storage.store import TripleStore


def naive_join(
    store: TripleStore,
    scorer: PatternScorer,
    query: Query,
    limit: int | None = None,
) -> list[tuple[BindingKey, float]]:
    """All answers of ``query`` under exact matching, best score first.

    Results are (projection binding, score) pairs, deduplicated by binding
    with max-score semantics, sorted by (score desc, binding) — the same
    deterministic order the processor uses.
    """
    best: dict[BindingKey, float] = {}

    # Most selective pattern first keeps the backtracking tree small.
    ordered = sorted(query.patterns, key=store.cardinality)

    def backtrack(index: int, binding: dict[Variable, Term], score: float) -> None:
        if index == len(ordered):
            key = binding_key(
                {v: binding[v] for v in query.projection if v in binding}
            )
            if score > best.get(key, -1.0):
                best[key] = score
            return
        # Matching narrows with the current binding, but scoring is always
        # against the *original* pattern — the same emission model the
        # processor's per-pattern cursors use (a pattern's mass does not
        # depend on the join order).
        original = ordered[index]
        pattern = original.substitute(binding)
        for record in store.matches(pattern):
            local = pattern.bind(record.triple)
            if local is None:
                continue
            extended = dict(binding)
            extended.update(local)
            backtrack(
                index + 1, extended, score * scorer.score(original, record)
            )

    backtrack(0, {}, 1.0)
    ranked = sorted(
        best.items(),
        key=lambda kv: (
            -kv[1],
            tuple((var.name, term.sort_key()) for var, term in kv[0]),
        ),
    )
    return ranked if limit is None else ranked[:limit]
