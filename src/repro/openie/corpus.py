"""Synthetic Web/news corpus with FACC1-style entity annotations.

The corpus plays ClueWeb'09's role: raw text from which Open IE recovers the
knowledge the KG is missing.  Documents verbalise facts of the *complete*
world through per-relation paraphrase templates, so:

* every relation has several surface forms ("works at" / "is affiliated
  with" / "joined ...") — the redundancy arg-overlap rule mining feeds on;
* vocabulary-gapped relations (``lecturedAt``, ``housedIn``, ``prizeFor``,
  ``collaboratedWith``) appear *only* here — the incompleteness the XKG
  repairs;
* entity popularity is Zipf-skewed, so facts about popular entities are
  observed many times (the tf-like evidence in answer scoring).

Generation is two-pass: a *coverage pass* renders (almost) every world fact
once, grouped into per-entity profile documents, then a *popularity pass*
adds documents about Zipf-sampled focus entities repeating their facts.
Every entity mention is recorded with character offsets — the FACC1
simulation used as gold data by NED evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.kg.world import World, WorldFact
from repro.util.rand import SeededRng

#: Templates per world relation: (pattern, ) with {X} the relation subject
#: and {Y} the object.  Patterns are plain subject-verb-object sentences so
#: the ReVerb pattern fires; several paraphrases per relation on purpose.
RELATION_TEMPLATES: dict[str, tuple[str, ...]] = {
    "bornInCity": (
        "{X} was born in {Y}",
        "{X} grew up in {Y}",
    ),
    "bornOnDate": (
        "{X} was born on {Y}",
    ),
    "diedInCity": (
        "{X} died in {Y}",
        "{X} passed away in {Y}",
    ),
    "nationality": (
        "{X} was a citizen of {Y}",
        "{X} came from {Y}",
    ),
    "worksAt": (
        "{X} works at {Y}",
        "{X} is affiliated with {Y}",
        "{X} joined {Y}",
        "{X} was employed by {Y}",
    ),
    "educatedAt": (
        "{X} graduated from {Y}",
        "{X} studied at {Y}",
        "{X} earned a doctorate from {Y}",
    ),
    "hasAdvisor": (
        "{X} studied under {Y}",
        "{X} was a student of {Y}",
        "{Y} supervised {X}",
        "{Y} was the doctoral advisor of {X}",
    ),
    "lecturedAt": (
        "{X} lectured at {Y}",
        "{X} gave lectures at {Y}",
        "{X} taught at {Y}",
    ),
    "fieldOf": (
        "{X} specialized in {Y}",
        "{X} made seminal contributions to {Y}",
    ),
    "wonPrize": (
        "{X} won the {Y}",
        "{X} received the {Y}",
        "{X} was awarded the {Y}",
    ),
    "prizeFor": (
        "{X} won a Nobel for {Y}",
        "{X} received recognition for {Y}",
    ),
    "marriedTo": (
        "{X} married {Y}",
        "{X} was married to {Y}",
    ),
    "collaboratedWith": (
        "{X} collaborated with {Y}",
        "{X} worked with {Y}",
        "{X} co-authored papers with {Y}",
    ),
    "cityInCountry": (
        "{X} is located in {Y}",
        "{X} lies in {Y}",
    ),
    "orgInCity": (
        "{X} is based in {Y}",
        "{X} has its campus in {Y}",
    ),
    "housedIn": (
        "{X} is housed in {Y}",
        "{X} operates within {Y}",
    ),
    "memberOfGroup": (
        "{X} is a member of {Y}",
        "{X} belongs to {Y}",
    ),
    "prizeInField": (
        "{X} honors achievements in {Y}",
    ),
}

_NOISE_TEMPLATES = (
    "During those years {X} traveled widely",
    "Many articles were written about {X}",
    "{X} remained famously private",
    "The legacy of {X} is studied closely",
)

_MONTHS = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)


@dataclass(frozen=True)
class Mention:
    """A FACC1-style gold annotation: surface span → entity id."""

    entity_id: str
    surface: str
    start: int
    end: int


@dataclass(frozen=True)
class Sentence:
    """One sentence with its gold mentions and originating fact (if any)."""

    text: str
    mentions: tuple[Mention, ...] = ()
    fact: WorldFact | None = None


@dataclass(frozen=True)
class Document:
    """A generated pseudo-Web document."""

    doc_id: str
    focus_entity: str
    sentences: tuple[Sentence, ...]

    @property
    def text(self) -> str:
        return ". ".join(s.text for s in self.sentences) + "."


@dataclass(frozen=True)
class CorpusConfig:
    """Corpus size and style parameters (defaults: test scale)."""

    seed: int = 23
    coverage_probability: float = 0.92
    facts_per_profile_doc: int = 6
    num_popularity_documents: int = 120
    facts_per_popularity_doc_min: int = 2
    facts_per_popularity_doc_max: int = 6
    short_name_probability: float = 0.25
    noise_probability: float = 0.2


class CorpusGenerator:
    """Deterministic corpus generation from a world."""

    def __init__(self, world: World, config: CorpusConfig | None = None):
        self.world = world
        self.config = config if config is not None else CorpusConfig()

    # -- surface forms ------------------------------------------------------------

    def _surface(self, entity_or_literal: str, literal: bool, rng: SeededRng) -> tuple[str, str | None]:
        """(rendered surface, entity id or None for literals)."""
        if literal:
            return self._render_literal(entity_or_literal), None
        entity = self.world.entities[entity_or_literal]
        surface = entity.surface
        if (
            entity.kind == "person"
            and " " in surface
            and rng.chance(self.config.short_name_probability)
        ):
            surface = surface.split()[-1]  # family name only: NED ambiguity
        return surface, entity.id

    @staticmethod
    def _render_literal(value: str) -> str:
        try:
            parsed = date.fromisoformat(value)
        except ValueError:
            return value
        return f"{_MONTHS[parsed.month - 1]} {parsed.day} {parsed.year}"

    def _render_fact(self, fact: WorldFact, rng: SeededRng) -> Sentence:
        templates = RELATION_TEMPLATES[fact.relation]
        template = templates[rng.randint(0, len(templates) - 1)]
        x_surface, x_id = self._surface(fact.subject, False, rng)
        y_surface, y_id = self._surface(fact.obj, fact.literal, rng)
        mentions: list[Mention] = []
        text_parts: list[str] = []
        cursor = 0
        remaining = template
        while remaining:
            x_pos = remaining.find("{X}")
            y_pos = remaining.find("{Y}")
            positions = [p for p in (x_pos, y_pos) if p != -1]
            if not positions:
                text_parts.append(remaining)
                break
            next_pos = min(positions)
            literal_part = remaining[:next_pos]
            text_parts.append(literal_part)
            cursor += len(literal_part)
            if next_pos == x_pos:
                surface, entity_id = x_surface, x_id
                remaining = remaining[next_pos + 3 :]
            else:
                surface, entity_id = y_surface, y_id
                remaining = remaining[next_pos + 3 :]
            if entity_id is not None:
                mentions.append(
                    Mention(entity_id, surface, cursor, cursor + len(surface))
                )
            text_parts.append(surface)
            cursor += len(surface)
        return Sentence("".join(text_parts), tuple(mentions), fact)

    def _noise_sentence(self, focus_id: str, rng: SeededRng) -> Sentence:
        template = _NOISE_TEMPLATES[rng.randint(0, len(_NOISE_TEMPLATES) - 1)]
        surface, entity_id = self._surface(focus_id, False, rng)
        prefix = template.split("{X}")[0]
        text = template.replace("{X}", surface)
        start = len(prefix)
        mention = Mention(entity_id, surface, start, start + len(surface))
        return Sentence(text, (mention,), None)

    # -- generation ------------------------------------------------------------

    def generate(self) -> list[Document]:
        """The full corpus: coverage pass then popularity pass."""
        rng = SeededRng(self.config.seed)
        documents: list[Document] = []
        documents.extend(self._coverage_pass(rng.fork("coverage")))
        documents.extend(self._popularity_pass(rng.fork("popularity")))
        return documents

    def _facts_by_subject(self) -> dict[str, list[WorldFact]]:
        grouped: dict[str, list[WorldFact]] = {}
        for fact in self.world.facts:
            if fact.relation in RELATION_TEMPLATES:
                grouped.setdefault(fact.subject, []).append(fact)
        return grouped

    def _coverage_pass(self, rng: SeededRng) -> list[Document]:
        """Profile documents rendering (almost) every world fact once."""
        documents: list[Document] = []
        grouped = self._facts_by_subject()
        doc_index = 0
        for subject in sorted(grouped):
            kept = [
                fact
                for fact in grouped[subject]
                if rng.chance(self.config.coverage_probability)
            ]
            for batch_start in range(0, len(kept), self.config.facts_per_profile_doc):
                batch = kept[batch_start : batch_start + self.config.facts_per_profile_doc]
                sentences = [self._render_fact(fact, rng) for fact in batch]
                if rng.chance(self.config.noise_probability):
                    sentences.append(self._noise_sentence(subject, rng))
                documents.append(
                    Document(
                        doc_id=f"web-{doc_index:05d}",
                        focus_entity=subject,
                        sentences=tuple(sentences),
                    )
                )
                doc_index += 1
        return documents

    def _popularity_pass(self, rng: SeededRng) -> list[Document]:
        """Extra documents about Zipf-popular entities (repeat observations)."""
        documents: list[Document] = []
        grouped = self._facts_by_subject()
        # Focus pool: people first (news is about people), then organisations.
        pool = [p.id for p in self.world.people] + [
            o.id for o in self.world.organizations()
        ]
        pool = [entity_id for entity_id in pool if entity_id in grouped]
        if not pool:
            return documents
        for doc_number in range(self.config.num_popularity_documents):
            focus = pool[rng.zipf_index(len(pool))]
            facts = grouped[focus]
            low = min(self.config.facts_per_popularity_doc_min, len(facts))
            high = min(self.config.facts_per_popularity_doc_max, len(facts))
            count = rng.randint(min(low, high), max(low, high))
            chosen = rng.sample(facts, min(count, len(facts)))
            sentences = [self._render_fact(fact, rng) for fact in chosen]
            if rng.chance(self.config.noise_probability):
                sentences.append(self._noise_sentence(focus, rng))
            documents.append(
                Document(
                    doc_id=f"news-{doc_number:05d}",
                    focus_entity=focus,
                    sentences=tuple(sentences),
                )
            )
        return documents
