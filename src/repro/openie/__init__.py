"""Open Information Extraction pipeline and synthetic Web corpus.

The paper extends its KG with token triples extracted by ReVerb/OLLIE-style
Open IE from ClueWeb'09, with FACC1 entity annotations and AIDA-style named
entity disambiguation.  This package provides offline equivalents:

* :mod:`corpus` — a deterministic generator of Web/news-style documents that
  verbalise the *complete* world model (including facts the KG dropped)
  through many paraphrase templates, with gold FACC1-style mention
  annotations;
* :mod:`tokenizer`, :mod:`postag`, :mod:`chunker` — a small, dependency-free
  NLP stack (tokeniser, lexicon+suffix POS tagger, NP chunker);
* :mod:`reverb` — a ReVerb-style extractor matching the V | V P | V W* P
  relation-phrase pattern between noun phrases, with heuristic confidence;
* :mod:`ned` — mention-dictionary named entity disambiguation with a
  popularity prior and context overlap.
"""

from repro.openie.tokenizer import Token, tokenize
from repro.openie.postag import tag_tokens, TaggedToken
from repro.openie.chunker import NounPhrase, chunk_noun_phrases
from repro.openie.reverb import Extraction, ReverbExtractor
from repro.openie.corpus import (
    CorpusConfig,
    CorpusGenerator,
    Document,
    Mention,
    Sentence,
    RELATION_TEMPLATES,
)
from repro.openie.ned import EntityLinker, LinkResult

__all__ = [
    "Token",
    "tokenize",
    "tag_tokens",
    "TaggedToken",
    "NounPhrase",
    "chunk_noun_phrases",
    "Extraction",
    "ReverbExtractor",
    "CorpusConfig",
    "CorpusGenerator",
    "Document",
    "Sentence",
    "Mention",
    "RELATION_TEMPLATES",
    "EntityLinker",
    "LinkResult",
]
