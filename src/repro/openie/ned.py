"""Named entity disambiguation (the AIDA/Spotlight/TagMe stand-in).

Links extraction argument phrases to KG entities so the XKG's S/O slots are
canonical resources where possible (Section 2: "tools for Named Entity
Disambiguation can link the S or O phrases to entities in the KG").

The linker is mention-dictionary based, as real NED systems are:

* candidate generation — exact surface match, plus family-name match for
  people ("Einstein" → every person whose surface ends in Einstein);
* disambiguation — popularity prior (earlier-generated people are more
  popular, mirroring how the corpus mentions them more) combined with
  context overlap between the sentence and the names of entities related to
  the candidate;
* confidence thresholding — ambiguous mentions below the margin stay
  *unlinked* and enter the XKG as text tokens, exactly the lower-confidence
  vagueness the paper attributes to token triples.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.kg.world import World
from repro.util.text import normalize_phrase, tokenize_phrase


@dataclass(frozen=True)
class LinkResult:
    """Outcome of linking one phrase."""

    entity_id: str | None
    confidence: float
    ambiguous: bool = False

    @property
    def linked(self) -> bool:
        return self.entity_id is not None


class EntityLinker:
    """Dictionary + popularity + context NED over a world's entities.

    Parameters
    ----------
    world:
        Supplies the mention dictionary and the relatedness context.  (Real
        NED systems use the KG itself for both; the world plays that role
        here and nothing leaks to query processing — the linker's output is
        only ever data, never judgments.)
    min_confidence:
        Mentions whose best candidate scores below this stay unlinked.
    margin:
        Minimum score gap between best and runner-up; closer calls are
        declared ambiguous and stay unlinked.
    """

    def __init__(self, world: World, min_confidence: float = 0.5, margin: float = 0.1):
        self.world = world
        self.min_confidence = min_confidence
        self.margin = margin
        self._exact: dict[str, list[str]] = defaultdict(list)
        self._family: dict[str, list[str]] = defaultdict(list)
        self._popularity: dict[str, float] = {}
        self._context_words: dict[str, frozenset[str]] = {}
        self._build()

    def _build(self) -> None:
        for index, person in enumerate(self.world.people):
            # Zipf-style prior decaying with generation index.
            self._popularity[person.id] = 1.0 / (1.0 + index)
        for entity_id, entity in sorted(self.world.entities.items()):
            if entity_id not in self._popularity:
                self._popularity[entity_id] = 0.3
            surface_norm = normalize_phrase(entity.surface)
            self._exact[surface_norm].append(entity_id)
            if entity.kind == "person" and " " in entity.surface:
                family = normalize_phrase(entity.surface.split()[-1])
                self._family[family].append(entity_id)

        # Context words: surfaces of related entities (employer, cities...).
        related: dict[str, set[str]] = defaultdict(set)
        for fact in self.world.facts:
            if fact.literal:
                continue
            for a, b in ((fact.subject, fact.obj), (fact.obj, fact.subject)):
                other = self.world.entities.get(b)
                if other is not None:
                    related[a].update(tokenize_phrase(other.surface))
        self._context_words = {
            entity_id: frozenset(words) for entity_id, words in related.items()
        }

    def candidates(self, phrase: str) -> list[str]:
        """Candidate entity ids for a mention phrase (exact, then family)."""
        norm = normalize_phrase(phrase)
        found = list(self._exact.get(norm, ()))
        for candidate in self._family.get(norm, ()):
            if candidate not in found:
                found.append(candidate)
        return found

    def link(self, phrase: str, context: str = "") -> LinkResult:
        """Link ``phrase`` given its sentence ``context``.

        >>> # doctest shape only; real ids depend on the world seed
        """
        found = self.candidates(phrase)
        if not found:
            return LinkResult(None, 0.0)
        context_tokens = set(tokenize_phrase(context))
        scored: list[tuple[float, str]] = []
        for entity_id in found:
            prior = self._popularity.get(entity_id, 0.1)
            overlap = 0.0
            related = self._context_words.get(entity_id)
            if related and context_tokens:
                overlap = len(context_tokens & related) / len(context_tokens)
            # Exact full-surface matches are near-certain regardless of prior.
            exact_bonus = (
                0.6
                if normalize_phrase(self.world.entities[entity_id].surface)
                == normalize_phrase(phrase)
                else 0.0
            )
            scored.append((min(1.0, 0.3 * prior + 0.4 * overlap + exact_bonus), entity_id))
        scored.sort(key=lambda item: (-item[0], item[1]))
        best_score, best_id = scored[0]
        if best_score < self.min_confidence:
            return LinkResult(None, best_score)
        if len(scored) > 1 and best_score - scored[1][0] < self.margin:
            return LinkResult(None, best_score, ambiguous=True)
        return LinkResult(best_id, best_score)

    def evaluate(self, documents) -> dict[str, float]:
        """Precision/recall of the linker against the corpus gold mentions.

        Used by tests and the XKG-scale bench to show the NED stand-in
        behaves like a real linker (high precision, imperfect recall).
        """
        correct = linked = total = 0
        for document in documents:
            for sentence in document.sentences:
                for mention in sentence.mentions:
                    total += 1
                    result = self.link(mention.surface, sentence.text)
                    if result.linked:
                        linked += 1
                        if result.entity_id == mention.entity_id:
                            correct += 1
        return {
            "total_mentions": total,
            "linked": linked,
            "precision": correct / linked if linked else 0.0,
            "recall": correct / total if total else 0.0,
        }
