"""Noun-phrase chunking over tagged tokens.

An NP chunk is a maximal run of determiner/adjective/noun/numeral tags
containing at least one noun.  Chunks carry token index spans so the
extractor can reason about adjacency with relation phrases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openie.postag import TaggedToken

#: Tags allowed inside an NP chunk.
_NP_TAGS = {"DT", "JJ", "NN", "NNS", "NNP", "CD"}
#: Tags that make a chunk a real NP (it must contain one).
_NOUN_TAGS = {"NN", "NNS", "NNP"}


@dataclass(frozen=True)
class NounPhrase:
    """A chunk: token index span [start, end) plus convenience accessors."""

    start: int
    end: int
    tokens: tuple[TaggedToken, ...]

    @property
    def text(self) -> str:
        return " ".join(t.text for t in self.tokens)

    @property
    def text_without_determiner(self) -> str:
        """The phrase with leading determiners stripped (for NED lookup)."""
        kept = list(self.tokens)
        while kept and kept[0].tag == "DT":
            kept = kept[1:]
        return " ".join(t.text for t in kept)

    @property
    def is_proper(self) -> bool:
        """True when the head looks like a named entity (any NNP inside)."""
        return any(t.tag == "NNP" for t in self.tokens)

    @property
    def head(self) -> str:
        """The last noun token's text (the syntactic head, roughly)."""
        for tagged in reversed(self.tokens):
            if tagged.tag in _NOUN_TAGS:
                return tagged.text
        return self.tokens[-1].text


def chunk_noun_phrases(tagged: list[TaggedToken]) -> list[NounPhrase]:
    """Maximal NP chunks, left to right.

    >>> from repro.openie.tokenizer import tokenize
    >>> from repro.openie.postag import tag_tokens
    >>> sentence = tag_tokens(tokenize("Einstein lectured at Princeton University"))
    >>> [np.text for np in chunk_noun_phrases(sentence)]
    ['Einstein', 'Princeton University']
    """
    chunks: list[NounPhrase] = []
    start = None
    for index, tagged_token in enumerate(tagged):
        if tagged_token.tag in _NP_TAGS:
            if start is None:
                start = index
            continue
        if start is not None:
            _close(chunks, tagged, start, index)
            start = None
    if start is not None:
        _close(chunks, tagged, start, len(tagged))
    return chunks


def _close(
    chunks: list[NounPhrase], tagged: list[TaggedToken], start: int, end: int
) -> None:
    window = tagged[start:end]
    if any(t.tag in _NOUN_TAGS for t in window):
        chunks.append(NounPhrase(start, end, tuple(window)))
