"""Lexicon + suffix heuristic part-of-speech tagger.

A tiny deterministic tagger sufficient for ReVerb-style pattern matching over
the corpus generator's output (and reasonable on similar English).  The tag
inventory is the Penn subset the extractor consumes:

``DT`` determiner · ``IN`` preposition · ``TO`` to · ``CC`` conjunction ·
``PRP`` pronoun · ``VB*`` verbs (VBD past, VBZ 3rd-sg, VBG gerund, VBN past
participle, VB base) · ``NN/NNS`` common nouns · ``NNP`` proper noun ·
``CD`` numeral · ``JJ`` adjective · ``RB`` adverb · ``.`` punctuation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openie.tokenizer import Token

_DETERMINERS = {"the", "a", "an", "his", "her", "its", "their", "this", "that", "these", "those"}
_PREPOSITIONS = {
    "in", "at", "of", "for", "with", "on", "by", "from", "under", "within",
    "into", "about", "after", "before", "during", "against", "between", "near",
}
_CONJUNCTIONS = {"and", "or", "but"}
_PRONOUNS = {"he", "she", "it", "they", "him", "them", "who", "which"}
_COPULA_PAST = {"was", "were"}
_COPULA_PRESENT = {"is", "are"}
_AUX = {"has", "have", "had", "been", "be", "will", "would", "did", "does", "do"}

#: Irregular / corpus-frequent past-tense verbs.
_VBD = {
    "won", "received", "studied", "worked", "joined", "married", "graduated",
    "lectured", "taught", "supervised", "died", "specialized", "collaborated",
    "earned", "made", "grew", "came", "passed", "met", "gave", "held", "led",
    "wrote", "founded", "moved", "visited", "ran", "became", "spent", "left",
}
#: Past participles that follow copulas in the corpus templates.
_VBN = {
    "born", "housed", "located", "based", "affiliated", "awarded", "employed",
    "educated", "married", "honored", "recognized", "elected", "appointed",
    "named", "known",
}
_VBZ = {
    "works", "lies", "belongs", "operates", "honors", "specializes", "holds",
    "teaches", "lives", "sits", "remains",
}
_ADJECTIVES = {
    "doctoral", "pleasant", "famous", "renowned", "influential", "young",
    "early", "late", "annual", "prestigious", "seminal", "notable",
}
_ADVERBS = {"closely", "briefly", "later", "famously", "jointly", "frequently"}


@dataclass(frozen=True)
class TaggedToken:
    """A token with its part-of-speech tag."""

    token: Token
    tag: str

    @property
    def text(self) -> str:
        return self.token.text

    @property
    def lower(self) -> str:
        return self.token.text.lower()


def _tag_word(token: Token, is_sentence_initial: bool) -> str:
    text = token.text
    lower = text.lower()
    if token.is_punctuation:
        return "."
    if lower in _DETERMINERS:
        return "DT"
    if lower == "to":
        return "TO"
    if lower in _PREPOSITIONS:
        return "IN"
    if lower in _CONJUNCTIONS:
        return "CC"
    if lower in _PRONOUNS:
        return "PRP"
    if lower in _COPULA_PAST or lower in _COPULA_PRESENT or lower in _AUX:
        return "VBD" if lower in _COPULA_PAST else "VBZ"
    if lower in _VBD:
        return "VBD"
    if lower in _VBN:
        return "VBN"
    if lower in _VBZ:
        return "VBZ"
    if lower in _ADJECTIVES:
        return "JJ"
    if lower in _ADVERBS:
        return "RB"
    if any(c.isdigit() for c in text):
        return "CD"
    # Capitalised mid-sentence → proper noun.  Sentence-initially we cannot
    # tell, so fall through to the suffix heuristics (names still get NNP
    # because they lack verb/adverb suffixes and title case wins below).
    if text[0].isupper() and not is_sentence_initial:
        return "NNP"
    if lower.endswith("ly") and len(lower) > 3:
        return "RB"
    if lower.endswith("ing") and len(lower) > 4:
        return "VBG"
    if lower.endswith("ed") and len(lower) > 3:
        return "VBD"
    if text[0].isupper():
        return "NNP"
    if lower.endswith("s") and not lower.endswith("ss") and len(lower) > 3:
        return "NNS"
    return "NN"


def tag_tokens(tokens: list[Token]) -> list[TaggedToken]:
    """Tag a token sequence.

    >>> from repro.openie.tokenizer import tokenize
    >>> [t.tag for t in tag_tokens(tokenize("Einstein lectured at Princeton"))]
    ['NNP', 'VBD', 'IN', 'NNP']
    """
    return [
        TaggedToken(token, _tag_word(token, index == 0))
        for index, token in enumerate(tokens)
    ]
