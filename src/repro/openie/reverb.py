"""ReVerb-style Open IE extractor.

ReVerb (Fader, Soderland, Etzioni — EMNLP 2011) extracts (NP, VP, NP) triples
where the relation phrase matches the regular pattern::

    V | V P | V W* P

V = verb (optionally preceded by auxiliaries/copulas), W = noun, adjective,
adverb, determiner or participle, P = preposition/particle.  We implement the
same syntactic constraint over our tagger's output: for every adjacent pair
of noun phrases, the longest token run strictly between them that matches
the pattern becomes the relation phrase.

Confidence is a deterministic heuristic in the spirit of ReVerb's logistic
regression scorer: proper-noun arguments, a preposition-terminated relation
phrase and short relation phrases raise confidence; long phrases and
pronoun arguments lower it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openie.chunker import NounPhrase, chunk_noun_phrases
from repro.openie.postag import TaggedToken, tag_tokens
from repro.openie.tokenizer import tokenize

_VERB_TAGS = {"VBD", "VBZ", "VB", "VBG", "VBN"}
_W_TAGS = {"NN", "NNS", "NNP", "JJ", "RB", "DT", "VBN", "CD"}
_P_TAGS = {"IN", "TO"}


@dataclass(frozen=True)
class Extraction:
    """One (subject phrase, relation phrase, object phrase) extraction."""

    subject: str
    relation: str
    object: str
    confidence: float
    sentence: str

    def as_tuple(self) -> tuple[str, str, str]:
        return (self.subject, self.relation, self.object)


def _match_relation(tokens: list[TaggedToken]) -> bool:
    """Does the token run match  V | V P | V W* P  (with leading auxiliaries)?"""
    if not tokens:
        return False
    index = 0
    # Leading auxiliaries / copulas count as part of V ("was born in").
    while index < len(tokens) and tokens[index].tag in _VERB_TAGS:
        index += 1
    if index == 0:
        return False  # must start with a verb
    if index == len(tokens):
        return True  # plain V
    # Optional W* then one P, consuming the rest.
    while index < len(tokens) - 1 and tokens[index].tag in _W_TAGS:
        index += 1
    return index == len(tokens) - 1 and tokens[index].tag in _P_TAGS


class ReverbExtractor:
    """Extracts ReVerb-style triples from raw sentences.

    Parameters
    ----------
    min_confidence:
        Extractions scoring below this are discarded.
    max_relation_tokens:
        Relation phrases longer than this are rejected outright (ReVerb's
        over-specification guard).
    """

    def __init__(self, min_confidence: float = 0.3, max_relation_tokens: int = 6):
        self.min_confidence = min_confidence
        self.max_relation_tokens = max_relation_tokens

    def extract(self, sentence: str) -> list[Extraction]:
        """All extractions from one sentence, left to right.

        ReVerb's longest-match heuristic is applied: for a subject NP, the
        relation phrase extends over intermediate noun material to the last
        NP it can validly reach ("was a student of Newmov" beats stopping at
        "was" / "a student").  After an extraction, scanning resumes at the
        object NP, so chained clauses yield chained extractions.

        >>> ReverbExtractor().extract(
        ...     "Einstein lectured at Princeton University")[0].as_tuple()
        ('Einstein', 'lectured at', 'Princeton University')
        >>> ReverbExtractor().extract(
        ...     "Einstein was a student of Kleiner")[0].as_tuple()
        ('Einstein', 'was a student of', 'Kleiner')
        """
        tagged = tag_tokens(tokenize(sentence))
        chunks = chunk_noun_phrases(tagged)
        extractions: list[Extraction] = []
        index = 0
        while index < len(chunks) - 1:
            left = chunks[index]
            best: tuple[int, list[TaggedToken]] | None = None
            for j in range(index + 1, len(chunks)):
                between = tagged[left.end : chunks[j].start]
                # Punctuation between the NPs breaks the clause.
                if any(t.tag == "." for t in between):
                    break
                if not between or len(between) > self.max_relation_tokens:
                    continue
                if _match_relation(between):
                    best = (j, between)  # keep extending: longest match wins
            if best is None:
                index += 1
                continue
            object_index, relation_tokens = best
            right = chunks[object_index]
            relation = " ".join(t.text for t in relation_tokens)
            confidence = self._confidence(left, relation_tokens, right)
            if confidence >= self.min_confidence:
                extractions.append(
                    Extraction(
                        subject=left.text_without_determiner,
                        relation=relation,
                        object=right.text_without_determiner,
                        confidence=confidence,
                        sentence=sentence,
                    )
                )
            index = object_index
        return extractions

    def _confidence(
        self,
        subject: NounPhrase,
        relation: list[TaggedToken],
        obj: NounPhrase,
    ) -> float:
        score = 0.55
        if subject.is_proper:
            score += 0.12
        if obj.is_proper:
            score += 0.12
        if relation[-1].tag in _P_TAGS:
            score += 0.08  # preposition-final relations are crisper
        if len(relation) <= 3:
            score += 0.05
        if len(relation) >= 5:
            score -= 0.12
        if any(t.tag == "PRP" for t in subject.tokens + obj.tokens):
            score -= 0.20
        if len(subject.tokens) > 5 or len(obj.tokens) > 5:
            score -= 0.08
        return max(0.05, min(0.95, round(score, 3)))
