"""Whitespace-and-punctuation tokeniser with character offsets.

Offsets are preserved so extractions can be traced back to the exact span of
the source sentence (provenance for answer explanations) and so gold mention
annotations can be aligned with extraction arguments.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Characters split off as separate punctuation tokens.
_PUNCTUATION = set(".,;:!?()[]\"“”")


@dataclass(frozen=True)
class Token:
    """A token with its [start, end) character span in the sentence."""

    text: str
    start: int
    end: int

    @property
    def is_punctuation(self) -> bool:
        return all(c in _PUNCTUATION or c == "'" for c in self.text)


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens, separating trailing/leading punctuation.

    Apostrophes inside words ("Einstein's") are kept attached; hyphens are
    kept ("co-authored").

    >>> [t.text for t in tokenize("Einstein lectured at Princeton.")]
    ['Einstein', 'lectured', 'at', 'Princeton', '.']
    """
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        if text[i].isspace():
            i += 1
            continue
        if text[i] in _PUNCTUATION:
            tokens.append(Token(text[i], i, i + 1))
            i += 1
            continue
        j = i
        while j < n and not text[j].isspace() and text[j] not in _PUNCTUATION:
            j += 1
        tokens.append(Token(text[i:j], i, j))
        i = j
    return tokens


def detokenize(tokens: list[Token], source: str) -> str:
    """Reconstruct the exact source span covered by ``tokens``."""
    if not tokens:
        return ""
    return source[tokens[0].start : tokens[-1].end]
