"""``python -m repro.analysis`` — run the invariant checker.

Exit status: 0 when every finding is suppressed (or there are none),
1 when unsuppressed findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.framework import all_rules, analyze


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant checker (concurrency, lifecycle, "
        "determinism, observability contracts).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule (repeatable); default: all rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in text output",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id}: {rule.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    errors: list[str] = []
    try:
        findings = analyze(
            paths,
            rule_ids=args.rules,
            root=Path.cwd(),
            on_error=lambda path, exc: errors.append(f"{path}: {exc}"),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    if args.format == "json":
        payload = {
            "version": 1,
            "findings": [f.to_dict() for f in active],
            "suppressed": [f.to_dict() for f in suppressed],
            "errors": errors,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        for finding in active:
            print(finding.render())
        if args.show_suppressed:
            for finding in suppressed:
                print(finding.render())
        print(
            f"{len(active)} finding(s), {len(suppressed)} suppressed"
            + (f", {len(errors)} file error(s)" if errors else "")
        )

    return 1 if active or errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
