"""Static invariant checker for the repro codebase.

The engine's hard contracts — lock-guarded shared state, executor
lifecycles, byte-identical parallel execution, close()/release()
sentinels, the :class:`~repro.core.results.QueryStats` observability
surface — are enforced at runtime by the property suites.  This package
is their static complement: a zero-dependency ``ast`` walk that catches
whole classes of races and drift before a test ever runs.

Run it with::

    python -m repro.analysis [--format text|json] [--rule ID ...] [paths]

Findings can be suppressed inline with ``# xkg: allow[rule-id] reason``
(trailing on the offending line, or on a comment line directly above).
A suppression without a reason is itself a finding.
"""

from repro.analysis.framework import (
    Finding,
    FileContext,
    Project,
    Rule,
    all_rules,
    analyze,
    register,
)

# Importing the rules package registers every built-in rule.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "Finding",
    "FileContext",
    "Project",
    "Rule",
    "all_rules",
    "analyze",
    "register",
]
