"""Rule framework: file contexts, findings, suppressions, the registry.

Design notes
------------
Rules are instances of :class:`Rule` registered by id.  Each rule sees
one :class:`FileContext` at a time (``check``) and, after every file has
been walked, the whole :class:`Project` (``finish``) — the latter is how
cross-file rules (the stats-surface check) correlate a dataclass with
the modules that render it.

A :class:`FileContext` carries the parsed tree, a parent map (``ast``
has no parent pointers), and the file's suppression table, parsed from
``# xkg: allow[rule-id] reason`` comments with :mod:`tokenize` so
strings containing the marker are never misread as suppressions.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from pathlib import Path
from typing import Callable, Iterable, Iterator

_SUPPRESS_RE = re.compile(
    r"#\s*xkg:\s*allow\[(?P<rules>[A-Za-z0-9_\-, ]+)\]\s*(?P<reason>.*)$"
)

#: Rule id used for findings about the suppression comments themselves
#: (missing reason, unknown rule id).  Not suppressible.
META_RULE = "suppression"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a file:line."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    suppression_reason: str | None = None

    def to_dict(self) -> dict:
        data = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.suppressed:
            data["suppressed"] = True
            data["reason"] = self.suppression_reason or ""
        return data

    def render(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{mark}"


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One parsed ``# xkg: allow[...]`` comment."""

    line: int  #: line the suppression *applies to* (not the comment line)
    comment_line: int
    rules: tuple[str, ...]
    reason: str


class FileContext:
    """One parsed source file plus the derived structure rules need."""

    def __init__(self, path: Path, source: str, display_path: str | None = None):
        self.path = path
        self.display_path = display_path or str(path)
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        self.suppressions = _parse_suppressions(source)

    # -- structure ---------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing(self, node: ast.AST, *types: type) -> ast.AST | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, types):
                return ancestor
        return None

    def classes(self) -> list[ast.ClassDef]:
        return [n for n in ast.walk(self.tree) if isinstance(n, ast.ClassDef)]

    # -- suppressions ------------------------------------------------------

    def suppression_for(self, rule: str, line: int) -> Suppression | None:
        for suppression in self.suppressions:
            if suppression.line == line and (
                rule in suppression.rules or "all" in suppression.rules
            ):
                return suppression
        return None


def _parse_suppressions(source: str) -> list[Suppression]:
    suppressions: list[Suppression] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - parse() ran
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        comment_line = token.start[0]
        text = lines[comment_line - 1] if comment_line <= len(lines) else ""
        standalone = text[: token.start[1]].strip() == ""
        # A trailing comment targets its own line; a standalone comment
        # line targets the line below it.
        target = comment_line + 1 if standalone else comment_line
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        suppressions.append(
            Suppression(
                line=target,
                comment_line=comment_line,
                rules=rules,
                reason=match.group("reason").strip(),
            )
        )
    return suppressions


class Project:
    """Every file of one analysis run, for cross-file rules."""

    def __init__(self, files: list[FileContext]):
        self.files = files

    def find(self, suffix: str) -> FileContext | None:
        """The file whose (slash-normalised) path ends with ``suffix``."""
        normalised = suffix.replace("\\", "/")
        for ctx in self.files:
            if ctx.display_path.replace("\\", "/").endswith(normalised):
                return ctx
        return None


class Rule:
    """Base class: subclass, set ``id``/``description``, register."""

    id: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        return ()

    # -- helpers for subclasses -------------------------------------------

    def finding(
        self, ctx: FileContext, node: ast.AST | int, message: str
    ) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            rule=self.id, path=ctx.display_path, line=line, message=message
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"Rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"Duplicate rule id: {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    return dict(_REGISTRY)


# -- shared AST helpers ----------------------------------------------------


def attr_chain(node: ast.AST) -> str | None:
    """Dotted chain of a Name/Attribute expression (``self._epoch.cond``)."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def self_attr(node: ast.AST) -> str | None:
    """Attribute name when ``node`` is exactly ``self.<name>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_methods(cls: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions.

    Nested defs and lambdas run later (or never, or on another thread),
    so lexical facts about the enclosing frame — a lock being held, a
    guard having been checked — do not transfer to them.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# -- the analyzer ----------------------------------------------------------


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def load_context(path: Path, root: Path | None = None) -> FileContext:
    display = str(path)
    if root is not None:
        try:
            display = str(path.relative_to(root))
        except ValueError:
            display = str(path)
    source = path.read_text(encoding="utf-8")
    return FileContext(path, source, display_path=display)


def analyze(
    paths: Iterable[Path],
    rule_ids: Iterable[str] | None = None,
    root: Path | None = None,
    on_error: Callable[[Path, Exception], None] | None = None,
) -> list[Finding]:
    """Run the selected rules over every ``.py`` file under ``paths``.

    Returns *all* findings; suppressed ones carry ``suppressed=True``.
    Suppression comments with no reason, or naming no known rule, yield
    ``suppression`` meta-findings that cannot themselves be suppressed.
    """
    registry = all_rules()
    if rule_ids is not None:
        wanted = list(rule_ids)
        unknown = [rule for rule in wanted if rule not in registry]
        if unknown:
            raise ValueError(f"Unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [registry[rule] for rule in wanted]
    else:
        rules = list(registry.values())

    contexts: list[FileContext] = []
    for path in iter_python_files(paths):
        try:
            contexts.append(load_context(path, root=root))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            if on_error is not None:
                on_error(path, exc)
            continue

    raw: list[Finding] = []
    for ctx in contexts:
        for rule in rules:
            raw.extend(rule.check(ctx))
    project = Project(contexts)
    for rule in rules:
        raw.extend(rule.finish(project))

    by_path = {ctx.display_path: ctx for ctx in contexts}
    findings: list[Finding] = []
    for finding in raw:
        ctx = by_path.get(finding.path)
        suppression = (
            ctx.suppression_for(finding.rule, finding.line) if ctx else None
        )
        if suppression is not None and suppression.reason:
            finding = dataclasses.replace(
                finding, suppressed=True, suppression_reason=suppression.reason
            )
        findings.append(finding)

    # Malformed suppressions are findings too: a reasonless allow is a
    # rule violation waiting to be forgotten.
    known = set(registry) | {"all"}
    for ctx in contexts:
        for suppression in ctx.suppressions:
            if not suppression.reason:
                findings.append(
                    Finding(
                        rule=META_RULE,
                        path=ctx.display_path,
                        line=suppression.comment_line,
                        message=(
                            "suppression comment has no reason — name the "
                            "invariant that makes the flagged code safe"
                        ),
                    )
                )
            for rule_id in suppression.rules:
                if rule_id not in known:
                    findings.append(
                        Finding(
                            rule=META_RULE,
                            path=ctx.display_path,
                            line=suppression.comment_line,
                            message=f"suppression names unknown rule {rule_id!r}",
                        )
                    )

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
