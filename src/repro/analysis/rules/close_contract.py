"""close-contract: use-after-close must fail loudly, not crash obscurely.

A *closeable* class is one with a teardown method (``close``,
``discard``, ``release``, ``stop``) that releases state by assigning
``self`` attributes (``self._delta = None``, ``self._index = _CLOSED``,
``buffer, self._buffer = self._buffer, None``).  After teardown those
attributes no longer hold live data, so any other method that
*dereferences* one — subscripts it, iterates it, calls through it —
must be guarded.

Accepted guards, per method:

- an explicit closed check (any test mentioning ``self._closed`` /
  ``self.closed``),
- a ``None`` check mentioning the released attribute or a local bound
  from it (``delta = self._delta`` … ``if delta is not None``),
- a call to a ``self`` method that has an explicit closed check (the
  ``self._check_lookup(...)`` pattern, one level deep),
- a dereference of a *sentinel-released* attribute in the same method:
  attributes assigned the ``_CLOSED`` sentinel raise ``StorageError``
  on any access by design, so they guard everything after them,
- explicit registration: a class attribute
  ``_analysis_close_exempt = ("method", ...)`` for methods that are
  *designed* to outlive close (e.g. materialised records staying
  readable).

Teardown methods themselves, ``__init__``/``__del__``/``__exit__``,
and properties named ``closed`` are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    iter_methods,
    register,
    self_attr,
)

_TEARDOWN_NAMES = {"close", "discard", "release", "stop", "aclose"}
_EXEMPT = _TEARDOWN_NAMES | {"__init__", "__new__", "__del__", "__exit__", "__aexit__", "closed"}
_FLAG_ATTRS = {"_closed", "closed", "_stopped", "_released"}


def _is_sentinel_value(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id.endswith("_CLOSED") or node.id == "_CLOSED"
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("_CLOSED")
    return False


def _released_attrs(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[set[str], set[str]]:
    """(sentinel-released, plain-released) self attrs assigned in teardown."""
    sentinel: set[str] = set()
    plain: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            targets: list[tuple[ast.AST, ast.AST | None]] = []
            for target in node.targets:
                if isinstance(target, ast.Tuple) and isinstance(
                    node.value, ast.Tuple
                ) and len(target.elts) == len(node.value.elts):
                    targets.extend(zip(target.elts, node.value.elts))
                elif isinstance(target, ast.Tuple):
                    targets.extend((elt, None) for elt in target.elts)
                else:
                    targets.append((target, node.value))
            for target, value in targets:
                attr = self_attr(target)
                if attr is None or attr in _FLAG_ATTRS:
                    continue
                if value is not None and _is_sentinel_value(value):
                    sentinel.add(attr)
                else:
                    plain.add(attr)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = self_attr(node.target)
            if attr is not None and attr not in _FLAG_ATTRS:
                plain.add(attr)
    return sentinel, plain


def _dereferenced_attrs(
    ctx: FileContext, method: ast.FunctionDef | ast.AsyncFunctionDef
) -> dict[str, ast.AST]:
    """Released-candidate attrs this method dereferences: attr -> node.

    A dereference is any use past a bare load: subscript, iteration
    source, attribute access / method call through it, or being passed
    to a consuming builtin.  A bare load (None check, truthiness test,
    handing the object onward) is not a dereference.
    """
    derefs: dict[str, ast.AST] = {}
    for node in ast.walk(method):
        attr = self_attr(node)
        if attr is None or not isinstance(node.ctx, ast.Load):  # type: ignore[attr-defined]
            continue
        parent = ctx.parent(node)
        deref = False
        if isinstance(parent, ast.Subscript) and parent.value is node:
            deref = True
        elif isinstance(parent, ast.Attribute) and parent.value is node:
            deref = True
        elif isinstance(parent, (ast.For, ast.comprehension)) and parent.iter is node:
            deref = True
        elif (
            isinstance(parent, ast.Call)
            and node in parent.args
            and isinstance(parent.func, ast.Name)
            and parent.func.id
            in {"len", "iter", "list", "tuple", "sum", "sorted", "enumerate", "bytes", "memoryview"}
        ):
            deref = True
        if deref and attr not in derefs:
            derefs[attr] = node
    return derefs


def _has_closed_check(method: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(method):
        attr = self_attr(node)
        if attr in {"_closed", "closed", "_stopped", "_released"}:
            return True
    return False


def _has_none_check(
    method: ast.FunctionDef | ast.AsyncFunctionDef, attr: str
) -> bool:
    """A ``... is (not) None`` or truthiness test over ``attr``/an alias."""
    aliases: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and self_attr(node.value) == attr:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)

    def is_target(node: ast.AST) -> bool:
        if self_attr(node) == attr:
            return True
        return isinstance(node, ast.Name) and node.id in aliases

    def truthy_operands(test: ast.AST) -> Iterator[ast.AST]:
        yield test
        if isinstance(test, ast.BoolOp):
            for value in test.values:
                yield from truthy_operands(value)
        elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            yield from truthy_operands(test.operand)

    for node in ast.walk(method):
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            compares_none = any(
                isinstance(op, ast.Constant) and op.value is None
                for op in operands
            )
            if compares_none and any(is_target(op) for op in operands):
                return True
        if isinstance(node, (ast.If, ast.IfExp)) and any(
            is_target(op) for op in truthy_operands(node.test)
        ):
            return True
    return False


@register
class CloseContract(Rule):
    id = "close-contract"
    description = (
        "methods of closeable classes that dereference released state "
        "must guard on the closed sentinel or be explicitly registered"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for cls in ctx.classes():
            findings.extend(self._check_class(ctx, cls))
        return findings

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterable[Finding]:
        methods = {m.name: m for m in iter_methods(cls)}
        teardowns = [m for name, m in methods.items() if name in _TEARDOWN_NAMES]
        if not teardowns:
            return ()
        sentinel: set[str] = set()
        plain: set[str] = set()
        for teardown in teardowns:
            s, p = _released_attrs(teardown)
            sentinel |= s
            plain |= p
        plain -= sentinel
        if not plain and not sentinel:
            return ()

        exempt = set(_EXEMPT) | self._registered_exemptions(cls)
        checked_methods = {
            name for name, m in methods.items() if _has_closed_check(m)
        }

        findings: list[Finding] = []
        for name, method in methods.items():
            if name in exempt:
                continue
            derefs = _dereferenced_attrs(ctx, method)
            hit = {attr: node for attr, node in derefs.items() if attr in plain}
            if not hit:
                continue
            if name in checked_methods:
                continue
            if any(attr in sentinel for attr in derefs):
                continue  # a sentinel access raises first by design
            if self._calls_checked_method(method, checked_methods):
                continue
            for attr, node in sorted(hit.items()):
                if _has_none_check(method, attr):
                    continue
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{cls.name}.{name} dereferences self.{attr}, which "
                        f"{cls.name}'s teardown releases, without a closed "
                        f"guard — use-after-close would crash instead of "
                        f"raising the closed error",
                    )
                )
        return findings

    @staticmethod
    def _registered_exemptions(cls: ast.ClassDef) -> set[str]:
        for node in cls.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                value = node.value
            else:
                continue
            if (
                isinstance(target, ast.Name)
                and target.id == "_analysis_close_exempt"
                and isinstance(value, (ast.Tuple, ast.List, ast.Set))
            ):
                return {
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
        return set()

    @staticmethod
    def _calls_checked_method(
        method: ast.FunctionDef | ast.AsyncFunctionDef, checked: set[str]
    ) -> bool:
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                callee = self_attr(node.func)
                if callee in checked:
                    return True
        return False
