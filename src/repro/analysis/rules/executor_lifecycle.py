"""executor-lifecycle: every pool constructed must be shut down.

A ``ThreadPoolExecutor``/``ProcessPoolExecutor`` construction must be
one of:

- a ``with`` item (the context manager shuts it down),
- assigned to a ``self`` attribute of a class that calls
  ``.shutdown()`` on that attribute in a teardown path — a method named
  ``close``/``stop``/``shutdown``/``__exit__``/``__aexit__``/``join``,
  or a helper invoked as ``self.<helper>()`` from one of those,
- assigned to a local that has a ``.shutdown()`` call (or a
  ``try/finally`` with one) in the same function.

The assignment may sit behind a conditional expression
(``self._executor = ThreadPoolExecutor(...) if workers else None``).
Swap-then-shutdown teardown (``executor, self._executor =
self._executor, None`` then ``executor.shutdown()``) is recognised.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    iter_methods,
    register,
    self_attr,
)

_POOL_NAMES = {"ThreadPoolExecutor", "ProcessPoolExecutor"}
_TEARDOWN_METHODS = {
    "close",
    "stop",
    "shutdown",
    "join",
    "__exit__",
    "__aexit__",
    "__del__",
}


def _call_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _mentions_self_attr(node: ast.AST, attr: str) -> bool:
    return any(self_attr(sub) == attr for sub in ast.walk(node))


def _function_shuts_down_attr(
    func: ast.FunctionDef | ast.AsyncFunctionDef, attr: str
) -> bool:
    """Does ``func`` call ``.shutdown()`` on ``self.attr`` or an alias?"""
    aliases = {"self." + attr}
    # Locals bound from expressions mentioning self.attr count as
    # aliases (covers `executor, self._executor = self._executor, None`).
    local_aliases: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _mentions_self_attr(node.value, attr):
            for target in node.targets:
                targets = target.elts if isinstance(target, ast.Tuple) else [target]
                for item in targets:
                    if isinstance(item, ast.Name):
                        local_aliases.add(item.id)
    for node in ast.walk(func):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "shutdown":
            continue
        value = node.func.value
        if self_attr(value) == attr:
            return True
        if isinstance(value, ast.Name) and value.id in local_aliases:
            return True
    return False


def _class_shuts_down_attr(cls: ast.ClassDef, attr: str) -> bool:
    methods = {method.name: method for method in iter_methods(cls)}
    teardown = [m for name, m in methods.items() if name in _TEARDOWN_METHODS]
    # Helpers invoked as self.<name>() from a teardown method are part
    # of the teardown path too (one level deep).
    for method in list(teardown):
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                callee = self_attr(node.func)
                if callee in methods and methods[callee] not in teardown:
                    teardown.append(methods[callee])
    return any(_function_shuts_down_attr(method, attr) for method in teardown)


@register
class ExecutorLifecycle(Rule):
    id = "executor-lifecycle"
    description = (
        "every ThreadPoolExecutor/ProcessPoolExecutor must be stored on "
        "self with a reachable .shutdown() in a close()/stop() path, "
        "used as a context manager, or shut down locally"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) not in _POOL_NAMES:
                continue
            finding = self._check_construction(ctx, node)
            if finding is not None:
                findings.append(finding)
        return findings

    def _check_construction(
        self, ctx: FileContext, call: ast.Call
    ) -> Finding | None:
        name = _call_name(call)
        # Climb out of wrapping expressions (ternaries, boolean
        # fallbacks, parens) to the statement that consumes the pool.
        node: ast.AST = call
        parent = ctx.parent(node)
        while isinstance(parent, (ast.IfExp, ast.BoolOp)):
            node, parent = parent, ctx.parent(parent)

        if isinstance(parent, ast.withitem) and parent.context_expr is node:
            return None  # context manager: shutdown on exit

        if isinstance(parent, ast.Assign) and parent.value is node:
            for target in parent.targets:
                attr = self_attr(target)
                if attr is not None:
                    cls = ctx.enclosing(call, ast.ClassDef)
                    if cls is not None and _class_shuts_down_attr(cls, attr):
                        return None
                    return self.finding(
                        ctx,
                        call,
                        f"{name} stored on self.{attr} has no reachable "
                        f".shutdown() in a close()/stop() teardown path",
                    )
                if isinstance(target, ast.Name):
                    func = ctx.enclosing(
                        call, ast.FunctionDef, ast.AsyncFunctionDef
                    )
                    if func is not None and _local_shutdown(func, target.id):
                        return None
                    return self.finding(
                        ctx,
                        call,
                        f"{name} bound to local {target.id!r} is never "
                        f"shut down in this function — use a with block "
                        f"or call .shutdown()",
                    )
        return self.finding(
            ctx,
            call,
            f"{name} constructed without being stored: use a with block "
            f"or assign it to self and shut it down in close()/stop()",
        )


def _local_shutdown(
    func: ast.FunctionDef | ast.AsyncFunctionDef, local: str
) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "shutdown"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == local
        ):
            return True
    return False
