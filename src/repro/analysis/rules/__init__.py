"""Built-in rules.  Importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401
    close_contract,
    determinism,
    executor_lifecycle,
    lock_discipline,
    stats_surface,
)
