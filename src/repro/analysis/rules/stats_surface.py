"""stats-surface-drift: every QueryStats counter stays observable.

``QueryStats`` is surfaced in three places: the dataclass itself
(``core/results.py``), the Prometheus families in ``serve/metrics.py``,
and the demo shell's ``:stats`` renderer (``demo/interface.py``).  A
counter added to the dataclass but missing from a surface silently
vanishes from observability — exactly what happened classes of bugs
hide behind.  This is a cross-file rule: it runs in ``finish`` over the
whole project.

A surface covers a field if it mentions it as an attribute
(``stats.delta_hits``) or string literal, or if it iterates the
dataclass generically via ``dataclasses.fields(QueryStats)`` — the
generic form tracks new fields by construction and counts as full
coverage.  Findings anchor at the field's declaration line in
``core/results.py`` (that is where the fix — or the suppression — for
an intentionally unsurfaced field belongs).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import FileContext, Finding, Project, Rule, register

_DATACLASS_NAME = "QueryStats"
_DATACLASS_FILE = "core/results.py"
_SURFACES = ("serve/metrics.py", "demo/interface.py")


def _stats_fields(ctx: FileContext) -> dict[str, int]:
    """QueryStats field name -> declaration line."""
    for cls in ctx.classes():
        if cls.name != _DATACLASS_NAME:
            continue
        fields: dict[str, int] = {}
        for node in cls.body:
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                name = node.target.id
                if not name.startswith("_"):
                    fields[name] = node.lineno
        return fields
    return {}


def _uses_generic_fields(ctx: FileContext) -> bool:
    """Does the file call ``fields(QueryStats)`` (however imported)?"""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "fields":
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Name) and arg.id == _DATACLASS_NAME:
            return True
        if isinstance(arg, ast.Attribute) and arg.attr == _DATACLASS_NAME:
            return True
    return False


def _mentioned_names(ctx: FileContext) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
    return names


@register
class StatsSurfaceDrift(Rule):
    id = "stats-surface-drift"
    description = (
        "every QueryStats field must appear in the Prometheus families "
        "(serve/metrics.py) and the demo :stats renderer"
    )

    def finish(self, project: Project) -> Iterable[Finding]:
        stats_ctx = project.find(_DATACLASS_FILE)
        if stats_ctx is None:
            return ()
        fields = _stats_fields(stats_ctx)
        if not fields:
            return ()

        findings: list[Finding] = []
        for suffix in _SURFACES:
            surface = project.find(suffix)
            if surface is None:
                continue  # surface not part of this run's file set
            if _uses_generic_fields(surface):
                continue  # fields(QueryStats) tracks new counters itself
            mentioned = _mentioned_names(surface)
            for name, line in sorted(fields.items(), key=lambda kv: kv[1]):
                if name in mentioned:
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        path=stats_ctx.display_path,
                        line=line,
                        message=(
                            f"QueryStats.{name} is not surfaced in "
                            f"{surface.display_path} — new counters must "
                            f"stay observable everywhere stats render"
                        ),
                    )
                )
        return findings
