"""determinism: the static complement to the parallel byte-identity suite.

Parallel execution must stay byte-identical to the serial reference
(``tests/property/test_prop_parallel.py``), so the execution-core
modules — ``topk/``, ``storage/sharded.py``, ``storage/delta.py``,
``storage/procpool.py`` — must not let nondeterminism leak into result
construction:

- **set-iteration**: iterating a bare ``set`` (a set display, set
  comprehension, ``set(...)`` call, or a local bound to one) in a
  ``for`` loop or comprehension, or materialising one with
  ``list``/``tuple``, lets hash-order escape.  Wrap it in ``sorted()``.
- **wall-clock**: ``time.time()``/``time.time_ns()``/``datetime.now()``
  feeding anything but profiling.  (``perf_counter`` is allowed — it
  only ever lands in ``QueryStats.elapsed_seconds``.)
- **random**: any ``random.*`` call except an explicitly seeded
  ``random.Random(seed)`` construction.
- **id-ordering**: ``id(...)`` used inside ``sorted``/``min``/``max``/
  ``.sort``/``heappush`` or an ordering comparison.  (``id()`` as an
  *identity* dict key is fine — that never orders anything.)
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import FileContext, Finding, Rule, register

_SCOPED_SUFFIXES = (
    "storage/sharded.py",
    "storage/delta.py",
    "storage/procpool.py",
)
_SCOPED_DIRS = ("topk/",)

_ORDERING_CALLS = {"sorted", "min", "max", "heappush", "heappushpop", "nsmallest", "nlargest"}
_ORDERING_CMPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _in_scope(display_path: str) -> bool:
    path = display_path.replace("\\", "/")
    if path.endswith(_SCOPED_SUFFIXES):
        return True
    return any(f"/{d}" in path or path.startswith(d) for d in _SCOPED_DIRS)


def _is_set_expr(node: ast.AST, set_locals: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return True
    if isinstance(node, ast.Name) and node.id in set_locals:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        # set algebra on set operands stays a set
        return _is_set_expr(node.left, set_locals) or _is_set_expr(
            node.right, set_locals
        )
    return False


@register
class Determinism(Rule):
    id = "determinism"
    description = (
        "execution-core modules must not leak hash order, wall-clock "
        "time, unseeded randomness, or id()-keyed ordering into results"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx.display_path):
            return ()
        findings: list[Finding] = []
        set_locals = self._set_locals(ctx.tree)
        for node in ast.walk(ctx.tree):
            findings.extend(self._check_node(ctx, node, set_locals))
        return findings

    @staticmethod
    def _set_locals(tree: ast.AST) -> set[str]:
        """Names bound (anywhere) to an expression that is plainly a set."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, set()):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_set_expr(node.value, set()) and isinstance(
                    node.target, ast.Name
                ):
                    names.add(node.target.id)
        return names

    def _check_node(
        self, ctx: FileContext, node: ast.AST, set_locals: set[str]
    ) -> Iterable[Finding]:
        # -- set iteration escaping unsorted -------------------------------
        if isinstance(node, (ast.For, ast.comprehension)):
            source = node.iter
            if _is_set_expr(source, set_locals):
                yield self.finding(
                    ctx,
                    source,
                    "iterating a set in hash order — wrap the iterable in "
                    "sorted() so parallel runs stay byte-identical",
                )
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"list", "tuple"} and node.args:
                if _is_set_expr(node.args[0], set_locals):
                    yield self.finding(
                        ctx,
                        node,
                        f"{node.func.id}() over a set materialises hash "
                        f"order — use sorted() instead",
                    )

        # -- wall clock ----------------------------------------------------
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id == "time"
                and func.attr in {"time", "time_ns"}
            ):
                yield self.finding(
                    ctx,
                    node,
                    "wall-clock time in an execution-core module — results "
                    "must not depend on when they were computed "
                    "(perf_counter is fine for stats timing)",
                )
            if func.attr in {"now", "utcnow"} and isinstance(base, ast.Name) and base.id in {
                "datetime",
                "date",
            }:
                yield self.finding(
                    ctx, node, "datetime.now() in an execution-core module"
                )

            # -- unseeded random ------------------------------------------
            if isinstance(base, ast.Name) and base.id == "random":
                if not (func.attr == "Random" and node.args):
                    yield self.finding(
                        ctx,
                        node,
                        f"random.{func.attr}() in an execution-core module — "
                        f"only an explicitly seeded random.Random(seed) is "
                        f"deterministic",
                    )

        # -- id()-keyed ordering ------------------------------------------
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        ):
            for ancestor in ctx.ancestors(node):
                if isinstance(ancestor, ast.stmt):
                    break
                if isinstance(ancestor, ast.Call):
                    name = None
                    if isinstance(ancestor.func, ast.Name):
                        name = ancestor.func.id
                    elif isinstance(ancestor.func, ast.Attribute):
                        name = ancestor.func.attr
                        if name == "sort":
                            name = "sorted"
                    if name in _ORDERING_CALLS:
                        yield self.finding(
                            ctx,
                            node,
                            "id() feeding an ordering — CPython addresses "
                            "differ across processes, so this breaks "
                            "byte-identity (id() as an identity dict key "
                            "is fine)",
                        )
                        break
                if isinstance(ancestor, ast.Compare) and any(
                    isinstance(op, _ORDERING_CMPS) for op in ancestor.ops
                ):
                    yield self.finding(
                        ctx, node, "id() compared with an ordering operator"
                    )
                    break
