"""lock-discipline: a static race detector for lock-guarded attributes.

Within one class, any private attribute (leading underscore) that is
*written* inside a ``with self.<lock>`` block is treated as
lock-guarded shared state.  Every other touch of that attribute in the
class — read or write — must also happen under one of the class's
recognised guards, or it is a potential race.

Recognised guards (the ``with`` item's context expression):

- a ``self`` attribute chain whose final name ends in ``lock`` or
  ``cond`` (``self._lock``, ``self._ingest_lock``, ``self._epoch.cond``),
- a local alias of such a chain (``epoch = self._epoch`` then
  ``with epoch.cond:``),
- a call on a ``self`` method whose name contains ``guard`` or ``lock``
  (``with self._query_guard():``) — contextmanager-wrapped locks.

``async with`` counts the same way.  Constructor-phase methods
(``__init__``, ``__new__``, ``__del__``, names starting ``_init``) and
``close`` are exempt: they run before the object is shared or after the
last reader is drained.  Nested functions and lambdas are skipped
entirely — they execute later, so a lock held lexically around them is
not held when they run.  Attributes that *carry* the locks themselves
are exempt (you must read the lock attribute unguarded to take it).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import (
    FileContext,
    Finding,
    Rule,
    attr_chain,
    iter_methods,
    register,
    self_attr,
)

_EXEMPT_METHODS = {"__init__", "__new__", "__del__", "close"}


def _is_lockish(name: str) -> bool:
    return name.endswith("lock") or name.endswith("cond")


class _MethodScan:
    """One method's guard structure: aliases, guarded regions, touches."""

    def __init__(self, method: ast.FunctionDef | ast.AsyncFunctionDef):
        self.method = method
        self.aliases: dict[str, str] = {}  # local name -> self.* chain
        # (attr, node, guarded, is_write) for every self.<attr> touch
        self.touches: list[tuple[str, ast.AST, bool, bool]] = []
        self.guard_bases: set[str] = set()  # self attrs that carry a lock
        self._scan_body(method.body, guarded=False)

    # -- guard recognition -------------------------------------------------

    def _resolve_chain(self, node: ast.AST) -> str | None:
        chain = attr_chain(node)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        if head in self.aliases:
            chain = self.aliases[head] + ("." + rest if rest else "")
        return chain

    def _guard_chain(self, expr: ast.AST) -> str | None:
        """The ``self...`` chain when ``expr`` is a recognised guard."""
        if isinstance(expr, ast.Call):
            chain = self._resolve_chain(expr.func)
            if chain is not None and chain.startswith("self."):
                final = chain.rsplit(".", 1)[-1]
                if "guard" in final or "lock" in final:
                    return chain
            return None
        chain = self._resolve_chain(expr)
        if chain is not None and chain.startswith("self."):
            final = chain.rsplit(".", 1)[-1]
            if _is_lockish(final):
                return chain
        return None

    def _note_guard_base(self, chain: str) -> None:
        parts = chain.split(".")
        if len(parts) >= 2 and parts[0] == "self":
            self.guard_bases.add(parts[1])

    # -- body walk ---------------------------------------------------------

    def _scan_body(self, body: Iterable[ast.stmt], guarded: bool) -> None:
        for stmt in body:
            self._scan_stmt(stmt, guarded)

    def _scan_stmt(self, stmt: ast.stmt, guarded: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # deferred execution: out of scope
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = guarded
            for item in stmt.items:
                chain = self._guard_chain(item.context_expr)
                if chain is not None:
                    inner = True
                    self._note_guard_base(chain)
                else:
                    self._scan_expr(item.context_expr, guarded)
                if item.optional_vars is not None:
                    self._scan_expr(item.optional_vars, guarded)
            self._scan_body(stmt.body, inner)
            return
        if isinstance(stmt, ast.Assign):
            # Track simple local aliases of self attributes.
            if (
                len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                chain = self._resolve_chain(stmt.value)
                if chain is not None and chain.startswith("self."):
                    self.aliases[stmt.targets[0].id] = chain
        # Everything else: walk child statements with the same guard
        # state, and expressions for touches.
        for field, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                if value and isinstance(value[0], ast.stmt):
                    self._scan_body(value, guarded)
                else:
                    for item in value:
                        if isinstance(item, ast.AST):
                            self._scan_expr(item, guarded)
            elif isinstance(value, ast.AST):
                self._scan_expr(value, guarded)

    def _scan_expr(self, node: ast.AST, guarded: bool) -> None:
        for sub in self._walk_expr(node):
            # A subscript store/delete mutates the container held by the
            # attribute: `self._weights[k] = w` is a write to _weights.
            if isinstance(sub, ast.Subscript) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                base = sub.value
                while isinstance(base, ast.Subscript):
                    base = base.value
                attr = self_attr(base)
                if attr is not None:
                    self.touches.append((attr, sub, guarded, True))
                continue
            attr = self_attr(sub)
            if attr is None:
                continue
            is_write = isinstance(sub.ctx, (ast.Store, ast.Del))  # type: ignore[attr-defined]
            self.touches.append((attr, sub, guarded, is_write))

    @staticmethod
    def _walk_expr(node: ast.AST) -> Iterator[ast.AST]:
        stack = [node]
        while stack:
            current = stack.pop()
            yield current
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(current))


@register
class LockDiscipline(Rule):
    id = "lock-discipline"
    description = (
        "private attributes written under a self lock must never be "
        "touched outside a guarded block in that class"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for cls in ctx.classes():
            findings.extend(self._check_class(ctx, cls))
        return findings

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterable[Finding]:
        method_names = {method.name for method in iter_methods(cls)}
        scans = [
            (method, _MethodScan(method))
            for method in iter_methods(cls)
        ]

        guard_bases: set[str] = set()
        for _, scan in scans:
            guard_bases.update(scan.guard_bases)
        if not guard_bases:
            return ()

        def exempt_attr(attr: str) -> bool:
            return (
                not attr.startswith("_")
                or attr in guard_bases
                or _is_lockish(attr)
                or attr in method_names
            )

        guarded_attrs: set[str] = set()
        for method, scan in scans:
            if self._exempt_method(method.name):
                continue
            for attr, _node, guarded, is_write in scan.touches:
                if guarded and is_write and not exempt_attr(attr):
                    guarded_attrs.add(attr)
        if not guarded_attrs:
            return ()

        findings: list[Finding] = []
        for method, scan in scans:
            if self._exempt_method(method.name):
                continue
            reported: set[str] = set()
            for attr, node, guarded, _is_write in scan.touches:
                if guarded or attr not in guarded_attrs or attr in reported:
                    continue
                reported.add(attr)
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{cls.name}.{method.name} touches self.{attr} "
                        f"outside a lock, but {cls.name} writes it under "
                        f"a guard elsewhere",
                    )
                )
        return findings

    @staticmethod
    def _exempt_method(name: str) -> bool:
        return name in _EXEMPT_METHODS or name.startswith("_init")
