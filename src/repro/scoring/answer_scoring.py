"""Answer-level score aggregation.

Per-pattern scores combine multiplicatively (the query-likelihood of a
conjunction), the rewriting weight attenuates the product, and — because the
same answer can be obtained through multiple relaxation sequences — the
aggregator keeps the *maximal* score over all derivations, as Section 4
specifies.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.results import Answer, BindingKey, Derivation
from repro.errors import ScoringError


def combine_pattern_scores(scores: Iterable[float], rewriting_weight: float = 1.0) -> float:
    """Product of per-pattern scores, attenuated by the rewriting weight.

    All inputs must lie in [0, 1]; the result therefore does too, which the
    top-k bounds rely on.
    """
    result = rewriting_weight
    for score in scores:
        if score < 0.0 or score > 1.0 or math.isnan(score):
            raise ScoringError(f"Pattern score out of [0, 1]: {score}")
        result *= score
    return result


class AnswerAggregator:
    """Collects derivations, keeping the best score per answer binding.

    ``add`` returns the answer's current best score so callers can feed the
    top-k heap.  ``num_derivations`` counts how many distinct derivations
    produced each binding — surfaced in explanations ("also obtainable
    via ...").
    """

    def __init__(self):
        self._best: dict[BindingKey, tuple[float, Derivation]] = {}
        self._counts: dict[BindingKey, int] = {}

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, key: BindingKey) -> bool:
        return key in self._best

    def add(self, key: BindingKey, score: float, derivation: Derivation) -> float:
        """Record one derivation; return the binding's best known score."""
        self._counts[key] = self._counts.get(key, 0) + 1
        existing = self._best.get(key)
        if existing is None or score > existing[0]:
            self._best[key] = (score, derivation)
            return score
        return existing[0]

    def best_score(self, key: BindingKey) -> float | None:
        entry = self._best.get(key)
        return None if entry is None else entry[0]

    def best_scores(self) -> list[tuple[BindingKey, float]]:
        """Every distinct binding with its best score (tracker rebuilds)."""
        return [(key, entry[0]) for key, entry in self._best.items()]

    def ranked_answers(self, limit: int | None = None, start: int = 0) -> list[Answer]:
        """Answers sorted by (score desc, binding lexical) — deterministic.

        ``start`` slices off an already-emitted prefix (streaming windows).
        """
        items = [
            Answer(key, score, derivation, self._counts[key])
            for key, (score, derivation) in self._best.items()
        ]
        items.sort(
            key=lambda a: (
                -a.score,
                tuple((var.name, term.sort_key()) for var, term in a.binding),
            )
        )
        return items[start:] if limit is None else items[start:limit]
