"""Query-likelihood scoring of triples against triple patterns.

The model (adapted from the paper and its companion [14]): a triple pattern
``q`` is a document emitting triples.  The emission probability of a matching
triple ``t`` is its share of the pattern's observation mass, smoothed with
the collection model::

    P(t | q) = (1 - λ) · w(t) / mass(q)  +  λ · w(t) / mass(collection)

where ``w(t) = observations(t) × confidence(t)``.  The first term carries
both paper effects: proportional to the triple's observation frequency
(tf-like) and inversely proportional to the pattern's total matches
(idf-like selectivity — a pattern with few matches concentrates its
probability mass).  Jelinek-Mercer smoothing keeps scores comparable across
patterns and strictly positive for any stored triple.

Because both terms are monotone in ``w(t)``, the store's weight-sorted
posting lists enumerate matches in exactly descending ``P(t | q)`` order —
the property sorted access in top-k processing relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.triples import TriplePattern
from repro.errors import ScoringError
from repro.storage.store import StoredTriple, TripleStore


@dataclass(frozen=True)
class ScoringConfig:
    """Scoring parameters.

    Attributes
    ----------
    smoothing:
        Jelinek-Mercer λ in [0, 1).  0 disables smoothing entirely.
    """

    smoothing: float = 0.1

    def __post_init__(self):
        if not 0.0 <= self.smoothing < 1.0:
            raise ScoringError(f"Smoothing must be in [0, 1), got {self.smoothing}")


class PatternScorer:
    """Computes P(triple | pattern) over one frozen store."""

    def __init__(self, store: TripleStore, config: ScoringConfig | None = None):
        if not store.is_frozen:
            raise ScoringError("PatternScorer requires a frozen store")
        self.store = store
        self.config = config if config is not None else ScoringConfig()
        self._collection_mass = store.total_observations()

    def refresh(self) -> None:
        """Re-read the collection mass after live ingestion grew the store.

        The engine calls this at the end of every ``ingest`` batch so the
        smoothing background stays consistent with the visible statements —
        a scorer used without the engine simply keeps its construction-time
        mass until asked.
        """
        self._collection_mass = self.store.total_observations()

    def pattern_mass(self, pattern: TriplePattern) -> float:
        """Total observation weight of the pattern's matches (cached)."""
        return self.store.observation_mass(pattern)

    def score(self, pattern: TriplePattern, record: StoredTriple) -> float:
        """P(record.triple | pattern) under the smoothed emission model.

        The caller guarantees the record matches the pattern; the score of a
        non-matching record is meaningless (but still finite).
        """
        return self.score_weight(pattern, record.weight)

    def score_weight(self, pattern: TriplePattern, weight: float) -> float:
        """P(t | pattern) for a match of the given observation weight.

        The id-space hot path calls this with weights read straight from the
        store's weight column; the float arithmetic is identical to
        :meth:`score`, which is what backend/execution equivalence tests
        rely on.
        """
        lam = self.config.smoothing
        mass = self.pattern_mass(pattern)
        foreground = weight / mass if mass > 0 else 0.0
        if lam == 0.0:
            return foreground
        background = (
            weight / self._collection_mass if self._collection_mass > 0 else 0.0
        )
        return (1.0 - lam) * foreground + lam * background

    def emission_model(self, pattern: TriplePattern) -> tuple[float, float, float]:
        """(λ, pattern mass, collection mass) for inlined per-weight scoring.

        Cursors that walk thousands of postings fetch these three constants
        once and compute ``(1-λ)·w/mass + λ·w/cmass`` locally, keeping the
        per-item cost at two multiplies — with bit-identical results to
        :meth:`score`.
        """
        return (
            self.config.smoothing,
            self.pattern_mass(pattern),
            self._collection_mass,
        )

    def max_score(self, pattern: TriplePattern) -> float:
        """Upper bound on P(t | pattern): the score of the best match.

        Returns 0.0 for patterns with no matches — relaxation is then the
        only way the pattern can contribute answers.
        """
        ids = self.store.sorted_ids(pattern)
        if not ids:
            return 0.0
        return self.score(pattern, self.store.record(ids[0]))

    def scored_matches(self, pattern: TriplePattern) -> list[tuple[float, StoredTriple]]:
        """All (score, record) matches, descending — exhaustive evaluation."""
        return [
            (self.score(pattern, record), record)
            for record in self.store.matches(pattern)
        ]
