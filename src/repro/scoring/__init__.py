"""Answer scoring: query-likelihood language models over triple patterns.

Section 4 of the paper: a triple pattern is viewed as a document that emits
triples; the probability of a triple is proportional to its observation
frequency (tf-like) and inversely proportional to the pattern's total number
of matches (idf-like selectivity).  Relaxation weights attenuate scores, and
an answer obtainable through several derivations keeps the maximal score.
"""

from repro.scoring.language_model import PatternScorer, ScoringConfig
from repro.scoring.answer_scoring import (
    AnswerAggregator,
    combine_pattern_scores,
)

__all__ = [
    "PatternScorer",
    "ScoringConfig",
    "AnswerAggregator",
    "combine_pattern_scores",
]
