"""Graded relevance judgments derived from the hidden world.

For every benchmark query, the *intent* (what the user meant, fixed at
generation time) is evaluated against the complete world model — data no
system ever sees — yielding graded relevance:

* grade 3 — exactly what the intent asks for (world-true answer);
* grade 1 — a defensible near-miss (e.g. a university the person lectured
  at when the intent asked where they work — the Einstein/Princeton
  subtlety of user C);
* grade 0 — everything else.

Judgment keys are tolerant to the two answer shapes systems produce:
canonical entity ids and surface-form text tokens both resolve to the same
grade.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.terms import Term
from repro.kg.world import World
from repro.util.text import normalize_phrase

#: Gains used for exact and near-miss relevance.
GRADE_EXACT = 3.0
GRADE_NEAR = 1.0


@dataclass
class Judgments:
    """Graded relevance for one query.

    ``entities`` maps each judged entity id (or literal value) to its grade
    — one entry per judged thing, the source of truth for ideal rankings.
    ``grades`` is the derived lookup table with surface-form aliases.
    """

    entities: dict[str, float] = field(default_factory=dict)
    grades: dict[str, float] = field(default_factory=dict)

    def add(self, world: World, entity_or_value: str, grade: float) -> None:
        """Register a grade; higher grades win on re-registration."""
        if grade <= self.entities.get(entity_or_value, 0.0):
            return
        self.entities[entity_or_value] = grade
        keys = {entity_or_value, normalize_phrase(entity_or_value)}
        entity = world.entities.get(entity_or_value)
        if entity is not None:
            keys.add(normalize_phrase(entity.surface))
        for key in keys:
            if grade > self.grades.get(key, 0.0):
                self.grades[key] = grade

    def grade(self, term: Term) -> float:
        """The grade of a system answer term (0.0 when irrelevant)."""
        return grade_of(self.grades, term)

    def positive_gains(self) -> list[float]:
        """One gain per judged entity — the material for the ideal ranking."""
        return [g for g in self.entities.values() if g > 0]

    @property
    def num_relevant(self) -> int:
        return len(self.positive_gains())

    @property
    def num_exact(self) -> int:
        return sum(1 for g in self.entities.values() if g >= GRADE_EXACT)


def grade_of(grades: dict[str, float], term: Term) -> float:
    """Look up a term's grade: by resource name, then by normalised surface."""
    if term.kind == "resource":
        direct = grades.get(term.lexical())
        if direct is not None:
            return direct
    return grades.get(normalize_phrase(term.lexical()), 0.0)
