"""Evaluation harness: the 70-query benchmark, judgments, metrics, runner.

Reproduces the evaluation reported in Section 4 of the demo paper: "On a
challenging set of 70 entity-relationship queries, we achieve an average
NDCG at rank 5 of 0.775, with the next best state-of-the-art system
achieving 0.419."  Queries span the mismatch classes the paper motivates
(Figure 2); graded relevance judgments derive from the hidden world model;
systems are compared on NDCG@k, MAP, P@5 and MRR.
"""

from repro.eval.metrics import (
    average_precision,
    mean,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
)
from repro.eval.judgments import Judgments, grade_of
from repro.eval.benchmark import (
    Benchmark,
    BenchmarkConfig,
    BenchmarkQuery,
    QUERY_CLASSES,
    generate_benchmark,
)
from repro.eval.harness import EvalHarness, HarnessConfig, SCALE_PROFILES
from repro.eval.runner import EvalReport, SystemResult, evaluate_systems

__all__ = [
    "ndcg_at_k",
    "precision_at_k",
    "average_precision",
    "reciprocal_rank",
    "mean",
    "Judgments",
    "grade_of",
    "Benchmark",
    "BenchmarkConfig",
    "BenchmarkQuery",
    "QUERY_CLASSES",
    "generate_benchmark",
    "EvalHarness",
    "HarnessConfig",
    "SCALE_PROFILES",
    "EvalReport",
    "SystemResult",
    "evaluate_systems",
]
