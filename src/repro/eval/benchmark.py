"""The 70-query entity-relationship benchmark.

Seven query classes, ten queries each, mirroring the mismatch taxonomy the
paper's motivation builds on (Figure 2) plus the join-intensive queries
Section 5 says TriniT is specifically geared for:

==============  =============================================================
class           what the user does
==============  =============================================================
direct          well-formed KG query (control: everyone should do well)
synonym         writes the predicate as a text phrase ("works at")
misnomer        guesses a predicate name the KG does not have (worksFor)
inversion       uses the advisor relation from the student's side (user B)
granularity     constrains to a country where the KG stores cities (user A)
incomplete      asks for knowledge the KG vocabulary lacks entirely (user D)
join            multi-pattern queries joining 2–3 relations (user C's shape)
==============  =============================================================

Every query records its *intent* — the world-level semantics fixed at
generation time — from which graded judgments are computed.  Constants are
chosen deterministically among those with at least one exact answer, so no
query is unanswerable by construction.

The benchmark also ships the PATTY-style *user-vocabulary alias repository*
(:func:`user_alias_rules`) that relaxation-capable systems (TriniT, QaRS)
receive — the paper's "paraphrase repositories" rule source plus its
manually-specified rules (Figure 4 rule 2 is exactly such an alias).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parser import parse_query
from repro.core.query import Query
from repro.core.terms import Variable
from repro.eval.judgments import GRADE_EXACT, GRADE_NEAR, Judgments
from repro.kg.world import World
from repro.relax.paraphrase import predicate_alias_rules
from repro.relax.rules import RelaxationRule
from repro.util.rand import SeededRng

QUERY_CLASSES = (
    "direct",
    "synonym",
    "misnomer",
    "inversion",
    "granularity",
    "incomplete",
    "join",
)


@dataclass(frozen=True)
class BenchmarkQuery:
    """One benchmark query with its judgments."""

    qid: str
    query_class: str
    text: str
    target: str
    intent: str
    judgments: Judgments

    def parse(self) -> Query:
        return parse_query(self.text)

    @property
    def target_variable(self) -> Variable:
        return Variable(self.target)


@dataclass
class Benchmark:
    """The full query set."""

    queries: list[BenchmarkQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def of_class(self, query_class: str) -> list[BenchmarkQuery]:
        return [q for q in self.queries if q.query_class == query_class]

    def classes(self) -> list[str]:
        seen: dict[str, None] = {}
        for query in self.queries:
            seen.setdefault(query.query_class, None)
        return list(seen)


@dataclass(frozen=True)
class BenchmarkConfig:
    """Benchmark generation parameters (70 = 7 classes × 10 by default)."""

    seed: int = 37
    queries_per_class: int = 10


def user_alias_rules() -> list[RelaxationRule]:
    """The PATTY-style predicate alias repository given to TriniT and QaRS.

    (user guess, canonical target, alignment score, arguments inverted)
    """
    return predicate_alias_rules(
        [
            ("hasAdvisor", "hasStudent", 1.0, True),
            ("advisorOf", "hasStudent", 0.95, False),
            ("worksFor", "affiliation", 0.9, False),
            ("employedBy", "affiliation", 0.85, False),
            ("almaMater", "graduatedFrom", 0.9, False),
            ("spouse", "marriedTo", 0.95, False),
            ("birthPlace", "bornIn", 0.95, False),
            ("deathPlace", "diedIn", 0.9, False),
        ]
    )


class _Generator:
    """Internal: builds queries per class from the world."""

    def __init__(self, world: World, config: BenchmarkConfig):
        self.world = world
        self.config = config
        self.rng = SeededRng(config.seed)
        self._counter = 0

    # -- judgment helpers ------------------------------------------------------

    def _judge_pairs(
        self,
        exact: set[str],
        near: set[str] = frozenset(),
    ) -> Judgments:
        judgments = Judgments()
        for entity in sorted(exact):
            judgments.add(self.world, entity, GRADE_EXACT)
        for entity in sorted(near - exact):
            judgments.add(self.world, entity, GRADE_NEAR)
        return judgments

    def _make(
        self,
        query_class: str,
        text: str,
        target: str,
        intent: str,
        judgments: Judgments,
    ) -> BenchmarkQuery:
        self._counter += 1
        return BenchmarkQuery(
            qid=f"q{self._counter:03d}",
            query_class=query_class,
            text=text,
            target=target,
            intent=intent,
            judgments=judgments,
        )

    def _pick(self, candidates: list, count: int) -> list:
        """Deterministic, spread-out choice of ``count`` candidates."""
        pool = list(candidates)
        self.rng.shuffle(pool)
        return pool[:count]

    # -- per-class generators ------------------------------------------------------

    def direct(self, n: int) -> list[BenchmarkQuery]:
        """Well-formed KG queries, rotating over four shapes."""
        world = self.world
        queries: list[BenchmarkQuery] = []
        shapes = []
        for city in world.cities:
            born = world.subjects_of("bornInCity", city.id)
            if len(born) >= 2:
                shapes.append(
                    (
                        f"?x bornIn {city.id}",
                        "x",
                        f"people born in {city.surface}",
                        self._judge_pairs(set(born)),
                    )
                )
        for org in world.organizations():
            staff = world.subjects_of("worksAt", org.id)
            if len(staff) >= 2:
                near = set(world.subjects_of("lecturedAt", org.id))
                shapes.append(
                    (
                        f"?x affiliation {org.id}",
                        "x",
                        f"people working at {org.surface}",
                        self._judge_pairs(set(staff), near),
                    )
                )
        for person in world.people[: max(30, n * 3)]:
            prizes = world.objects_of("wonPrize", person.id)
            if prizes:
                shapes.append(
                    (
                        f"{person.id} wonPrize ?x",
                        "x",
                        f"prizes won by {person.surface}",
                        self._judge_pairs(set(prizes)),
                    )
                )
        chosen = self._pick(shapes, n)
        for text, target, intent, judgments in chosen:
            queries.append(self._make("direct", text, target, intent, judgments))
        return queries

    def synonym(self, n: int) -> list[BenchmarkQuery]:
        """Predicates written as text phrases."""
        world = self.world
        shapes = []
        for org in world.organizations():
            staff = world.subjects_of("worksAt", org.id)
            if len(staff) >= 2:
                near = set(world.subjects_of("lecturedAt", org.id)) | set(
                    world.subjects_of("educatedAt", org.id)
                )
                shapes.append(
                    (
                        f"?x 'works at' {org.id}",
                        "x",
                        f"people working at {org.surface}",
                        self._judge_pairs(set(staff), near),
                    )
                )
        for person in world.people[:60]:
            almae = world.objects_of("educatedAt", person.id)
            if almae:
                shapes.append(
                    (
                        f"{person.id} 'graduated from' ?x",
                        "x",
                        f"where {person.surface} studied",
                        self._judge_pairs(set(almae)),
                    )
                )
            fields = world.objects_of("fieldOf", person.id)
            if fields:
                shapes.append(
                    (
                        f"{person.id} 'specialized in' ?x",
                        "x",
                        f"the research field of {person.surface}",
                        self._judge_pairs(set(fields)),
                    )
                )
        chosen = self._pick(shapes, n)
        return [
            self._make("synonym", text, target, intent, judgments)
            for text, target, intent, judgments in chosen
        ]

    def misnomer(self, n: int) -> list[BenchmarkQuery]:
        """Invented predicate names (resolved only via the alias repository)."""
        world = self.world
        shapes = []
        for person in world.people[:80]:
            employers = world.objects_of("worksAt", person.id)
            if employers:
                near = set(world.objects_of("lecturedAt", person.id))
                shapes.append(
                    (
                        f"{person.id} worksFor ?x",
                        "x",
                        f"the employer of {person.surface}",
                        self._judge_pairs(set(employers), near),
                    )
                )
            spouses = world.objects_of("marriedTo", person.id)
            if spouses:
                shapes.append(
                    (
                        f"{person.id} spouse ?x",
                        "x",
                        f"the spouse of {person.surface}",
                        self._judge_pairs(set(spouses)),
                    )
                )
            almae = world.objects_of("educatedAt", person.id)
            if almae:
                shapes.append(
                    (
                        f"{person.id} almaMater ?x",
                        "x",
                        f"where {person.surface} studied",
                        self._judge_pairs(set(almae)),
                    )
                )
        chosen = self._pick(shapes, n)
        return [
            self._make("misnomer", text, target, intent, judgments)
            for text, target, intent, judgments in chosen
        ]

    def inversion(self, n: int) -> list[BenchmarkQuery]:
        """User B: the advisor relation queried from the student's side."""
        world = self.world
        shapes = []
        for person in world.people:
            advisors = world.objects_of("hasAdvisor", person.id)
            if advisors:
                shapes.append(
                    (
                        f"{person.id} hasAdvisor ?x",
                        "x",
                        f"the doctoral advisor of {person.surface}",
                        self._judge_pairs(set(advisors)),
                    )
                )
        chosen = self._pick(shapes, n)
        return [
            self._make("inversion", text, target, intent, judgments)
            for text, target, intent, judgments in chosen
        ]

    def granularity(self, n: int) -> list[BenchmarkQuery]:
        """User A: country-level constraint over city-level facts."""
        world = self.world
        shapes = []
        for country in world.countries:
            country_cities = set(world.subjects_of("cityInCountry", country.id))
            born = {
                person
                for person, city in world.pairs("bornInCity")
                if city in country_cities
            }
            if len(born) >= 2:
                shapes.append(
                    (
                        f"?x bornIn {country.id}",
                        "x",
                        f"people born in {country.surface}",
                        self._judge_pairs(born),
                    )
                )
            died = {
                person
                for person, city in world.pairs("diedInCity")
                if city in country_cities
            }
            if len(died) >= 2:
                shapes.append(
                    (
                        f"?x diedIn {country.id}",
                        "x",
                        f"people who died in {country.surface}",
                        self._judge_pairs(died),
                    )
                )
        chosen = self._pick(shapes, n)
        return [
            self._make("granularity", text, target, intent, judgments)
            for text, target, intent, judgments in chosen
        ]

    def incomplete(self, n: int) -> list[BenchmarkQuery]:
        """User D: knowledge outside the KG vocabulary (corpus-only)."""
        world = self.world
        shapes = []
        for person in world.people[:80]:
            lectures = world.objects_of("lecturedAt", person.id)
            if lectures:
                near = set(world.objects_of("worksAt", person.id))
                shapes.append(
                    (
                        f"{person.id} lecturedAt ?x",
                        "x",
                        f"where {person.surface} gave lectures",
                        self._judge_pairs(set(lectures), near),
                    )
                )
            prize_for = world.objects_of("prizeFor", person.id)
            if prize_for:
                shapes.append(
                    (
                        f"{person.id} 'won a nobel for' ?x",
                        "x",
                        f"what {person.surface} won a prize for",
                        self._judge_pairs(set(prize_for)),
                    )
                )
            collaborators = world.objects_of("collaboratedWith", person.id)
            if len(collaborators) >= 2:
                shapes.append(
                    (
                        f"{person.id} 'collaborated with' ?x",
                        "x",
                        f"collaborators of {person.surface}",
                        self._judge_pairs(set(collaborators)),
                    )
                )
        for institute in world.institutes:
            hosts = world.objects_of("housedIn", institute.id)
            if hosts:
                shapes.append(
                    (
                        f"{institute.id} 'housed in' ?x",
                        "x",
                        f"the university housing {institute.surface}",
                        self._judge_pairs(set(hosts)),
                    )
                )
        chosen = self._pick(shapes, n)
        return [
            self._make("incomplete", text, target, intent, judgments)
            for text, target, intent, judgments in chosen
        ]

    def join(self, n: int) -> list[BenchmarkQuery]:
        """Join-intensive multi-pattern queries (incl. user C's shape)."""
        world = self.world
        shapes = []
        # People whose employer sits in a given city.
        city_workers: dict[str, set[str]] = {}
        org_city = {org: city for org, city in world.pairs("orgInCity")}
        for person, org in world.pairs("worksAt"):
            city = org_city.get(org)
            if city is not None:
                city_workers.setdefault(city, set()).add(person)
        for city_id, workers in sorted(city_workers.items()):
            if len(workers) >= 3:
                shapes.append(
                    (
                        f"SELECT ?p WHERE ?p affiliation ?o ; ?o locatedIn {city_id}",
                        "p",
                        f"people whose employer is in {world.entity(city_id).surface}",
                        self._judge_pairs(workers),
                    )
                )
        # User C's shape: the member-group university a person is tied to.
        group_of = {}
        for university, group in world.pairs("memberOfGroup"):
            group_of.setdefault(group, set()).add(university)
        housed = {inst: host for inst, host in world.pairs("housedIn")}
        for person in world.people[:80]:
            for group in world.groups:
                members = group_of.get(group.id, set())
                exact: set[str] = set()
                near: set[str] = set()
                for org in world.objects_of("worksAt", person.id):
                    if org in members:
                        exact.add(org)
                    host = housed.get(org)
                    if host is not None and host in members:
                        exact.add(host)  # the IAS→Princeton case
                for univ in world.objects_of("lecturedAt", person.id):
                    if univ in members:
                        near.add(univ)
                if exact or near:
                    shapes.append(
                        (
                            f"SELECT ?x WHERE {person.id} affiliation ?x ; "
                            f"?x member {group.id}",
                            "x",
                            f"{group.surface} university {person.surface} "
                            "is affiliated with",
                            self._judge_pairs(exact, near),
                        )
                    )
        # Advisor's employer: 2-hop person chain.
        for person in world.people[:80]:
            advisors = world.objects_of("hasAdvisor", person.id)
            employers = {
                org
                for advisor in advisors
                for org in world.objects_of("worksAt", advisor)
            }
            if employers:
                shapes.append(
                    (
                        f"SELECT ?o WHERE {person.id} 'studied under' ?a ; "
                        "?a affiliation ?o",
                        "o",
                        f"the employer of {world.entity(person.id).surface}'s advisor",
                        self._judge_pairs(employers),
                    )
                )
        chosen = self._pick(shapes, n)
        return [
            self._make("join", text, target, intent, judgments)
            for text, target, intent, judgments in chosen
        ]


def generate_benchmark(
    world: World, config: BenchmarkConfig | None = None
) -> Benchmark:
    """Generate the deterministic 70-query benchmark from a world."""
    config = config if config is not None else BenchmarkConfig()
    generator = _Generator(world, config)
    n = config.queries_per_class
    benchmark = Benchmark()
    benchmark.queries.extend(generator.direct(n))
    benchmark.queries.extend(generator.synonym(n))
    benchmark.queries.extend(generator.misnomer(n))
    benchmark.queries.extend(generator.inversion(n))
    benchmark.queries.extend(generator.granularity(n))
    benchmark.queries.extend(generator.incomplete(n))
    benchmark.queries.extend(generator.join(n))
    return benchmark
