"""Rank-quality metrics: NDCG, precision, MAP, MRR.

All metrics take a ranked list of *gains* (graded relevance values, 0 for
irrelevant) plus, where an ideal ranking matters, the full multiset of
positive gains available for the query.  NDCG uses the standard exponential
gain ``(2^g - 1) / log2(rank + 1)`` formulation, matching the IR setup of
the paper's companion evaluation.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def dcg(gains: Sequence[float], k: int | None = None) -> float:
    """Discounted cumulative gain at ``k`` (whole list when k is None)."""
    if k is not None:
        gains = gains[:k]
    return sum(
        (2.0**gain - 1.0) / math.log2(rank + 2.0)
        for rank, gain in enumerate(gains)
    )


def ndcg_at_k(gains: Sequence[float], all_positive_gains: Sequence[float], k: int) -> float:
    """NDCG@k: DCG of the ranking normalised by the ideal DCG.

    ``all_positive_gains`` is every positive grade the query has (not just
    retrieved ones) — the ideal ranking places them best-first.  A query
    with no relevant answers at all scores 0 by convention.

    >>> ndcg_at_k([3, 0, 1], [3, 1], 5)
    1.0
    >>> ndcg_at_k([0, 3], [3], 1)
    0.0
    """
    ideal = sorted((g for g in all_positive_gains if g > 0), reverse=True)
    ideal_dcg = dcg(ideal, k)
    if ideal_dcg == 0.0:
        return 0.0
    return dcg(list(gains), k) / ideal_dcg


def precision_at_k(gains: Sequence[float], k: int) -> float:
    """Fraction of the top-k ranks holding a relevant (gain > 0) answer.

    Ranks beyond the returned list count as misses (the system returned
    fewer than k answers).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    hits = sum(1 for gain in gains[:k] if gain > 0)
    return hits / k


def recall_at_k(gains: Sequence[float], total_relevant: int, k: int) -> float:
    """Fraction of all relevant answers retrieved in the top k."""
    if total_relevant <= 0:
        return 0.0
    hits = sum(1 for gain in gains[:k] if gain > 0)
    return hits / total_relevant


def average_precision(gains: Sequence[float], total_relevant: int) -> float:
    """Average precision over the ranking (binary relevance: gain > 0)."""
    if total_relevant <= 0:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for rank, gain in enumerate(gains, start=1):
        if gain > 0:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / total_relevant


def reciprocal_rank(gains: Sequence[float]) -> float:
    """1 / rank of the first relevant answer; 0 when none is retrieved."""
    for rank, gain in enumerate(gains, start=1):
        if gain > 0:
            return 1.0 / rank
    return 0.0


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty iterable."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
