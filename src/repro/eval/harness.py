"""End-to-end evaluation harness: world → KG → corpus → XKG → systems.

One object builds the entire experimental setup at a chosen scale profile
and exposes the engines and baselines the benches compare.  Everything is
seeded; two harnesses with the same config are identical.

Scale profiles (triples are approximate):

=========  ========  ============  ==============================
profile    people    XKG triples   purpose
=========  ========  ============  ==============================
tiny       60        ~1.5 k        unit/integration tests
small      150       ~4 k          fast benches, examples
medium     400       ~12 k         the headline evaluation bench
large      900       ~30 k         scale/stress bench
=========  ========  ============  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from repro.baselines.lm_entity_search import LmEntitySearchBaseline
from repro.baselines.qars import QarsBaseline
from repro.baselines.slq import SlqBaseline
from repro.baselines.strict_sparql import StrictSparqlBaseline
from repro.baselines.trinit_system import TrinitSystem
from repro.core.engine import EngineConfig, TriniT
from repro.core.terms import Resource
from repro.eval.benchmark import (
    Benchmark,
    BenchmarkConfig,
    generate_benchmark,
    user_alias_rules,
)
from repro.kg.generator import GeneratedKg, KgConfig, KgGenerator
from repro.kg.world import World, WorldConfig
from repro.openie.corpus import CorpusConfig, CorpusGenerator, Document
from repro.openie.ned import EntityLinker
from repro.relax.structural import granularity_rules
from repro.storage.store import TripleStore
from repro.xkg.builder import XkgBuildReport, XkgBuilder


@dataclass(frozen=True)
class HarnessConfig:
    """All knobs of one experimental setup."""

    world: WorldConfig = field(default_factory=WorldConfig)
    kg: KgConfig = field(default_factory=KgConfig)
    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    benchmark: BenchmarkConfig = field(default_factory=BenchmarkConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)


SCALE_PROFILES: dict[str, HarnessConfig] = {
    "tiny": HarnessConfig(
        world=WorldConfig(num_people=60, num_universities=8, num_institutes=5),
        corpus=CorpusConfig(num_popularity_documents=60),
        benchmark=BenchmarkConfig(queries_per_class=4),
    ),
    "small": HarnessConfig(
        world=WorldConfig(num_people=150),
        corpus=CorpusConfig(num_popularity_documents=200),
    ),
    "medium": HarnessConfig(
        world=WorldConfig(
            num_people=400,
            num_universities=20,
            num_institutes=12,
            num_companies=10,
            num_countries=8,
            num_fields=14,
            num_prizes=8,
        ),
        corpus=CorpusConfig(num_popularity_documents=600),
    ),
    "large": HarnessConfig(
        world=WorldConfig(
            num_people=900,
            num_universities=30,
            num_institutes=18,
            num_companies=15,
            num_countries=10,
            num_fields=18,
            num_prizes=12,
        ),
        corpus=CorpusConfig(num_popularity_documents=1500),
    ),
}


class EvalHarness:
    """Builds and caches every component of one experimental setup."""

    def __init__(self, config: HarnessConfig | str = "small"):
        if isinstance(config, str):
            config = SCALE_PROFILES[config]
        self.config = config

    # -- data pipeline ------------------------------------------------------------

    @cached_property
    def world(self) -> World:
        return World.generate(self.config.world)

    @cached_property
    def kg(self) -> GeneratedKg:
        return KgGenerator(self.world, self.config.kg).generate()

    @cached_property
    def kg_store(self) -> TripleStore:
        return self.kg.store()

    @cached_property
    def documents(self) -> list[Document]:
        return CorpusGenerator(self.world, self.config.corpus).generate()

    @cached_property
    def linker(self) -> EntityLinker:
        return EntityLinker(self.world)

    @cached_property
    def _xkg_build(self) -> tuple[TripleStore, XkgBuildReport]:
        builder = XkgBuilder(linker=self.linker)
        return builder.build(self.kg.triples, self.documents)

    @property
    def xkg_store(self) -> TripleStore:
        return self._xkg_build[0]

    @property
    def xkg_report(self) -> XkgBuildReport:
        return self._xkg_build[1]

    @cached_property
    def benchmark(self) -> Benchmark:
        return generate_benchmark(self.world, self.config.benchmark)

    # -- engines ------------------------------------------------------------

    def _granularity_rules(self, engine_statistics):
        """City↔country granularity repair, mined from the store's taxonomy."""
        return granularity_rules(
            engine_statistics,
            type_predicate=Resource("type"),
            containment_predicate=Resource("locatedIn"),
            fine_class=Resource("city"),
            coarse_class=Resource("country"),
        )

    @cached_property
    def engine(self) -> TriniT:
        """Full TriniT: XKG + mined rules + alias repository + granularity."""
        engine = TriniT(self.xkg_store, config=self.config.engine)
        engine.add_rules(user_alias_rules())
        engine.add_rules(self._granularity_rules(engine.statistics))
        return engine

    # -- systems under evaluation ------------------------------------------------------------

    @cached_property
    def trinit_system(self) -> TrinitSystem:
        return TrinitSystem(self.engine, "trinit")

    @cached_property
    def strict_baseline(self) -> StrictSparqlBaseline:
        return StrictSparqlBaseline(self.kg_store)

    @cached_property
    def lm_baseline(self) -> LmEntitySearchBaseline:
        return LmEntitySearchBaseline(self.documents)

    @cached_property
    def slq_baseline(self) -> SlqBaseline:
        return SlqBaseline(self.kg_store)

    @cached_property
    def qars_baseline(self) -> QarsBaseline:
        return QarsBaseline(self.kg_store, extra_rules=user_alias_rules())

    def all_systems(self) -> list:
        """TriniT plus the four baseline families, evaluation order."""
        return [
            self.trinit_system,
            self.qars_baseline,
            self.slq_baseline,
            self.lm_baseline,
            self.strict_baseline,
        ]

    # -- ablation variants ------------------------------------------------------------

    def ablation_systems(self) -> list:
        """TriniT variants isolating each contribution (for tab-ablation)."""
        full = self.trinit_system
        no_relax = TrinitSystem(
            self.engine.variant(use_relaxation=False), "trinit-no-relaxation"
        )
        no_tokens = TrinitSystem(
            self.engine.variant(
                use_token_expansion=False, unknown_resource_fallback=False
            ),
            "trinit-no-token-matching",
        )
        kg_only_engine = TriniT(self.kg_store, config=self.config.engine)
        kg_only_engine.add_rules(user_alias_rules())
        kg_only_engine.add_rules(self._granularity_rules(kg_only_engine.statistics))
        kg_only = TrinitSystem(kg_only_engine, "trinit-kg-only")
        strict = TrinitSystem(
            self.engine.variant(
                use_relaxation=False,
                use_token_expansion=False,
                unknown_resource_fallback=False,
            ),
            "trinit-strict-xkg",
        )
        return [full, no_relax, no_tokens, kg_only, strict]
