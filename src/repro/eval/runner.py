"""Running systems over the benchmark and aggregating metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.base import System
from repro.eval.benchmark import Benchmark, BenchmarkQuery
from repro.eval.metrics import (
    average_precision,
    mean,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
)


@dataclass
class QueryResult:
    """One system's performance on one query."""

    qid: str
    query_class: str
    gains: list[float]
    num_relevant: int
    elapsed_seconds: float

    @property
    def ndcg5(self) -> float:
        return self._ndcg(5)

    def _ndcg(self, k: int) -> float:
        return ndcg_at_k(self.gains, self._ideal, k)

    # Filled by the runner (the full positive-gain multiset of the query).
    _ideal: list[float] = field(default_factory=list)


@dataclass
class SystemResult:
    """One system's aggregate performance."""

    name: str
    per_query: list[QueryResult] = field(default_factory=list)

    def _metric(self, func) -> float:
        return mean(func(q) for q in self.per_query)

    @property
    def ndcg5(self) -> float:
        return self._metric(lambda q: ndcg_at_k(q.gains, q._ideal, 5))

    @property
    def ndcg10(self) -> float:
        return self._metric(lambda q: ndcg_at_k(q.gains, q._ideal, 10))

    @property
    def map_score(self) -> float:
        return self._metric(lambda q: average_precision(q.gains, q.num_relevant))

    @property
    def p5(self) -> float:
        return self._metric(lambda q: precision_at_k(q.gains, 5))

    @property
    def mrr(self) -> float:
        return self._metric(lambda q: reciprocal_rank(q.gains))

    @property
    def total_seconds(self) -> float:
        return sum(q.elapsed_seconds for q in self.per_query)

    def ndcg5_by_class(self) -> dict[str, float]:
        classes: dict[str, list[float]] = {}
        for query in self.per_query:
            classes.setdefault(query.query_class, []).append(
                ndcg_at_k(query.gains, query._ideal, 5)
            )
        return {name: mean(values) for name, values in classes.items()}


@dataclass
class EvalReport:
    """All systems' results plus rendering helpers."""

    systems: list[SystemResult] = field(default_factory=list)
    k: int = 10

    def by_name(self, name: str) -> SystemResult:
        for system in self.systems:
            if system.name == name:
                return system
        raise KeyError(name)

    def render_table(self) -> str:
        """The headline comparison table (tab-ndcg)."""
        headers = ["system", "NDCG@5", "NDCG@10", "MAP", "P@5", "MRR"]
        rows = [
            [
                s.name,
                f"{s.ndcg5:.3f}",
                f"{s.ndcg10:.3f}",
                f"{s.map_score:.3f}",
                f"{s.p5:.3f}",
                f"{s.mrr:.3f}",
            ]
            for s in sorted(self.systems, key=lambda s: -s.ndcg5)
        ]
        return _format_table(headers, rows)

    def render_class_breakdown(self) -> str:
        """NDCG@5 per query class per system."""
        classes: list[str] = []
        for system in self.systems:
            for name in system.ndcg5_by_class():
                if name not in classes:
                    classes.append(name)
        headers = ["system"] + classes
        rows = []
        for system in sorted(self.systems, key=lambda s: -s.ndcg5):
            by_class = system.ndcg5_by_class()
            rows.append(
                [system.name] + [f"{by_class.get(c, 0.0):.3f}" for c in classes]
            )
        return _format_table(headers, rows)


def _format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def run_query(system: System, query: BenchmarkQuery, k: int) -> QueryResult:
    """Evaluate one system on one query."""
    parsed = query.parse()
    started = time.perf_counter()
    try:
        ranked = system.rank(parsed, query.target_variable, k)
    except Exception:
        ranked = []  # a system crashing on a query scores zero, not the run
    elapsed = time.perf_counter() - started
    gains = [query.judgments.grade(term) for term in ranked]
    result = QueryResult(
        qid=query.qid,
        query_class=query.query_class,
        gains=gains,
        num_relevant=query.judgments.num_relevant,
        elapsed_seconds=elapsed,
    )
    result._ideal = query.judgments.positive_gains()
    return result


def evaluate_systems(
    systems: list[System], benchmark: Benchmark, k: int = 10
) -> EvalReport:
    """Run every system over every benchmark query."""
    report = EvalReport(k=k)
    for system in systems:
        system_result = SystemResult(name=system.name)
        for query in benchmark:
            system_result.per_query.append(run_query(system, query, k))
        report.systems.append(system_result)
    return report
