"""Shared utilities: text normalisation, seeded randomness, heaps."""

from repro.util.text import (
    normalize_phrase,
    normalize_token,
    stem,
    tokenize_phrase,
    jaccard,
    dice,
    overlap_coefficient,
)
from repro.util.rand import SeededRng, stable_hash
from repro.util.heap import TopKHeap

__all__ = [
    "normalize_phrase",
    "normalize_token",
    "stem",
    "tokenize_phrase",
    "jaccard",
    "dice",
    "overlap_coefficient",
    "SeededRng",
    "stable_hash",
    "TopKHeap",
]
