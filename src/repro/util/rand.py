"""Deterministic randomness helpers.

All synthetic-data generators in this library draw from a :class:`SeededRng`
rather than the module-level :mod:`random` state, so builds are reproducible
and independent generators never interfere with each other.
"""

from __future__ import annotations

import hashlib
import random
from bisect import bisect
from collections.abc import Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")

#: One growing cumulative Zipf weight table per skew, shared across every
#: :class:`SeededRng` (the table depends only on the skew, not on any
#: generator's state, and the length-``n`` table is a bit-exact prefix of
#: any longer one — cumulative sums accumulate left to right).  Without
#: this, each :meth:`SeededRng.zipf_index` call rebuilt an O(n) weight
#: list — quadratic across a generation run (preferential-attachment call
#: sites draw over an ever-growing population), which is what kept the
#: synthetic world from scaling to benchmark sizes.
_ZIPF_CUM_WEIGHTS: dict[float, list[float]] = {}


def _zipf_cum_weights(n: int, skew: float) -> list[float]:
    """The cumulative Zipf table for ``skew``, extended to at least ``n``."""
    table = _ZIPF_CUM_WEIGHTS.setdefault(skew, [])
    if len(table) < n:
        running = table[-1] if table else 0.0
        for rank in range(len(table), n):
            running += 1.0 / (rank + 1) ** skew
            table.append(running)
    return table


def stable_hash(*parts: object) -> int:
    """Return a platform-stable 64-bit hash of the string forms of ``parts``.

    Python's builtin ``hash`` is salted per process; this uses blake2b so the
    same inputs hash identically across runs and machines.
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(p) for p in parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class SeededRng:
    """A :class:`random.Random` wrapper with convenience sampling methods.

    Parameters
    ----------
    seed:
        Integer seed.  Two instances with the same seed produce identical
        streams.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, label: str) -> "SeededRng":
        """Return an independent child generator derived from ``label``.

        Forking lets one top-level seed drive many generators whose draws do
        not perturb each other: adding draws to the "corpus" fork never
        changes what the "kg" fork produces.
        """
        return SeededRng(stable_hash(self.seed, label))

    # -- thin wrappers -----------------------------------------------------

    def random(self) -> float:
        return self._rng.random()

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def sample(self, population: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(population, k)

    def choices(self, population: Sequence[T], weights: Sequence[float], k: int) -> list[T]:
        return self._rng.choices(population, weights=weights, k=k)

    # -- higher-level helpers ----------------------------------------------

    def chance(self, p: float) -> bool:
        """Bernoulli draw: True with probability ``p``."""
        return self._rng.random() < p

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Draw an index in ``[0, n)`` with a Zipf-like rank distribution.

        Entity popularity in real KGs is heavily skewed; corpus generation
        uses this so a few entities are mentioned very often (giving their
        facts high observation frequency, the tf-like effect in scoring)
        while the long tail appears rarely.

        Draws are bit-identical to the original
        ``choices(range(n), weights=...)`` formulation: ``choices`` does
        exactly this — accumulate the weights, scale one ``random()`` draw
        by the float total, bisect — so sampling against the cached
        cumulative table changes the cost (O(log n) after the first call
        for a given ``(n, skew)``), never the sampled stream.
        """
        if n <= 0:
            raise ValueError("zipf_index requires n >= 1")
        cum_weights = _zipf_cum_weights(n, skew)
        total = cum_weights[n - 1] + 0.0
        return bisect(cum_weights, self._rng.random() * total, 0, n - 1)

    def subset(self, population: Iterable[T], keep_probability: float) -> list[T]:
        """Independently keep each element with probability ``keep_probability``."""
        return [item for item in population if self._rng.random() < keep_probability]
