"""Text normalisation helpers used across the library.

Token triples in the XKG carry free-text phrases in their S/P/O slots.  To
match a query token like ``'won Nobel for'`` against an extracted phrase like
``'won a Nobel for'`` we normalise phrases into canonical token sequences:
lower-cased, punctuation-stripped, stopword-filtered (for match keys), and
lightly stemmed with a deterministic suffix stripper (a small subset of the
Porter steps — enough to conflate ``lectures/lectured/lecturing``).

Nothing here depends on external NLP packages; the functions are pure and
deterministic so stores built twice from the same input are identical.
"""

from __future__ import annotations

import re
import string

# Stopwords are intentionally minimal: only function words that carry no
# relational meaning.  Verbs like "is"/"was" are *kept* out of this set when
# normalising predicates because copulas distinguish e.g. 'was born in' from
# 'born in' — instead predicate keys drop them via PREDICATE_STOPWORDS.
STOPWORDS = frozenset(
    """a an the of in on at to for with by from his her its their this that
    these those as and or""".split()
)

# Additional words ignored when building *match keys* for verbal phrases.
PREDICATE_STOPWORDS = frozenset(
    """is are was were be been being has have had will would do does did""".split()
)

_PUNCT_TABLE = str.maketrans("", "", string.punctuation)
_WHITESPACE_RE = re.compile(r"\s+")

# Irregular forms the suffix stripper cannot reach but which appear in the
# corpus templates.  Maps surface form -> stem.
_IRREGULAR = {
    "won": "win",
    "wins": "win",
    "winning": "win",
    "born": "born",
    "went": "go",
    "gone": "go",
    "taught": "teach",
    "met": "meet",
    "held": "hold",
    "led": "lead",
    "wrote": "write",
    "written": "write",
    "made": "make",
    "gave": "give",
    "given": "give",
    "founded": "found",
    "ran": "run",
    "studied": "study",
    "studies": "study",
    "married": "marry",
    "marries": "marry",
    "cities": "city",
    "countries": "country",
    "universities": "university",
    "companies": "company",
    "discoveries": "discovery",
}


def stem(token: str) -> str:
    """Return a deterministic light stem of ``token``.

    Handles a table of irregular forms plus the common ``-ing``, ``-ed``,
    ``-es``, ``-s`` suffixes.  The stemmer is intentionally conservative: it
    never shortens a token below three characters, so short tokens pass
    through unchanged.

    >>> stem("lectured")
    'lectur'
    >>> stem("won")
    'win'
    """
    if token in _IRREGULAR:
        return _IRREGULAR[token]
    if len(token) > 5 and token.endswith("ing"):
        return token[:-3]
    if len(token) > 4 and token.endswith("ed"):
        return token[:-2]
    if len(token) > 4 and token.endswith("es"):
        return token[:-2]
    if len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
        return token[:-1]
    return token


def normalize_token(token: str) -> str:
    """Lower-case a single token and strip punctuation.

    >>> normalize_token("Nobel,")
    'nobel'
    """
    return token.lower().translate(_PUNCT_TABLE)


def tokenize_phrase(phrase: str) -> list[str]:
    """Split a phrase into normalised, non-empty tokens.

    >>> tokenize_phrase("won a Nobel for")
    ['won', 'a', 'nobel', 'for']
    """
    cleaned = _WHITESPACE_RE.sub(" ", phrase.strip())
    return [t for t in (normalize_token(tok) for tok in cleaned.split(" ")) if t]


def normalize_phrase(phrase: str) -> str:
    """Return the canonical surface form of a phrase (normalised tokens joined).

    This keeps stopwords; it is the identity-preserving normalisation used to
    decide whether two extracted phrases are the *same* phrase.

    >>> normalize_phrase("  Won a   NOBEL for ")
    'won a nobel for'
    """
    return " ".join(tokenize_phrase(phrase))


def match_key(phrase: str, *, predicate: bool = False) -> tuple[str, ...]:
    """Return the tuple of stemmed content tokens used for fuzzy matching.

    Match keys decide whether a query token pattern matches an XKG phrase:
    two phrases match when their keys are equal or one key is a contiguous
    subsequence of the other.  ``predicate=True`` additionally drops copulas
    and auxiliaries so ``'was born in'`` and ``'born in'`` share a key.

    >>> match_key("won a Nobel for")
    ('win', 'nobel', 'for')
    >>> match_key("was born in", predicate=True)
    ('born', 'in')
    """
    drop = STOPWORDS | (PREDICATE_STOPWORDS if predicate else frozenset())
    kept = []
    for tok in tokenize_phrase(phrase):
        if tok in drop and tok not in ("in", "at", "for", "on", "by", "with", "of", "to", "from"):
            continue
        if tok in STOPWORDS and tok not in ("in", "at", "for", "on", "by", "with", "of", "to", "from"):
            continue
        if predicate and tok in PREDICATE_STOPWORDS:
            continue
        if tok in ("a", "an", "the", "his", "her", "its", "their"):
            continue
        kept.append(stem(tok))
    return tuple(kept)


def is_subsequence(needle: tuple[str, ...], haystack: tuple[str, ...]) -> bool:
    """True when ``needle`` appears as a contiguous subsequence of ``haystack``.

    >>> is_subsequence(("b", "c"), ("a", "b", "c", "d"))
    True
    >>> is_subsequence(("b", "d"), ("a", "b", "c", "d"))
    False
    """
    if not needle:
        return True
    n, h = len(needle), len(haystack)
    if n > h:
        return False
    return any(haystack[i : i + n] == needle for i in range(h - n + 1))


def jaccard(a: set, b: set) -> float:
    """Jaccard similarity |a ∩ b| / |a ∪ b|; 0.0 when both sets are empty."""
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


def dice(a: set, b: set) -> float:
    """Dice coefficient 2|a ∩ b| / (|a| + |b|); 0.0 when both sets are empty."""
    if not a and not b:
        return 0.0
    return 2.0 * len(a & b) / (len(a) + len(b))


def overlap_coefficient(a: set, b: set) -> float:
    """Overlap coefficient |a ∩ b| / min(|a|, |b|); 0.0 when either is empty."""
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def camel_to_words(name: str) -> str:
    """Split a camelCase / PascalCase identifier into lower-case words.

    Used to turn KG predicate names into readable phrases for suggestion
    output and for ESA pseudo-documents.

    >>> camel_to_words("bornIn")
    'born in'
    >>> camel_to_words("hasAdvisor")
    'has advisor'
    """
    parts = re.findall(r"[A-Z]?[a-z0-9]+|[A-Z]+(?![a-z])", name)
    return " ".join(p.lower() for p in parts)
