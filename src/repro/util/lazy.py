"""One-shot, thread-safe lazy construction.

Several structures defer an expensive build to first use so a cold
snapshot open stays cheap (store statistics, the text index, the snapshot
term dictionary).  They share this mixin rather than each hand-rolling the
double-checked-locking pattern: call :meth:`_init_lazy` in ``__init__``,
implement :meth:`_build`, and guard every public accessor with
:meth:`_ensure`.  Concurrent first touches (``ask_many`` threads) observe
either nothing or the completed build, never a prefix; a build that raises
leaves the flag unset, so the next touch retries.
"""

from __future__ import annotations

import threading


class LazilyBuilt:
    """Mixin: defer :meth:`_build` to the first :meth:`_ensure` call."""

    _built = False

    def _init_lazy(self) -> None:
        self._built = False
        self._build_lock = threading.Lock()

    def _build(self) -> None:  # pragma: no cover - always overridden
        raise NotImplementedError

    @property
    def is_built(self) -> bool:
        with self._build_lock:
            return self._built

    def invalidate(self) -> None:
        """Forget the built state; the next touch rebuilds from scratch.

        Used by live ingestion: derived structures (statistics, text
        index) go stale when the store grows, and rebuilding lazily on the
        next query keeps ingest itself cheap.  Implementations of
        :meth:`_build` must construct into fresh containers and assign
        them at the end — a rebuild that mutated the containers in place
        would double-count, and concurrent readers could observe a prefix.
        """
        with self._build_lock:
            self._built = False

    def _ensure(self) -> None:
        # xkg: allow[lock-discipline] double-checked locking: the unlocked read only skips work after a completed build; the locked re-check decides
        if self._built:
            return
        with self._build_lock:
            if self._built:
                return
            self._build()
            self._built = True
