"""Heap helpers for top-k processing.

:class:`TopKHeap` keeps the k best-scoring items seen so far and exposes the
current threshold (the k-th best score), which the top-k processor compares
against upper bounds to decide when relaxations can no longer contribute.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, TypeVar

T = TypeVar("T")


class TopKHeap(Generic[T]):
    """Bounded min-heap retaining the ``k`` highest-scoring items.

    Ties are broken by insertion order (earlier insertions win), which keeps
    result lists deterministic.  Items may be any payload; only scores are
    compared.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._heap: list[tuple[float, int, T]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        """True once k items are retained."""
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """Score of the current k-th best item, or 0.0 until the heap fills.

        An un-filled heap admits anything, hence the zero threshold.
        """
        if not self.is_full:
            return 0.0
        return self._heap[0][0]

    def push(self, score: float, item: T) -> bool:
        """Offer ``item``; return True if it entered the current top-k.

        The tie-break counter is negated so that among equal scores the item
        inserted *earlier* is considered better (larger), matching the
        deterministic ordering used throughout the library.
        """
        order = -next(self._counter)
        if not self.is_full:
            heapq.heappush(self._heap, (score, order, item))
            return True
        if (score, order) > (self._heap[0][0], self._heap[0][1]):
            heapq.heapreplace(self._heap, (score, order, item))
            return True
        return False

    def would_accept(self, score: float) -> bool:
        """True if an item with ``score`` could still enter the top-k."""
        return not self.is_full or score > self.threshold

    def items_descending(self) -> list[tuple[float, T]]:
        """Return the retained (score, item) pairs, best first."""
        ordered = sorted(self._heap, key=lambda entry: (entry[0], entry[1]), reverse=True)
        return [(score, item) for score, _order, item in ordered]


class DistinctTopKTracker:
    """Tracks the k-th best score over *distinct keys* with improvable scores.

    Top-k processing needs the exact threshold "score of the current k-th
    best answer" to prune; answers are deduplicated by binding and their
    scores only ever improve (max over derivations).  This structure supports
    ``offer(key, score)`` with lazy-deletion heap updates in O(log n) and an
    O(1)-amortised :attr:`threshold`.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._in_top: dict[object, float] = {}
        self._heap: list[tuple[float, int, object]] = []
        self._counter = itertools.count()

    def _clean(self) -> None:
        """Pop heap entries that no longer reflect a key's current score."""
        while self._heap:
            score, _order, key = self._heap[0]
            if self._in_top.get(key) == score:
                return
            heapq.heappop(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._in_top) >= self.k

    @property
    def threshold(self) -> float:
        """Score of the k-th best distinct key; 0.0 until k keys are known."""
        if not self.is_full:
            return 0.0
        self._clean()
        return self._heap[0][0] if self._heap else 0.0

    def offer(self, key: object, score: float) -> None:
        """Report that ``key``'s best known score is now ``score``."""
        current = self._in_top.get(key)
        if current is not None:
            if score > current:
                self._in_top[key] = score
                heapq.heappush(self._heap, (score, next(self._counter), key))
            return
        if not self.is_full:
            self._in_top[key] = score
            heapq.heappush(self._heap, (score, next(self._counter), key))
            return
        if score > self.threshold:
            self._clean()
            if self._heap:
                _s, _o, evicted = heapq.heappop(self._heap)
                self._in_top.pop(evicted, None)
            self._in_top[key] = score
            heapq.heappush(self._heap, (score, next(self._counter), key))


class GrowableTopKTracker:
    """A :class:`DistinctTopKTracker` whose ``k`` can grow between drains.

    The resumable query driver needs the k-th-best-distinct-score threshold
    for a ``k`` that increases as a stream's consumer asks for more answers.
    A plain tracker evicts keys that fall out of its fixed top-k, losing
    exactly the information a larger ``k`` needs — so :meth:`set_k` rebuilds
    the inner tracker from the answer aggregator's full (key, best score)
    map, which is never truncated.  Between rebuilds this is a zero-overhead
    delegate, interface-compatible with the joins' tracker parameter.
    """

    def __init__(self, k: int = 1):
        self.k = k
        self._inner = DistinctTopKTracker(k)

    def set_k(self, k: int, entries) -> None:
        """Retarget to ``k``, re-offering ``entries`` of (key, best score)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        inner = DistinctTopKTracker(k)
        for key, score in entries:
            inner.offer(key, score)
        self._inner = inner

    @property
    def is_full(self) -> bool:
        return self._inner.is_full

    @property
    def threshold(self) -> float:
        return self._inner.threshold

    def offer(self, key: object, score: float) -> None:
        self._inner.offer(key, score)
