"""Background compaction: fold the mutable delta into frozen storage.

Live ingestion (:meth:`TripleStore.add` on a frozen store) accumulates
statements in an in-memory :class:`~repro.storage.delta.DeltaSegment`
that the posting merge treats as one more segment head.  The delta keeps
reads correct but not free — every posting pull re-sorts its keys against
the frozen heads — so once it grows past the engine's threshold it is
folded back into frozen, immutable storage here.

Two folding strategies, chosen by where the store lives:

* **Generation write** (:func:`write_generation`) — for stores loaded
  from a v3 *directory* snapshot.  The delta becomes one new frozen
  columnar segment; the existing segment files are **hardlinked** (never
  copied, never rewritten) into a new ``generation-K`` directory next to
  a freshly written manifest and the new segment's container, and the
  root's ``CURRENT`` pointer is atomically swapped last.  A crash at any
  earlier point leaves the previous generation untouched and active.
  Readers that opened the old generation keep it: their mmaps (and the
  per-process segment caches of :mod:`repro.storage.procpool`, keyed by
  generation directory path) reference the old files, which the swap
  does not disturb.

* **In-memory rebuild** (the fallback) — for dict/columnar/sharded
  stores with no backing directory.  :meth:`TripleStore.convert` re-adds
  every record in id order onto a fresh backend of the same class, which
  freezes into exactly the store a fresh build over the same statements
  would produce.

Both strategies preserve the byte-identity contract: within-segment
posting order is (weight desc, id asc) over densely assigned global ids,
and the delta's ids continue the frozen id space, so merging the new
segment reproduces the old (frozen + delta) merge order bit for bit.

Frozen *sort weights* are deliberately carried over unchanged by the
generation write: duplicate evidence arriving for an already-frozen
statement updates its record metadata (count, confidence, provenance —
persisted via the new manifest) but re-sorting the frozen postings for
the new weight would mean rewriting every segment file.  The in-memory
rebuild, which re-sorts anyway, folds those weight changes in.
"""

from __future__ import annotations

import json
import shutil
from array import array
from pathlib import Path

from repro.errors import StorageError
from repro.storage.columnar import ID_TYPECODE, ColumnarBackend
from repro.storage.sharded import ShardedBackend
from repro.storage.snapshot import (
    MANIFEST_NAME,
    WEIGHT_TYPECODE,
    _column_bytes,
    _columnar_sections,
    _write_container,
    generation_dirname,
    load_snapshot,
    parse_generation_dirname,
    segment_filename,
    swap_current,
)
from repro.storage.store import TripleStore
from repro.storage.termcodec import encode_provenance, encode_term


def compact_store(store: TripleStore) -> TripleStore:
    """Fold ``store``'s delta away; returns the compacted store.

    A store without a delta is returned unchanged.  Otherwise the result
    is a **new** store (the caller decides when the old one closes — the
    engine keeps it open while pinned streams still read from it): loaded
    from a freshly written snapshot generation when the store came from a
    directory snapshot, rebuilt in memory otherwise.
    """
    if not store.is_frozen:
        raise StorageError("Only frozen stores can be compacted")
    if not store.has_delta:
        return store
    backend = store.backend
    if isinstance(backend, ShardedBackend) and backend.snapshot_root is not None:
        write_generation(store)
        return load_snapshot(backend.snapshot_root)
    return _rebuild(store)


def _rebuild(store: TripleStore) -> TripleStore:
    """Fold the delta by re-adding all records onto a fresh backend."""
    backend = store.backend
    if isinstance(backend, ShardedBackend):
        fresh: object = ShardedBackend(backend.num_segments)
    else:
        fresh = type(backend)()
    return store.convert(fresh)


def _link_or_copy(src: Path, dst: Path) -> None:
    """Hardlink ``src`` to ``dst``; fall back to a copy across devices."""
    try:
        dst.hardlink_to(src)
    except OSError:
        shutil.copy2(src, dst)


def next_generation_number(root: Path, current: int) -> int:
    """First unused generation number at ``root`` (also skips leftovers
    of crashed, never-referenced compactions)."""
    highest = current
    for entry in root.iterdir():
        parsed = parse_generation_dirname(entry.name)
        if parsed is not None and entry.is_dir():
            highest = max(highest, parsed)
    return highest + 1


def _delta_segment_backend(store: TripleStore) -> ColumnarBackend:
    """The delta frozen as a columnar segment, locals in global-id order."""
    backend = store.backend
    delta = backend.delta
    frozen_n = len(backend._seg_of)
    weights: list[float] = []
    counts: list[int] = []
    segment = ColumnarBackend()
    for local in range(len(delta)):
        gid = frozen_n + local
        segment.insert(local, delta.slot_ids(gid))
        weights.append(delta.weight(gid))
        counts.append(delta.count(gid))
    segment.freeze(weights, counts)
    return segment


def write_generation(store: TripleStore, *, swap: bool = True) -> tuple[Path, int]:
    """Write ``store`` (frozen segments + delta) as a new snapshot generation.

    Returns ``(generation directory, generation number)``.  With
    ``swap=False`` the generation is written but ``CURRENT`` is left
    untouched — the crash-window state: a reopened store still loads the
    previous generation (crash-safety tests exercise exactly this).
    """
    backend = store.backend
    if not isinstance(backend, ShardedBackend) or backend.snapshot_root is None:
        raise StorageError(
            "Generation writes need a store loaded from a directory "
            "snapshot — use compact_store() for in-memory stores"
        )
    if not store.has_delta:
        raise StorageError("Nothing to compact: the store has no delta segment")
    root = Path(backend.snapshot_root)
    source_dir = Path(backend.source_dir)
    generation = next_generation_number(root, backend.generation)
    gen_dir = root / generation_dirname(generation)
    gen_dir.mkdir(parents=True, exist_ok=True)

    new_index = backend.num_segments
    delta_len = store.delta_size
    frozen_n = len(backend._seg_of)
    segment = _delta_segment_backend(store)

    segment_files: list[str] = []
    for index in range(new_index):
        filename = segment_filename(index)
        _link_or_copy(source_dir / filename, gen_dir / filename)
        segment_files.append(filename)
    new_filename = segment_filename(new_index)
    _write_container(
        gen_dir / new_filename,
        _columnar_sections(segment),
        {
            "version": 3,
            "kind": "segment",
            "name": store.name,
            "segment": new_index,
            "triples": delta_len,
        },
    )
    segment_files.append(new_filename)

    records = list(store.records())
    sections: dict[str, bytes] = {}
    sections["terms"] = json.dumps(
        [encode_term(term) for term in store.dictionary], ensure_ascii=False
    ).encode("utf-8")
    sections["prov"] = json.dumps(
        [[encode_provenance(p) for p in record.provenances] for record in records],
        ensure_ascii=False,
    ).encode("utf-8")
    sections["confidence"] = array(
        WEIGHT_TYPECODE, [record.confidence for record in records]
    ).tobytes()
    sections["seg_of"] = (
        _column_bytes(backend._seg_of)
        + array(ID_TYPECODE, [new_index] * delta_len).tobytes()
    )
    sections["local_of"] = (
        _column_bytes(backend._local_of)
        + array(ID_TYPECODE, range(delta_len)).tobytes()
    )
    sections["weights"] = (
        _column_bytes(backend._weights) + _column_bytes(segment._weights)
    )
    # Counts come from the records, not the old column: duplicate evidence
    # for frozen statements bumps record counts that the old column predates.
    sections["counts"] = array(
        ID_TYPECODE, [record.count for record in records]
    ).tobytes()
    for index in range(new_index):
        sections[f"seg{index}:globals"] = _column_bytes(backend._globals[index])
    sections[f"seg{new_index}:globals"] = array(
        ID_TYPECODE, range(frozen_n, frozen_n + delta_len)
    ).tobytes()

    sizes = backend.segment_sizes() + [delta_len]
    _write_container(
        gen_dir / MANIFEST_NAME,
        sections,
        {
            "version": 3,
            "kind": "manifest",
            "name": store.name,
            "triples": len(store),
            "terms": len(store.dictionary),
            "backend": "sharded",
            "segments": new_index + 1,
            "segment_sizes": sizes,
            "segment_files": segment_files,
        },
    )
    if swap:
        swap_current(root, generation)
    return gen_dir, generation
