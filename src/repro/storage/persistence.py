"""JSONL persistence for triple stores.

Format: the first line is a header object (``{"format": ..., "name": ...,
"triples": N}``); every following line is one distinct triple::

    {"s": ["r", "AlbertEinstein"], "p": ["t", "won nobel for"],
     "o": ["t", "discovery of the photoelectric effect"],
     "count": 3, "conf": 0.82,
     "prov": [{"origin": "openie", "source": "doc-17", ...}]}

Term encoding is a two-element array ``[kind_tag, lexical]`` with tags
``r`` (resource), ``l`` (literal), ``t`` (token).  Literal values round-trip
through the same auto-typing the query parser uses.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path

from repro.core.terms import Literal, Resource, Term, TextToken
from repro.core.terms import _auto_type  # canonical literal typing
from repro.core.triples import Provenance, Triple
from repro.errors import PersistenceError
from repro.storage.store import TripleStore

FORMAT_NAME = "trinit-xkg-jsonl"
FORMAT_VERSION = 1


def _encode_term(term: Term) -> list[str]:
    if isinstance(term, Resource):
        return ["r", term.name]
    if isinstance(term, TextToken):
        return ["t", term.norm]
    if isinstance(term, Literal):
        # The datatype travels along so "1879-03-14"-the-string and
        # 1879-03-14-the-date round-trip to exactly what was stored.
        return ["l", term.lexical(), term.datatype]
    raise PersistenceError(f"Cannot persist term of kind {term.kind}")


def _decode_literal(value: str, datatype: str) -> Literal:
    if datatype == "string":
        return Literal(value)
    if datatype == "integer":
        return Literal(int(value))
    if datatype == "double":
        return Literal(float(value))
    if datatype == "date":
        return Literal(date.fromisoformat(value))
    raise PersistenceError(f"Unknown literal datatype: {datatype!r}")


def _decode_term(encoded: list) -> Term:
    if not isinstance(encoded, list) or len(encoded) not in (2, 3):
        raise PersistenceError(f"Bad term encoding: {encoded!r}")
    tag, value = encoded[0], encoded[1]
    if tag == "r":
        return Resource(value)
    if tag == "t":
        return TextToken(value)
    if tag == "l":
        if len(encoded) == 3:
            return _decode_literal(value, encoded[2])
        return Literal(_auto_type(value))  # legacy 2-element form
    raise PersistenceError(f"Unknown term tag: {tag!r}")


def _encode_provenance(prov: Provenance) -> dict:
    record = {"origin": prov.origin}
    if prov.source:
        record["source"] = prov.source
    if prov.sentence:
        record["sentence"] = prov.sentence
    if prov.extractor:
        record["extractor"] = prov.extractor
    return record


def _decode_provenance(record: dict) -> Provenance:
    return Provenance(
        origin=record.get("origin", "kg"),
        source=record.get("source", ""),
        sentence=record.get("sentence", ""),
        extractor=record.get("extractor", ""),
    )


def save_store(store: TripleStore, path: str | Path) -> int:
    """Write ``store`` to ``path``; returns the number of triples written.

    The store need not be frozen; what is saved is the distinct-triple level
    (statements, counts, confidences, provenance samples).
    """
    path = Path(path)
    lines_written = 0
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": store.name,
            "triples": len(store),
        }
        handle.write(json.dumps(header) + "\n")
        for record in store.records():
            payload = {
                "s": _encode_term(record.triple.s),
                "p": _encode_term(record.triple.p),
                "o": _encode_term(record.triple.o),
                "count": record.count,
                "conf": round(record.confidence, 6),
                "prov": [_encode_provenance(p) for p in record.provenances],
            }
            handle.write(json.dumps(payload, ensure_ascii=False) + "\n")
            lines_written += 1
    return lines_written


def load_store(
    path: str | Path, freeze: bool = True, backend: str | None = None
) -> TripleStore:
    """Load a store previously written by :func:`save_store`.

    ``backend`` selects the storage backend of the loaded store (registry
    name, e.g. "columnar" or "dict"); ``None`` keeps the default.
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"No such file: {path}")
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise PersistenceError(f"Empty store file: {path}")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"Bad header in {path}: {exc}") from exc
        if header.get("format") != FORMAT_NAME:
            raise PersistenceError(
                f"Not a {FORMAT_NAME} file: format={header.get('format')!r}"
            )
        store = TripleStore(name=header.get("name", "XKG"), backend=backend)
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                triple = Triple(
                    _decode_term(payload["s"]),
                    _decode_term(payload["p"]),
                    _decode_term(payload["o"]),
                )
                provenances = [
                    _decode_provenance(p) for p in payload.get("prov", [])
                ] or [None]
                store.add(
                    triple,
                    provenance=provenances[0],
                    confidence=float(payload.get("conf", 1.0)),
                    count=int(payload.get("count", 1)),
                )
                # Extra provenance samples beyond the first.
                record = store.lookup(triple)
                for extra in provenances[1:]:
                    if extra is not None and extra not in record.provenances:
                        record.provenances.append(extra)
            except (KeyError, ValueError, TypeError) as exc:
                raise PersistenceError(
                    f"Bad triple at {path}:{line_number}: {exc}"
                ) from exc
    expected = header.get("triples")
    if expected is not None and expected != len(store):
        raise PersistenceError(
            f"Header declares {expected} triples but file contains {len(store)}"
        )
    return store.freeze() if freeze else store
