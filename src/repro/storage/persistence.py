"""Save/load for triple stores: JSONL statements + binary snapshots.

Two formats share :func:`load_store`:

* **JSONL** (written by :func:`save_store`): the first line is a header
  object (``{"format": ..., "name": ..., "triples": N}``); every following
  line is one distinct triple::

      {"s": ["r", "AlbertEinstein"], "p": ["t", "won nobel for"],
       "o": ["t", "discovery of the photoelectric effect"],
       "count": 3, "conf": 0.82,
       "prov": [{"origin": "openie", "source": "doc-17", ...}]}

  Term encoding is a two-element array ``[kind_tag, lexical]`` with tags
  ``r`` (resource), ``l`` (literal), ``t`` (token) — see
  :mod:`repro.storage.termcodec`.  Confidences are written with full float
  precision (``repr`` round-trip), so a reloaded store's weights — and
  therefore its answer rankings — are bit-identical to the saved one.

* **Binary snapshot** (written by :func:`repro.storage.snapshot.
  save_snapshot`): the frozen columnar arrays, mapped back without
  re-ingestion.  :func:`load_store` sniffs the leading magic bytes and
  dispatches automatically.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.triples import Triple
from repro.errors import PersistenceError
from repro.storage.store import TripleStore
from repro.storage.termcodec import (
    decode_provenance,
    decode_term,
    encode_provenance,
    encode_term,
)

FORMAT_NAME = "trinit-xkg-jsonl"
FORMAT_VERSION = 1


def save_store(store: TripleStore, path: str | Path) -> int:
    """Write ``store`` to ``path``; returns the number of triples written.

    The store need not be frozen; what is saved is the distinct-triple level
    (statements, counts, confidences, provenance samples).  Confidences are
    serialised exactly (shortest round-trip ``repr``), never rounded: a
    truncated confidence would shift reloaded weights and reorder answers.
    """
    path = Path(path)
    lines_written = 0
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": store.name,
            "triples": len(store),
        }
        handle.write(json.dumps(header) + "\n")
        for record in store.records():
            payload = {
                "s": encode_term(record.triple.s),
                "p": encode_term(record.triple.p),
                "o": encode_term(record.triple.o),
                "count": record.count,
                "conf": record.confidence,
                "prov": [encode_provenance(p) for p in record.provenances],
            }
            handle.write(json.dumps(payload, ensure_ascii=False) + "\n")
            lines_written += 1
    return lines_written


def load_store(
    path: str | Path, freeze: bool = True, backend: str | None = None
) -> TripleStore:
    """Load a store previously written by :func:`save_store` or
    :func:`repro.storage.snapshot.save_snapshot`.

    The format is sniffed from the file's first bytes.  ``backend`` selects
    the storage backend of the loaded store (registry name, e.g. "columnar",
    "dict" or "sharded"); ``None`` keeps the default (for snapshots: the
    mapped columnar backend, zero-copy).  Snapshot files are inherently
    frozen, so ``freeze=False`` is rejected for them.
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"No such file: {path}")

    from repro.storage.snapshot import is_snapshot, load_snapshot

    if path.is_dir() and not is_snapshot(path):
        raise PersistenceError(
            f"Not a snapshot directory (no manifest.xkgsnap): {path}"
        )
    if is_snapshot(path):
        if not freeze:
            raise PersistenceError(
                "Snapshot stores are always frozen; freeze=False is not "
                "supported for snapshot files"
            )
        store = load_snapshot(path)
        if backend is not None and backend != store.backend_name:
            store = store.convert(backend)
        return store

    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise PersistenceError(f"Empty store file: {path}")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"Bad header in {path}: {exc}") from exc
        if header.get("format") != FORMAT_NAME:
            raise PersistenceError(
                f"Not a {FORMAT_NAME} file: format={header.get('format')!r}"
            )
        store = TripleStore(name=header.get("name", "XKG"), backend=backend)
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                triple = Triple(
                    decode_term(payload["s"]),
                    decode_term(payload["p"]),
                    decode_term(payload["o"]),
                )
                provenances = [
                    decode_provenance(p) for p in payload.get("prov", [])
                ] or [None]
                store.add(
                    triple,
                    provenance=provenances[0],
                    confidence=float(payload.get("conf", 1.0)),
                    count=int(payload.get("count", 1)),
                )
                # Extra provenance samples beyond the first go through the
                # same capped path TripleStore.add uses, so no file can
                # inflate a record past MAX_PROVENANCES.
                record = store.lookup(triple)
                for extra in provenances[1:]:
                    record.add_provenance(extra)
            except (KeyError, ValueError, TypeError) as exc:
                raise PersistenceError(
                    f"Bad triple at {path}:{line_number}: {exc}"
                ) from exc
    expected = header.get("triples")
    if expected is not None and expected != len(store):
        raise PersistenceError(
            f"Header declares {expected} triples but file contains {len(store)}"
        )
    return store.freeze() if freeze else store
