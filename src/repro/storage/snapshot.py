"""Binary columnar snapshots: persistence that maps the arrays, not rows.

The JSONL format (:mod:`repro.storage.persistence`) re-ingests every
statement on load — JSON parsing, dictionary re-encoding, backend inserts,
and a full freeze-time re-sort of every posting structure.  A snapshot
instead writes the frozen backend state *as laid out in memory*:

* the s/p/o id columns, the weight column, and the counts column,
* the global scan permutation and the per-signature permutation arrays,
* the per-signature offset tables (key → posting range),
* the term dictionary (in id order) and the per-triple record metadata
  (exact binary confidences, counts, provenance samples).

Loading ``mmap``-s the file and exposes the permutation arrays and columns
as zero-copy read-only memoryviews directly over the mapped pages — no
re-ingestion, no re-freeze, and posting lists byte-identical to the store
the snapshot was written from.  Confidences and weights travel as binary
IEEE doubles, so reloaded scores are bit-exact, not round-tripped through
decimal text.

Three format versions are readable; the version is sniffed from the magic
and the header:

* **v1** — single file, one eager columnar section set (legacy).
* **v2** — single file, segment-aware and lazy: a sharded store's segments
  are written as ``seg<i>:…`` section groups plus the global id maps, and
  restore as lazy loaders over the one mapping; the term dictionary and the
  per-triple :class:`StoredTriple` records materialise lazily too.
* **v3** — a **directory**: one self-contained section file per segment
  (``segment-0000.xkgsnap`` …) plus ``manifest.xkgsnap`` carrying the
  global id maps, weights, terms and record metadata.  Every segment is a
  complete snapshot container on its own, so a worker *process* can mmap
  exactly the segment files it owns — copy-on-write shared reads with zero
  pickling of posting data (see :mod:`repro.storage.procpool`).  The
  loaded backend remembers its :attr:`~repro.storage.sharded.
  ShardedBackend.source_dir` so executors can hand workers the path
  instead of the data.

A v3 directory may additionally be **generational**: after background
compaction (:mod:`repro.storage.compaction`) the root holds
``generation-K`` subdirectories — each a complete flat v3 layout — plus a
``CURRENT`` pointer file naming the live one, swapped atomically by
write-new-then-rename.  A root without ``CURRENT`` *is* its own
generation 0, so pre-generation snapshots load unchanged.

:func:`save_snapshot` writes v3 for sharded stores by default and can
still write v1/v2 (``version=``) for migration; :func:`load_snapshot`
dispatches on file-vs-directory and the header.

Single-file layout (all integers little/big per the writing platform,
recorded in the header)::

    [ magic "XKGSNAP\\x01" ][ uint64 header offset ][ sections ... ][ header JSON ]

The header JSON carries the format name/version, store name, byte order,
item sizes, backend kind, segmentation, and a section table
``{name: [offset, length]}``.  Placing the header *after* the sections
keeps section offsets stable while the header is being composed.  A v3
directory uses the same container layout for the manifest and for each
segment file (``kind`` in the header tells them apart).
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import threading
from array import array
from pathlib import Path
from typing import Sequence

from repro.core.triples import Triple
from repro.errors import PersistenceError, StorageError
from repro.storage.columnar import ID_TYPECODE, ColumnarBackend
from repro.storage.dictionary import LazyTermDictionary, TermDictionary
from repro.storage.index import SIGNATURES
from repro.storage.sharded import ShardedBackend
from repro.storage.store import StoredTriple, TripleStore
from repro.storage.termcodec import (
    decode_provenance,
    decode_term,
    encode_provenance,
    encode_term,
)

#: First bytes of every snapshot container file; :func:`repro.storage.
#: persistence.load_store` sniffs it to dispatch between formats.
MAGIC = b"XKGSNAP\x01"
FORMAT_NAME = "trinit-xkg-snapshot"
FORMAT_VERSION = 3
#: Versions this build can load.
SUPPORTED_VERSIONS = (1, 2, 3)

#: File names inside a v3 directory snapshot.
MANIFEST_NAME = "manifest.xkgsnap"

#: Pointer file naming the active generation of a multi-generation
#: directory snapshot.  Absent on flat (single-generation) layouts.
CURRENT_NAME = "CURRENT"

WEIGHT_TYPECODE = "d"
_ALIGN = 8
_OFFSET_STRUCT = struct.Struct("<Q")


def segment_filename(index: int) -> str:
    """Name of segment ``index``'s container inside a directory snapshot."""
    return f"segment-{index:04d}.xkgsnap"


def generation_dirname(generation: int) -> str:
    """Name of generation ``generation``'s directory inside a snapshot root."""
    return f"generation-{generation:04d}"


def parse_generation_dirname(name: str) -> int | None:
    """Inverse of :func:`generation_dirname`; ``None`` for other names."""
    if not name.startswith("generation-"):
        return None
    digits = name[len("generation-"):]
    if not digits.isdigit():
        return None
    return int(digits)


def resolve_generation(path: Path) -> tuple[Path, Path, int]:
    """``(root, active generation directory, generation number)`` of ``path``.

    A directory snapshot that has been compacted at least once holds its
    container files in ``generation-K`` subdirectories, with a ``CURRENT``
    pointer file naming the live one.  A flat layout (as written by
    :func:`save_snapshot`) has no pointer and *is* its own generation 0 —
    the pre-generation v3 format loads unchanged.
    """
    path = Path(path)
    current = path / CURRENT_NAME
    if not current.exists():
        return path, path, 0
    try:
        name = current.read_text(encoding="utf-8").strip()
    except OSError as exc:
        raise PersistenceError(
            f"Unreadable {CURRENT_NAME} pointer in snapshot directory "
            f"{path}: {exc}"
        ) from exc
    generation = parse_generation_dirname(name)
    if generation is None:
        raise PersistenceError(
            f"Corrupt snapshot directory {path}: {CURRENT_NAME} names "
            f"{name!r}, not a generation directory"
        )
    gen_dir = path / name
    if not gen_dir.is_dir():
        raise PersistenceError(
            f"Corrupt snapshot directory {path}: {CURRENT_NAME} points at "
            f"missing generation directory {gen_dir}"
        )
    return path, gen_dir, generation


def swap_current(root: Path, generation: int) -> None:
    """Atomically repoint ``root``'s ``CURRENT`` at ``generation``.

    Write-new-then-rename: the pointer contents land in a temporary file
    first and ``os.replace`` makes them visible in one step, so a crash
    between the two leaves the previous generation active and the new
    directory merely unreferenced.
    """
    root = Path(root)
    tmp = root / f"{CURRENT_NAME}.tmp"
    tmp.write_text(generation_dirname(generation) + "\n", encoding="utf-8")
    os.replace(tmp, root / CURRENT_NAME)


def _sig_key(sig: tuple[int, ...]) -> str:
    return "".join(str(slot) for slot in sig)


def _column_bytes(column) -> bytes:
    """Raw bytes of a column, whether a live array or a restored memoryview."""
    return column.tobytes()


def _columnar_sections(backend: ColumnarBackend, prefix: str = "") -> dict[str, bytes]:
    """The posting-structure sections of one frozen columnar (segment) backend."""
    sections: dict[str, bytes] = {}
    sections[f"{prefix}counts"] = _column_bytes(backend._counts)
    sections[f"{prefix}col:s"] = _column_bytes(backend._s)
    sections[f"{prefix}col:p"] = _column_bytes(backend._p)
    sections[f"{prefix}col:o"] = _column_bytes(backend._o)
    sections[f"{prefix}weights"] = _column_bytes(backend._weights)
    sections[f"{prefix}scan"] = bytes(backend._scan_view)
    for sig in SIGNATURES:
        key = _sig_key(sig)
        sections[f"{prefix}perm:{key}"] = bytes(backend._perm_views[sig])
        flat = array(ID_TYPECODE)
        for group_key, (start, stop) in backend._offsets[sig].items():
            flat.extend(group_key)
            flat.append(start)
            flat.append(stop)
        sections[f"{prefix}offsets:{key}"] = flat.tobytes()
    return sections


# -- container writer ---------------------------------------------------------


def _write_container(
    path: Path, sections: dict[str, bytes], header_fields: dict
) -> int:
    """Write one snapshot container (magic + sections + trailing header).

    ``header_fields`` supplies the variable part of the header (version,
    kind, store identity, segmentation); platform fields and the section
    table are appended here.  Returns bytes written.
    """
    table: dict[str, list[int]] = {}
    with path.open("wb") as handle:
        handle.write(MAGIC)
        handle.write(_OFFSET_STRUCT.pack(0))  # header offset, patched below
        position = len(MAGIC) + _OFFSET_STRUCT.size
        for name, payload in sections.items():
            if position % _ALIGN:
                padding = _ALIGN - position % _ALIGN
                handle.write(b"\x00" * padding)
                position += padding
            table[name] = [position, len(payload)]
            handle.write(payload)
            position += len(payload)
        header = {
            "format": FORMAT_NAME,
            **header_fields,
            "byteorder": sys.byteorder,
            "id_itemsize": array(ID_TYPECODE).itemsize,
            "weight_itemsize": array(WEIGHT_TYPECODE).itemsize,
            "signatures": [_sig_key(sig) for sig in SIGNATURES],
            "sections": table,
        }
        header_offset = position
        handle.write(json.dumps(header, ensure_ascii=False).encode("utf-8"))
        total = handle.tell()
        handle.seek(len(MAGIC))
        handle.write(_OFFSET_STRUCT.pack(header_offset))
    return total


def save_snapshot(
    store: TripleStore, path: str | Path, *, version: int = FORMAT_VERSION
) -> int:
    """Write ``store``'s frozen state to ``path``; returns bytes written.

    The store must be frozen (snapshots capture posting structures, which
    only exist after freeze) and on the "columnar" or "sharded" backend —
    convert other backends first (``store.convert("columnar")``).  A
    sharded store keeps its segmentation: segment count, per-segment
    posting layout and the global id maps all round-trip.

    ``version`` selects the layout:

    * ``3`` (default) — a **directory snapshot**: ``path`` becomes a
      directory holding one self-contained container per segment plus the
      manifest.  Requires the sharded backend (segments are the unit of the
      layout); columnar stores fall back to the single-file v2 layout
      automatically.
    * ``2`` — a single segment-aware file (sharded or columnar).
    * ``1`` — the legacy single-backend layout (columnar only), kept
      writable for migration testing.
    """
    if not store.is_frozen:
        raise PersistenceError("Only frozen stores can be snapshotted")
    if store.delta_size:
        raise PersistenceError(
            f"Cannot snapshot a store with {store.delta_size} uncompacted "
            "live statements in its delta segment — compact first "
            "(repro.storage.compaction.compact_store or engine.compact())"
        )
    if version not in SUPPORTED_VERSIONS:
        raise PersistenceError(f"Cannot write snapshot version {version!r}")
    backend = store.backend
    path = Path(path)

    records = list(store.records())
    meta_sections: dict[str, bytes] = {}
    meta_sections["terms"] = json.dumps(
        [encode_term(term) for term in store.dictionary], ensure_ascii=False
    ).encode("utf-8")
    meta_sections["prov"] = json.dumps(
        [[encode_provenance(p) for p in record.provenances] for record in records],
        ensure_ascii=False,
    ).encode("utf-8")
    meta_sections["confidence"] = array(
        WEIGHT_TYPECODE, [record.confidence for record in records]
    ).tobytes()

    if version >= 3:
        if isinstance(backend, ShardedBackend):
            return _save_snapshot_dir(store, backend, path, meta_sections)
        # Directory layouts partition by segment; a monolithic store has
        # nothing to partition — write the equivalent single-file layout.
        version = 2

    sections = dict(meta_sections)
    header_extra: dict = {}
    if isinstance(backend, ColumnarBackend):
        sections.update(_columnar_sections(backend))
        if version >= 2:
            header_extra["backend"] = "columnar"
    elif isinstance(backend, ShardedBackend):
        if version < 2:
            raise PersistenceError(
                "Snapshot version 1 cannot carry a sharded backend — "
                'use version=2 or store.convert("columnar")'
            )
        sections["seg_of"] = _column_bytes(backend._seg_of)
        sections["local_of"] = _column_bytes(backend._local_of)
        sections["weights"] = _column_bytes(backend._weights)
        sections["counts"] = _column_bytes(backend._counts)
        for index in range(backend.num_segments):
            segment = backend._segment(index)
            prefix = f"seg{index}:"
            sections.update(_columnar_sections(segment, prefix))
            sections[f"{prefix}globals"] = _column_bytes(backend._globals[index])
        header_extra["backend"] = "sharded"
        header_extra["segments"] = backend.num_segments
        header_extra["segment_sizes"] = backend.segment_sizes()
    else:
        raise PersistenceError(
            f"Snapshots require the columnar or sharded backend, not "
            f"{store.backend_name!r} — use store.convert(\"columnar\") first"
        )

    return _write_container(
        path,
        sections,
        {
            "version": version,
            "name": store.name,
            "triples": len(store),
            "terms": len(store.dictionary),
            **header_extra,
        },
    )


def _save_snapshot_dir(
    store: TripleStore,
    backend: ShardedBackend,
    path: Path,
    meta_sections: dict[str, bytes],
) -> int:
    """Write the v3 directory layout: per-segment containers + manifest."""
    if path.exists() and not path.is_dir():
        raise PersistenceError(
            f"Directory snapshot target exists and is not a directory: {path}"
        )
    path.mkdir(parents=True, exist_ok=True)
    total = 0
    segment_files: list[str] = []
    for index in range(backend.num_segments):
        filename = segment_filename(index)
        segment = backend._segment(index)
        total += _write_container(
            path / filename,
            _columnar_sections(segment),
            {
                "version": 3,
                "kind": "segment",
                "name": store.name,
                "segment": index,
                "triples": len(segment),
            },
        )
        segment_files.append(filename)
    sections = dict(meta_sections)
    sections["seg_of"] = _column_bytes(backend._seg_of)
    sections["local_of"] = _column_bytes(backend._local_of)
    sections["weights"] = _column_bytes(backend._weights)
    sections["counts"] = _column_bytes(backend._counts)
    for index in range(backend.num_segments):
        sections[f"seg{index}:globals"] = _column_bytes(backend._globals[index])
    total += _write_container(
        path / MANIFEST_NAME,
        sections,
        {
            "version": 3,
            "kind": "manifest",
            "name": store.name,
            "triples": len(store),
            "terms": len(store.dictionary),
            "backend": "sharded",
            "segments": backend.num_segments,
            "segment_sizes": backend.segment_sizes(),
            "segment_files": segment_files,
        },
    )
    return total


# -- container reader ---------------------------------------------------------


def _read_header(base: memoryview) -> dict:
    if bytes(base[: len(MAGIC)]) != MAGIC:
        raise PersistenceError("Not a snapshot file (bad magic)")
    (header_offset,) = _OFFSET_STRUCT.unpack_from(base, len(MAGIC))
    if not len(MAGIC) + _OFFSET_STRUCT.size <= header_offset <= len(base):
        raise PersistenceError("Corrupt snapshot: header offset out of range")
    try:
        header = json.loads(bytes(base[header_offset:]).decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise PersistenceError(f"Corrupt snapshot header: {exc}") from exc
    if not isinstance(header, dict):
        raise PersistenceError("Corrupt snapshot header: not an object")
    if header.get("format") != FORMAT_NAME:
        raise PersistenceError(
            f"Not a {FORMAT_NAME} file: format={header.get('format')!r}"
        )
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"Unsupported snapshot version: {header.get('version')!r}"
        )
    if header.get("byteorder") != sys.byteorder:
        raise PersistenceError(
            f"Snapshot written on a {header.get('byteorder')}-endian platform "
            f"cannot be mapped on a {sys.byteorder}-endian one"
        )
    if header.get("id_itemsize") != array(ID_TYPECODE).itemsize:
        raise PersistenceError(
            f"Snapshot id itemsize {header.get('id_itemsize')} does not match "
            f"this platform's {array(ID_TYPECODE).itemsize}"
        )
    if header.get("weight_itemsize") != array(WEIGHT_TYPECODE).itemsize:
        raise PersistenceError(
            f"Snapshot weight itemsize {header.get('weight_itemsize')} does "
            f"not match this platform's {array(WEIGHT_TYPECODE).itemsize}"
        )
    if header.get("signatures") != [_sig_key(sig) for sig in SIGNATURES]:
        raise PersistenceError("Snapshot signature set does not match this build")
    return header


class _Container:
    """One mapped snapshot container: header plus typed section views.

    With ``map_file=True`` the file is ``mmap``-ed and sections are
    zero-copy memoryviews over the mapped pages; otherwise the file is
    read into a private bytes buffer once.  Ownership of :attr:`buffer`
    passes to whichever backend the loader assembles from it.
    """

    def __init__(self, path: Path, *, map_file: bool = True):
        self.path = Path(path)
        if not self.path.exists():
            raise PersistenceError(f"No such file: {self.path}")
        if map_file:
            with self.path.open("rb") as handle:
                self.buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        else:
            self.buffer = self.path.read_bytes()
        try:
            self.base = memoryview(self.buffer)
            try:
                self.header = _read_header(self.base)
            except PersistenceError as exc:
                # Name the damaged file: directory snapshots open containers
                # lazily (possibly in worker processes), long after the user
                # pointed anything at this path.
                raise PersistenceError(f"{exc}: {self.path}") from exc
        except Exception:
            self.discard()
            raise

    @property
    def kind(self) -> str:
        """Container role: "store" (v1/v2 file), "manifest" or "segment"."""
        return self.header.get("kind", "store")

    def discard(self) -> None:
        """Release the mapping of a container that will not be adopted."""
        base, self.base = getattr(self, "base", None), None
        if base is not None:
            base.release()
        buffer, self.buffer = self.buffer, None
        if buffer is not None and hasattr(buffer, "close"):
            try:
                buffer.close()
            except BufferError:  # a view escaped; freed when it is collected
                pass

    # -- typed section access ---------------------------------------------

    def view(self, name: str) -> memoryview:
        base = self.base
        if base is None:
            raise PersistenceError(
                f"Snapshot container already discarded: {self.path}"
            )
        entry = self.header["sections"].get(name)
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not all(isinstance(v, int) for v in entry)
        ):
            raise PersistenceError(f"Snapshot is missing section {name!r}")
        offset, length = entry
        if offset < 0 or length < 0 or offset + length > len(base):
            raise PersistenceError(f"Corrupt snapshot: section {name!r} truncated")
        return base[offset : offset + length]

    def cast(self, name: str, typecode: str) -> memoryview:
        raw = self.view(name)
        itemsize = array(typecode).itemsize
        if len(raw) % itemsize:
            raise PersistenceError(
                f"Corrupt snapshot: section {name!r} is not a whole number "
                f"of {itemsize}-byte items"
            )
        return raw.cast(typecode)

    def ids(self, name: str) -> memoryview:
        return self.cast(name, ID_TYPECODE)

    def doubles(self, name: str) -> memoryview:
        return self.cast(name, WEIGHT_TYPECODE)

    def columnar_parts(self, prefix: str, length: int):
        """Validated column/permutation views of one (segment) section set."""
        col_s = self.ids(f"{prefix}col:s")
        col_p = self.ids(f"{prefix}col:p")
        col_o = self.ids(f"{prefix}col:o")
        weights = self.doubles(f"{prefix}weights")
        counts = self.ids(f"{prefix}counts")
        if not (
            len(col_s) == len(col_p) == len(col_o) == len(weights)
            == len(counts) == length
        ):
            raise PersistenceError(
                f"Header declares {length} triples for {prefix or 'store'!r} "
                "but the columns disagree"
            )
        perm_views: dict[tuple[int, ...], memoryview] = {}
        offsets: dict[tuple[int, ...], dict[tuple[int, ...], tuple[int, int]]] = {}
        for sig in SIGNATURES:
            key = _sig_key(sig)
            perm = self.ids(f"{prefix}perm:{key}")
            if len(perm) != length:
                raise PersistenceError(
                    f"Corrupt snapshot: permutation {prefix}{key} has "
                    f"{len(perm)} entries, expected {length}"
                )
            perm_views[sig] = perm
            flat = self.ids(f"{prefix}offsets:{key}")
            arity = len(sig)
            stride = arity + 2
            if len(flat) % stride:
                raise PersistenceError(
                    f"Corrupt snapshot: offset table {prefix}{key}"
                )
            table: dict[tuple[int, ...], tuple[int, int]] = {}
            for i in range(0, len(flat), stride):
                table[tuple(flat[i : i + arity])] = (
                    flat[i + arity],
                    flat[i + arity + 1],
                )
            offsets[sig] = table
        scan = self.ids(f"{prefix}scan")
        if len(scan) != length:
            raise PersistenceError(
                f"Corrupt snapshot: scan permutation {prefix or 'store'!r} truncated"
            )
        return col_s, col_p, col_o, weights, counts, scan, perm_views, offsets

    def restore_columnar(self, prefix: str, length: int, *, own_buffer: bool):
        """A :class:`ColumnarBackend` over this container's section set."""
        col_s, col_p, col_o, weights, counts, scan, perm_views, offsets = (
            self.columnar_parts(prefix, length)
        )
        return ColumnarBackend._restore(
            s=col_s,
            p=col_p,
            o=col_o,
            weights=weights,
            counts=counts,
            scan_view=scan,
            perm_views=perm_views,
            offsets=offsets,
            buffer=self.buffer if own_buffer else None,
        )


class _SnapshotRecords(Sequence):
    """Per-triple :class:`StoredTriple` records, materialised on demand.

    Everything a record needs is already in the mapped sections: term ids
    come from the backend columns, counts and bit-exact confidences from
    their own columns, provenance samples from the ``prov`` JSON blob —
    which itself is parsed only when the first record is materialised.
    Materialised records are cached, so repeated ``store.record(tid)`` calls
    return the same object (explanations hold on to them).
    """

    def __init__(
        self,
        dictionary: TermDictionary,
        backend,
        counts,
        confidences,
        prov_raw: memoryview,
        n: int,
    ):
        self._dictionary = dictionary
        self._backend = backend
        self._counts = counts
        self._confidences = confidences
        self._prov_raw = prov_raw
        self._prov: list | None = None
        self._n = n
        self._cache: list[StoredTriple | None] = [None] * n
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._n

    @property
    def materialized(self) -> int:
        """How many records have been decoded so far (introspection)."""
        with self._lock:
            return sum(1 for record in self._cache if record is not None)

    def release(self) -> None:
        """Drop the mapped views (store close).  Cached records stay valid;
        records never materialised raise :class:`StorageError` afterwards
        (their backing columns are gone with the mapping)."""
        for view in (self._prov_raw, self._counts, self._confidences):
            if isinstance(view, memoryview):
                view.release()
        self._prov_raw = self._counts = self._confidences = None

    def _provenances(self) -> list:
        prov = self._prov
        if prov is None:
            if self._prov_raw is None:
                raise StorageError("Store is closed")
            try:
                prov = json.loads(bytes(self._prov_raw).decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
                raise PersistenceError(
                    f"Corrupt snapshot provenance table: {exc}"
                ) from exc
            if not isinstance(prov, list) or len(prov) != self._n:
                raise PersistenceError("Corrupt snapshot: provenance table truncated")
            self._prov = prov
        return prov

    def _materialize(self, tid: int) -> StoredTriple:
        if self._counts is None or self._confidences is None:
            raise StorageError("Store is closed")
        decode = self._dictionary.decode
        try:
            s, p, o = self._backend.slot_ids(tid)
            count = self._counts[tid]
            confidence = self._confidences[tid]
        except ValueError as exc:  # released memoryview after close
            raise StorageError("Store is closed") from exc
        record = StoredTriple(
            Triple(decode(s), decode(p), decode(o)), count, confidence, []
        )
        for encoded in self._provenances()[tid]:
            record.add_provenance(decode_provenance(encoded))
        return record

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._n))]
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(f"Record index out of range: {index}")
        # xkg: allow[lock-discipline] double-checked locking: slots are written once under the lock; a racy None read just falls through to the locked re-check
        record = self._cache[index]
        if record is None:
            with self._lock:
                record = self._cache[index]
                if record is None:
                    record = self._materialize(index)
                    self._cache[index] = record
        return record


def _global_id_maps(container: _Container, header: dict):
    """Validated (seg_of, local_of, weights, counts, globals) of a sharded
    container (the v2 single file, or the v3 manifest)."""
    n = header["triples"]
    num_segments = header.get("segments")
    sizes = header.get("segment_sizes")
    if (
        not isinstance(num_segments, int)
        or num_segments < 1
        or not isinstance(sizes, list)
        or len(sizes) != num_segments
        or not all(isinstance(size, int) and size >= 0 for size in sizes)
        or sum(sizes) != n
    ):
        raise PersistenceError("Corrupt snapshot: bad segmentation header")
    seg_of = container.ids("seg_of")
    local_of = container.ids("local_of")
    weights = container.doubles("weights")
    counts = container.ids("counts")
    if not (len(seg_of) == len(local_of) == len(weights) == len(counts) == n):
        raise PersistenceError(
            f"Header declares {n} triples but the global columns disagree"
        )
    globals_ = []
    for index in range(num_segments):
        seg_globals = container.ids(f"seg{index}:globals")
        if len(seg_globals) != sizes[index]:
            raise PersistenceError(
                f"Corrupt snapshot: segment {index} id map truncated"
            )
        globals_.append(seg_globals)
    return seg_of, local_of, weights, counts, globals_, sizes


def _assemble_store(container: _Container, backend) -> TripleStore:
    """Finish a load: lazy dictionary, lazy records, adopt the backend."""
    header = container.header
    n = header["triples"]
    confidences = container.doubles("confidence")
    if len(confidences) != n:
        raise PersistenceError(
            f"Header declares {n} triples but the confidence column disagrees"
        )
    # Terms are copied out of the mapping (one memcpy, still no parse): the
    # dictionary must stay decodable after close(), when the map is gone.
    terms_blob = bytes(container.view("terms"))
    prov_raw = container.view("prov")
    expected_terms = header["terms"]

    def populate_terms(dictionary: TermDictionary) -> None:
        try:
            encoded_terms = json.loads(terms_blob.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            raise PersistenceError(f"Corrupt snapshot metadata: {exc}") from exc
        for encoded in encoded_terms:
            TermDictionary.encode(dictionary, decode_term(encoded))
        if TermDictionary.__len__(dictionary) != expected_terms:
            raise PersistenceError(
                f"Header declares {expected_terms} terms but "
                f"{TermDictionary.__len__(dictionary)} were decoded"
            )

    dictionary = LazyTermDictionary(populate_terms)
    records = _SnapshotRecords(
        dictionary, backend, container.ids("counts"), confidences, prov_raw, n
    )
    weights = container.doubles("weights")
    return TripleStore._adopt_frozen(
        header.get("name", "XKG"), dictionary, records, None, backend, weights
    )


def load_snapshot(path: str | Path, *, map_file: bool = True) -> TripleStore:
    """Load a snapshot written by :func:`save_snapshot`.

    ``path`` may be a single-file snapshot (v1/v2) or a v3 snapshot
    *directory* — the layout is sniffed.  With ``map_file=True`` (the
    default) each file is ``mmap``-ed and every column and permutation
    array is a read-only memoryview over the mapped pages — the OS pages
    postings in on demand and shares them across processes.
    ``map_file=False`` reads the files into memory once instead (same
    views, private buffers); useful where mapping is unavailable.

    The returned store is **lazy**: records and the term dictionary decode
    on first use, and a segmented snapshot materialises each segment's
    posting structures only when a lookup touches it (or all in parallel
    via ``store.backend.load_segments(executor)``).  For a directory
    snapshot, touching a segment maps that segment's own file — and a
    missing or damaged segment file surfaces as :class:`~repro.errors.
    StorageError` at that point, not at open time.

    The mappings are owned by the returned store's backend: release them
    with ``store.close()`` (or the engine lifecycle — ``with
    TriniT.open(path)``), which releases every retained view and unmaps
    the files.
    """
    path = Path(path)
    if path.is_dir():
        return _load_snapshot_dir(path, map_file)
    container = _Container(path, map_file=map_file)
    try:
        kind = container.kind
        if kind != "store":
            raise PersistenceError(
                f"{path} is the {kind} container of a directory snapshot — "
                "load the directory instead"
            )
        header = container.header
        n = header["triples"]
        backend_kind = header.get("backend", "columnar")
        if backend_kind == "columnar":
            backend = container.restore_columnar("", n, own_buffer=True)
        elif backend_kind == "sharded":
            seg_of, local_of, weights, counts, globals_, sizes = _global_id_maps(
                container, header
            )

            def make_loader(index: int, length: int):
                def load() -> ColumnarBackend:
                    # The sharded composite owns the one shared mapping.
                    return container.restore_columnar(
                        f"seg{index}:", length, own_buffer=False
                    )

                return load

            backend = ShardedBackend._restore(
                seg_of=seg_of,
                local_of=local_of,
                weights=weights,
                counts=counts,
                globals_=globals_,
                segment_loaders=[
                    make_loader(index, sizes[index])
                    for index in range(len(sizes))
                ],
                buffer=container.buffer,
            )
        else:
            raise PersistenceError(f"Unknown snapshot backend {backend_kind!r}")
        return _assemble_store(container, backend)
    except Exception:
        container.discard()
        raise


def _load_snapshot_dir(path: Path, map_file: bool) -> TripleStore:
    """Load a v3 directory snapshot: manifest now, segment files on touch.

    ``path`` is the snapshot *root*: either a flat layout (containers
    directly inside it) or a generation layout (``CURRENT`` pointer naming
    the active ``generation-K`` subdirectory, written by compaction).
    """
    root, gen_dir, generation = resolve_generation(path)
    manifest_path = gen_dir / MANIFEST_NAME
    if not manifest_path.exists():
        raise PersistenceError(
            f"Not a snapshot directory (no {MANIFEST_NAME}): {gen_dir}"
        )
    manifest = _Container(manifest_path, map_file=map_file)
    try:
        header = manifest.header
        if manifest.kind != "manifest":
            raise PersistenceError(
                f"Corrupt directory snapshot: {MANIFEST_NAME} has kind "
                f"{manifest.kind!r}"
            )
        if header.get("backend") != "sharded":
            raise PersistenceError(
                f"Corrupt directory snapshot: backend "
                f"{header.get('backend')!r} is not sharded"
            )
        seg_of, local_of, weights, counts, globals_, sizes = _global_id_maps(
            manifest, header
        )
        segment_files = header.get("segment_files")
        if (
            not isinstance(segment_files, list)
            or len(segment_files) != len(sizes)
            or not all(isinstance(name, str) for name in segment_files)
        ):
            raise PersistenceError(
                "Corrupt directory snapshot: bad segment file table"
            )

        def make_loader(index: int, length: int, filename: str):
            def load() -> ColumnarBackend:
                segment = open_segment_container(
                    gen_dir, index, length, filename, map_file=map_file
                )
                try:
                    return segment.restore_columnar("", length, own_buffer=True)
                except Exception:
                    segment.discard()
                    raise

            return load

        backend = ShardedBackend._restore(
            seg_of=seg_of,
            local_of=local_of,
            weights=weights,
            counts=counts,
            globals_=globals_,
            segment_loaders=[
                make_loader(index, sizes[index], segment_files[index])
                for index in range(len(sizes))
            ],
            buffer=manifest.buffer,
            source_dir=str(gen_dir),
            snapshot_root=str(root),
            generation=generation,
        )
        return _assemble_store(manifest, backend)
    except Exception:
        manifest.discard()
        raise


def open_segment_container(
    directory: Path,
    index: int,
    length: int | None,
    filename: str | None = None,
    *,
    map_file: bool = True,
) -> _Container:
    """Map and validate one segment container of a directory snapshot.

    The entry point worker processes use to re-open exactly the segment
    files they own (:mod:`repro.storage.procpool`); the in-process lazy
    loaders go through it too.  A missing or mismatched file raises
    :class:`PersistenceError` (a :class:`~repro.errors.StorageError`).
    """
    directory = Path(directory)
    if filename is None:
        filename = segment_filename(index)
    segment_path = directory / filename
    if not segment_path.exists():
        raise PersistenceError(
            f"Directory snapshot is missing segment file {segment_path} "
            f"(expected segment {index})"
        )
    container = _Container(segment_path, map_file=map_file)
    try:
        if container.kind != "segment":
            raise PersistenceError(
                f"Corrupt directory snapshot: {segment_path} has kind "
                f"{container.kind!r}, expected a segment container"
            )
        if container.header.get("segment") != index:
            raise PersistenceError(
                f"Corrupt directory snapshot: {segment_path} claims segment "
                f"{container.header.get('segment')!r}, expected {index}"
            )
        if length is not None and container.header.get("triples") != length:
            raise PersistenceError(
                f"Corrupt directory snapshot: {segment_path} holds "
                f"{container.header.get('triples')!r} triples, manifest "
                f"declares {length} for segment {index}"
            )
    except Exception:
        container.discard()
        raise
    return container


def is_snapshot(path: str | Path) -> bool:
    """True if ``path`` is a snapshot: a container file starting with the
    snapshot magic, or a v3 directory holding a ``manifest.xkgsnap``
    (format sniffing)."""
    path = Path(path)
    if path.is_dir():
        try:
            _root, gen_dir, _generation = resolve_generation(path)
        except PersistenceError:
            return False
        path = gen_dir / MANIFEST_NAME
    try:
        with path.open("rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
