"""Binary columnar snapshots: persistence that maps the arrays, not rows.

The JSONL format (:mod:`repro.storage.persistence`) re-ingests every
statement on load — JSON parsing, dictionary re-encoding, backend inserts,
and a full freeze-time re-sort of every posting structure.  A snapshot
instead writes the frozen :class:`~repro.storage.columnar.ColumnarBackend`
state *as laid out in memory*:

* the s/p/o id columns, the weight column, and the counts column,
* the global scan permutation and the per-signature permutation arrays,
* the per-signature offset tables (key → posting range),
* the term dictionary (in id order) and the per-triple record metadata
  (exact binary confidences, counts, provenance samples).

Loading ``mmap``-s the file and exposes the permutation arrays and columns
as zero-copy read-only memoryviews directly over the mapped pages — no
re-ingestion, no re-freeze, and posting lists byte-identical to the store
the snapshot was written from.  Confidences and weights travel as binary
IEEE doubles, so reloaded scores are bit-exact, not round-tripped through
decimal text.

File layout (all integers little/big per the writing platform, recorded in
the header)::

    [ magic "XKGSNAP\\x01" ][ uint64 header offset ][ sections ... ][ header JSON ]

The header JSON carries the format name/version, store name, byte order,
item sizes, and a section table ``{name: [offset, length]}``.  Placing the
header *after* the sections keeps section offsets stable while the header
is being composed.
"""

from __future__ import annotations

import json
import mmap
import struct
import sys
from array import array
from pathlib import Path

from repro.core.triples import Triple
from repro.errors import PersistenceError
from repro.storage.columnar import ID_TYPECODE, ColumnarBackend
from repro.storage.dictionary import TermDictionary
from repro.storage.index import SIGNATURES
from repro.storage.store import StoredTriple, TripleStore
from repro.storage.termcodec import (
    decode_provenance,
    decode_term,
    encode_provenance,
    encode_term,
)

#: First bytes of every snapshot file; :func:`repro.storage.persistence.
#: load_store` sniffs it to dispatch between formats.
MAGIC = b"XKGSNAP\x01"
FORMAT_NAME = "trinit-xkg-snapshot"
FORMAT_VERSION = 1

WEIGHT_TYPECODE = "d"
_ALIGN = 8
_OFFSET_STRUCT = struct.Struct("<Q")


def _sig_key(sig: tuple[int, ...]) -> str:
    return "".join(str(slot) for slot in sig)


def _column_bytes(column) -> bytes:
    """Raw bytes of a column, whether a live array or a restored memoryview."""
    return column.tobytes()


def save_snapshot(store: TripleStore, path: str | Path) -> int:
    """Write ``store``'s frozen columnar state to ``path``; returns bytes written.

    The store must be frozen (snapshots capture posting structures, which
    only exist after freeze) and on the "columnar" backend — convert other
    backends first (``store.convert("columnar")``).
    """
    if not store.is_frozen:
        raise PersistenceError("Only frozen stores can be snapshotted")
    backend = store.backend
    if not isinstance(backend, ColumnarBackend):
        raise PersistenceError(
            f"Snapshots require the columnar backend, not {store.backend_name!r}"
            ' — use store.convert("columnar") first'
        )
    path = Path(path)

    records = list(store.records())
    sections: dict[str, bytes] = {}
    sections["terms"] = json.dumps(
        [encode_term(term) for term in store.dictionary], ensure_ascii=False
    ).encode("utf-8")
    sections["prov"] = json.dumps(
        [[encode_provenance(p) for p in record.provenances] for record in records],
        ensure_ascii=False,
    ).encode("utf-8")
    sections["confidence"] = array(
        WEIGHT_TYPECODE, [record.confidence for record in records]
    ).tobytes()
    sections["counts"] = _column_bytes(backend._counts)
    sections["col:s"] = _column_bytes(backend._s)
    sections["col:p"] = _column_bytes(backend._p)
    sections["col:o"] = _column_bytes(backend._o)
    sections["weights"] = _column_bytes(backend._weights)
    sections["scan"] = bytes(backend._scan_view)
    for sig in SIGNATURES:
        key = _sig_key(sig)
        sections[f"perm:{key}"] = bytes(backend._perm_views[sig])
        flat = array(ID_TYPECODE)
        for group_key, (start, stop) in backend._offsets[sig].items():
            flat.extend(group_key)
            flat.append(start)
            flat.append(stop)
        sections[f"offsets:{key}"] = flat.tobytes()

    table: dict[str, list[int]] = {}
    with path.open("wb") as handle:
        handle.write(MAGIC)
        handle.write(_OFFSET_STRUCT.pack(0))  # header offset, patched below
        position = len(MAGIC) + _OFFSET_STRUCT.size
        for name, payload in sections.items():
            if position % _ALIGN:
                padding = _ALIGN - position % _ALIGN
                handle.write(b"\x00" * padding)
                position += padding
            table[name] = [position, len(payload)]
            handle.write(payload)
            position += len(payload)
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": store.name,
            "triples": len(store),
            "terms": len(store.dictionary),
            "byteorder": sys.byteorder,
            "id_itemsize": array(ID_TYPECODE).itemsize,
            "weight_itemsize": array(WEIGHT_TYPECODE).itemsize,
            "signatures": [_sig_key(sig) for sig in SIGNATURES],
            "sections": table,
        }
        header_offset = position
        handle.write(json.dumps(header, ensure_ascii=False).encode("utf-8"))
        total = handle.tell()
        handle.seek(len(MAGIC))
        handle.write(_OFFSET_STRUCT.pack(header_offset))
    return total


def _read_header(base: memoryview) -> dict:
    if bytes(base[: len(MAGIC)]) != MAGIC:
        raise PersistenceError("Not a snapshot file (bad magic)")
    (header_offset,) = _OFFSET_STRUCT.unpack_from(base, len(MAGIC))
    if not len(MAGIC) + _OFFSET_STRUCT.size <= header_offset <= len(base):
        raise PersistenceError("Corrupt snapshot: header offset out of range")
    try:
        header = json.loads(bytes(base[header_offset:]).decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise PersistenceError(f"Corrupt snapshot header: {exc}") from exc
    if header.get("format") != FORMAT_NAME:
        raise PersistenceError(
            f"Not a {FORMAT_NAME} file: format={header.get('format')!r}"
        )
    if header.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            f"Unsupported snapshot version: {header.get('version')!r}"
        )
    if header.get("byteorder") != sys.byteorder:
        raise PersistenceError(
            f"Snapshot written on a {header.get('byteorder')}-endian platform "
            f"cannot be mapped on a {sys.byteorder}-endian one"
        )
    if header.get("id_itemsize") != array(ID_TYPECODE).itemsize:
        raise PersistenceError(
            f"Snapshot id itemsize {header.get('id_itemsize')} does not match "
            f"this platform's {array(ID_TYPECODE).itemsize}"
        )
    if header.get("weight_itemsize") != array(WEIGHT_TYPECODE).itemsize:
        raise PersistenceError(
            f"Snapshot weight itemsize {header.get('weight_itemsize')} does "
            f"not match this platform's {array(WEIGHT_TYPECODE).itemsize}"
        )
    return header


def load_snapshot(path: str | Path, *, map_file: bool = True) -> TripleStore:
    """Load a snapshot written by :func:`save_snapshot`.

    With ``map_file=True`` (the default) the file is ``mmap``-ed and every
    column and permutation array is a read-only memoryview over the mapped
    pages — the OS pages postings in on demand and shares them across
    processes.  ``map_file=False`` reads the file into memory once instead
    (same views, private buffer); useful where mapping is unavailable.

    The mapping is owned by the returned store's backend: release it with
    ``store.close()`` (or the engine lifecycle — ``with TriniT.open(path)``),
    which releases every retained view and unmaps the file.
    """
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"No such file: {path}")
    if map_file:
        with path.open("rb") as handle:
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    else:
        buffer = path.read_bytes()
    base = memoryview(buffer)
    header = _read_header(base)
    sections = header["sections"]

    def view(name: str) -> memoryview:
        entry = sections.get(name)
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not all(isinstance(v, int) for v in entry)
        ):
            raise PersistenceError(f"Snapshot is missing section {name!r}")
        offset, length = entry
        if offset < 0 or length < 0 or offset + length > len(base):
            raise PersistenceError(f"Corrupt snapshot: section {name!r} truncated")
        return base[offset : offset + length]

    def cast(name: str, typecode: str) -> memoryview:
        raw = view(name)
        itemsize = array(typecode).itemsize
        if len(raw) % itemsize:
            raise PersistenceError(
                f"Corrupt snapshot: section {name!r} is not a whole number "
                f"of {itemsize}-byte items"
            )
        return raw.cast(typecode)

    def ids(name: str) -> memoryview:
        return cast(name, ID_TYPECODE)

    def doubles(name: str) -> memoryview:
        return cast(name, WEIGHT_TYPECODE)

    n = header["triples"]
    col_s, col_p, col_o = ids("col:s"), ids("col:p"), ids("col:o")
    weights = doubles("weights")
    counts = ids("counts")
    confidences = doubles("confidence")
    if not (
        len(col_s) == len(col_p) == len(col_o) == len(weights)
        == len(counts) == len(confidences) == n
    ):
        raise PersistenceError(
            f"Header declares {n} triples but the columns disagree"
        )

    if header.get("signatures") != [_sig_key(sig) for sig in SIGNATURES]:
        raise PersistenceError("Snapshot signature set does not match this build")
    perm_views: dict[tuple[int, ...], memoryview] = {}
    offsets: dict[tuple[int, ...], dict[tuple[int, ...], tuple[int, int]]] = {}
    for sig in SIGNATURES:
        key = _sig_key(sig)
        perm = ids(f"perm:{key}")
        if len(perm) != n:
            raise PersistenceError(
                f"Corrupt snapshot: permutation {key} has {len(perm)} entries, "
                f"expected {n}"
            )
        perm_views[sig] = perm
        flat = ids(f"offsets:{key}")
        arity = len(sig)
        stride = arity + 2
        if len(flat) % stride:
            raise PersistenceError(f"Corrupt snapshot: offset table {key}")
        table: dict[tuple[int, ...], tuple[int, int]] = {}
        for i in range(0, len(flat), stride):
            table[tuple(flat[i : i + arity])] = (
                flat[i + arity],
                flat[i + arity + 1],
            )
        offsets[sig] = table
    scan = ids("scan")
    if len(scan) != n:
        raise PersistenceError("Corrupt snapshot: scan permutation truncated")

    dictionary = TermDictionary()
    try:
        encoded_terms = json.loads(bytes(view("terms")).decode("utf-8"))
        prov_lists = json.loads(bytes(view("prov")).decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise PersistenceError(f"Corrupt snapshot metadata: {exc}") from exc
    for encoded in encoded_terms:
        dictionary.encode(decode_term(encoded))
    if len(dictionary) != header["terms"]:
        raise PersistenceError(
            f"Header declares {header['terms']} terms but "
            f"{len(dictionary)} were decoded"
        )
    if len(prov_lists) != n:
        raise PersistenceError("Corrupt snapshot: provenance table truncated")

    backend = ColumnarBackend._restore(
        s=col_s,
        p=col_p,
        o=col_o,
        weights=weights,
        counts=counts,
        scan_view=scan,
        perm_views=perm_views,
        offsets=offsets,
        buffer=buffer,
    )

    decode = dictionary.decode
    records: list[StoredTriple] = []
    by_key: dict[tuple[int, int, int], int] = {}
    for tid in range(n):
        key = (col_s[tid], col_p[tid], col_o[tid])
        triple = Triple(decode(key[0]), decode(key[1]), decode(key[2]))
        record = StoredTriple(triple, counts[tid], confidences[tid], [])
        for encoded in prov_lists[tid]:
            record.add_provenance(decode_provenance(encoded))
        records.append(record)
        by_key[key] = tid

    return TripleStore._adopt_frozen(
        header.get("name", "XKG"), dictionary, records, by_key, backend, weights
    )


def is_snapshot(path: str | Path) -> bool:
    """True if ``path`` starts with the snapshot magic (format sniffing)."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
