"""Mutable delta segment: the live write path over a frozen store.

The storage stack is freeze-once by construction — posting lists are
permutations computed at :meth:`~repro.storage.store.TripleStore.freeze`
time.  This module breaks that assumption the LSM way: a *delta segment*
is a small, mutable, in-memory segment that absorbs live additions while
the frozen segments keep serving reads untouched.  Delta triples get
**global ids densely above the frozen id space** (``gid = base + local``),
so the global sort key ``(-weight, gid)`` every backend freezes with
extends naturally: merging the frozen posting lists with the delta's
produces exactly the posting order a fresh freeze over the union would —
the byte-identity invariant parallel execution is property-tested against.

Reads hand out **immutable snapshots**: :meth:`DeltaSegment.posting_part`
returns a :class:`DeltaPart` whose posting order and weights are fixed at
capture time (weights are snapshot per delta *version*), so a k-way merge
or a prefetching thread can keep consuming a part while concurrent
``add_all`` calls grow the delta — later additions simply aren't in that
part.  Mutations are serialised by an internal lock; every mutation bumps
``version``, invalidating the per-``(signature, key)`` part cache.

The delta never crosses a process boundary: :class:`~repro.storage.
sharded.MergedPostings` prepares delta heads inline (or on the thread
pool) even when the frozen segments are served by worker processes.
Deltas are folded into frozen columnar segments by background compaction
(:mod:`repro.storage.compaction`).
"""

from __future__ import annotations

import threading
from typing import NamedTuple, Sequence

from repro.errors import StorageError
from repro.storage.index import signature_of

#: Per-(signature, key) posting snapshots cached on the delta; cleared
#: wholesale past this size so a scan-heavy workload over a long-lived
#: delta cannot grow the cache without bound.
_PART_CACHE_LIMIT = 256


class DeltaPart(NamedTuple):
    """One lookup's immutable slice of the delta, merge-ready.

    ``postings`` are delta-local positions in (weight desc, gid asc)
    order; ``globals_`` maps local position -> global triple id;
    ``weights`` is a *snapshot* indexed by global id, frozen at the delta
    version the part was captured at — a merge that ordered its heap by
    these keys stays internally consistent even if the live delta is
    updated mid-merge.
    """

    postings: Sequence[int]
    globals_: Sequence[int]
    weights: "_DeltaWeights"


class _DeltaWeights:
    """Immutable gid-indexed weight view over one delta version."""

    __slots__ = ("_base", "_weights")

    def __init__(self, base: int, weights: tuple[float, ...]):
        self._base = base
        self._weights = weights

    def __getitem__(self, gid: int) -> float:
        return self._weights[gid - self._base]

    def __len__(self) -> int:
        return len(self._weights)


class DeltaSegment:
    """Mutable in-memory segment holding live additions above ``base``.

    ``base`` is the size of the frozen id space the delta sits on top of;
    the delta's global ids are ``base, base + 1, ...`` in insertion order.
    The segment stores the per-triple ``(s, p, o)`` term ids, the sort
    weight and the observation count — everything the posting merge and
    the id-space accessors need; the full :class:`~repro.storage.store.
    StoredTriple` records stay with the store.
    """

    def __init__(self, base: int):
        if base < 0:
            raise StorageError(f"Delta base must be >= 0, got {base}")
        self._base = base
        self._slots: list[tuple[int, int, int]] = []
        self._weights: list[float] = []
        self._counts: list[int] = []
        self._globals: list[int] = []
        self._version = 0
        self._lock = threading.RLock()
        # (sig, key) -> (version, DeltaPart | None)
        self._part_cache: dict = {}
        self._weights_snapshot: tuple[int, _DeltaWeights] | None = None

    @property
    def base(self) -> int:
        """First global id owned by the delta (= frozen store size)."""
        return self._base

    @property
    def version(self) -> int:
        """Mutation counter; bumped by every :meth:`add` / :meth:`update`."""
        with self._lock:
            return self._version

    def __len__(self) -> int:
        return len(self._slots)

    # -- mutation ----------------------------------------------------------

    def add(
        self,
        gid: int,
        slot_ids: tuple[int, int, int],
        weight: float,
        count: int,
    ) -> None:
        """Absorb one new triple.  Ids must arrive densely above ``base``."""
        with self._lock:
            expected = self._base + len(self._slots)
            if gid != expected:
                raise StorageError(
                    f"Delta ids must be dense: expected {expected}, got {gid}"
                )
            self._slots.append(tuple(slot_ids))
            self._weights.append(weight)
            self._counts.append(count)
            self._globals.append(gid)
            self._version += 1

    def update(self, gid: int, weight: float, count: int) -> None:
        """Re-weigh an existing delta triple (duplicate evidence arrived)."""
        with self._lock:
            local = gid - self._base
            if not 0 <= local < len(self._slots):
                raise StorageError(f"Unknown delta triple id: {gid}")
            self._weights[local] = weight
            self._counts[local] = count
            self._version += 1

    # -- id-space accessors ------------------------------------------------

    def _local(self, gid: int) -> int:
        local = gid - self._base
        if not 0 <= local < len(self._slots):
            raise StorageError(f"Unknown triple id: {gid}")
        return local

    def slot_ids(self, gid: int) -> tuple[int, int, int]:
        return self._slots[self._local(gid)]

    def weight(self, gid: int) -> float:
        with self._lock:
            return self._weights[self._local(gid)]

    def count(self, gid: int) -> int:
        with self._lock:
            return self._counts[self._local(gid)]

    # -- lookup ------------------------------------------------------------

    def _weights_view(self) -> _DeltaWeights:
        with self._lock:
            snapshot = self._weights_snapshot
            if snapshot is None or snapshot[0] != self._version:
                snapshot = (
                    self._version,
                    _DeltaWeights(self._base, tuple(self._weights)),
                )
                self._weights_snapshot = snapshot
            return snapshot[1]

    def posting_part(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> DeltaPart | None:
        """Immutable merge-ready snapshot for one lookup; None when empty.

        Local postings are sorted by ``(-weight, local)`` which equals the
        global ``(-weight, gid)`` order since ``gid = base + local`` is
        monotone in ``local``.
        """
        sig = signature_of(bound_slots)
        if sig and len(key) != len(sig):
            raise StorageError(
                f"Key arity {len(key)} does not match signature {sig}"
            )
        with self._lock:
            if not self._slots:
                return None
            cache_key = (sig, tuple(key))
            cached = self._part_cache.get(cache_key)
            if cached is not None and cached[0] == self._version:
                return cached[1]
            weights = self._weights
            matches = [
                local
                for local, spo in enumerate(self._slots)
                if all(spo[slot] == key[i] for i, slot in enumerate(sig))
            ]
            if matches:
                matches.sort(key=lambda local: (-weights[local], local))
                part = DeltaPart(
                    tuple(matches), tuple(self._globals), self._weights_view()
                )
            else:
                part = None
            if len(self._part_cache) >= _PART_CACHE_LIMIT:
                self._part_cache.clear()
            self._part_cache[cache_key] = (self._version, part)
            return part

    def distinct_keys(self, bound_slots: Sequence[bool]) -> list[tuple[int, ...]]:
        """Distinct keys under the signature, first-occurrence order."""
        sig = signature_of(bound_slots)
        if not sig:
            raise StorageError("The scan signature has no keys")
        with self._lock:
            seen: dict[tuple[int, ...], None] = {}
            for spo in self._slots:
                seen[tuple(spo[slot] for slot in sig)] = None
            return list(seen)


def overlay_postings(
    base: Sequence[int],
    frozen_n: int,
    weights,
    delta: DeltaSegment,
    bound_slots: Sequence[bool],
    key: tuple[int, ...],
) -> Sequence[int]:
    """Merge a monolithic backend's frozen posting list with the delta's.

    The single-segment backends (dict, columnar) reuse the sharded k-way
    merge with exactly two streams: the frozen list (identity id map over
    ``range(frozen_n)``) and the delta part — no executor, no batching,
    so the overlay stays the item-at-a-time serial reference.  When the
    delta has no matches the frozen list is returned untouched (zero
    overhead on the hot path).
    """
    part = delta.posting_part(bound_slots, key)
    if part is None:
        return base
    # Imported here: sharded.py imports columnar.py which imports this
    # module — a top-level import would cycle.
    from repro.storage.sharded import MergedPostings

    parts: list[tuple[Sequence[int], Sequence[int]]] = []
    if len(base):
        parts.append((base, range(frozen_n)))
    return MergedPostings(
        parts,
        weights,
        len(base) + len(part.postings),
        executor=None,
        batch=None,
        delta=part,
    )
