"""Segmented composite backend: hash-partitioned columnar shards.

The paper's system served its XKG from a sharded ElasticSearch index; this
backend reproduces the shape behind the same :class:`~repro.storage.backend.
StorageBackend` protocol.  Triples are hash-partitioned by their (s, p, o)
term ids across N inner :class:`~repro.storage.columnar.ColumnarBackend`
segments; each segment freezes its own permutation arrays over *local* ids,
and a thin global layer keeps the id translation (global → segment/local,
segment/local → global) plus the global weight and count columns.

``postings()`` answers with a **lazy k-way heap merge** of the segments'
score-sorted lists: segment heads are compared by (weight desc, global id
asc) — exactly the global sort key the single-segment backends freeze with —
so the merged stream is element-identical to a columnar posting list, while
only the consumed prefix is ever materialised.  The id-space execution core
runs over a partitioned store unchanged.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Iterator, Sequence

from repro.errors import StorageError
from repro.storage.columnar import ID_TYPECODE, ColumnarBackend
from repro.storage.index import signature_of

_EMPTY: tuple[int, ...] = ()

#: Segment count used when the backend is built by registry name.
DEFAULT_SEGMENTS = 4


class MergedPostings:
    """Immutable posting sequence materialised lazily from a merge stream.

    Length is known up front (each global id lives in exactly one segment,
    so the merged length is the sum of the part lengths); items are pulled
    from the heap merge only as far as callers index or iterate.  Cursors
    that abandon a posting list after a few sorted accesses never pay for
    the full merge.
    """

    __slots__ = ("_items", "_source", "_length")

    def __init__(self, source: Iterator[int], length: int):
        self._items = array(ID_TYPECODE)
        self._source: Iterator[int] | None = source
        self._length = length

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    @property
    def materialized(self) -> int:
        """How many items have been pulled from the merge so far (tests)."""
        return len(self._items)

    def _fill(self, needed: int) -> None:
        items, source = self._items, self._source
        if source is None:
            return
        while len(items) < needed:
            head = next(source, None)
            if head is None:
                self._source = None
                return
            items.append(head)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            self._fill(start + 1 if step < 0 else stop)
            return tuple(self._items[start:stop:step])
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"Posting index out of range: {index}")
        self._fill(index + 1)
        return self._items[index]

    def __iter__(self) -> Iterator[int]:
        position = 0
        while position < self._length:
            if position >= len(self._items):
                self._fill(position + 1)
                if position >= len(self._items):
                    return
            yield self._items[position]
            position += 1

    def __contains__(self, value: object) -> bool:
        return any(item == value for item in self)


class ShardedBackend:
    """Hash-partitioned composite of N columnar segments."""

    name = "sharded"

    def __init__(self, num_segments: int = DEFAULT_SEGMENTS):
        if num_segments < 1:
            raise StorageError(f"Need at least one segment, got {num_segments}")
        self._segments = [ColumnarBackend() for _ in range(num_segments)]
        # Global triple id -> owning segment / local id within it.
        self._seg_of = array(ID_TYPECODE)
        self._local_of = array(ID_TYPECODE)
        # Per segment: local id -> global id (ascending, since globals
        # arrive densely — which keeps local posting order equal to global
        # (weight desc, id asc) order within each segment).
        self._globals = [array(ID_TYPECODE) for _ in range(num_segments)]
        self._weights = array("d")
        self._counts = array(ID_TYPECODE)
        self._frozen = False
        self._closed = False

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every segment and drop the global id maps.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for segment in self._segments:
            segment.close()
        self._seg_of = _CLOSED
        self._local_of = _CLOSED
        self._weights = _CLOSED
        self._counts = _CLOSED
        self._globals = [_CLOSED] * len(self._globals)

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def __len__(self) -> int:
        return len(self._seg_of)

    def segment_sizes(self) -> list[int]:
        """Triples per segment (introspection and partitioning tests)."""
        return [len(globals_) for globals_ in self._globals]

    # -- build phase ------------------------------------------------------------

    def _place(self, slot_ids: tuple[int, int, int]) -> int:
        """Deterministic hash partition over the (s, p, o) term ids."""
        s, p, o = slot_ids
        return ((s * 2654435761 + p * 40503 + o) & 0x7FFFFFFF) % len(
            self._segments
        )

    def insert(self, triple_id: int, slot_ids: tuple[int, int, int]) -> None:
        if self._frozen:
            raise StorageError("Cannot insert into a frozen backend")
        if triple_id != len(self._seg_of):
            raise StorageError(
                f"Triple ids must be dense: expected {len(self._seg_of)}, "
                f"got {triple_id}"
            )
        segment_index = self._place(slot_ids)
        globals_ = self._globals[segment_index]
        local_id = len(globals_)
        self._segments[segment_index].insert(local_id, slot_ids)
        globals_.append(triple_id)
        self._seg_of.append(segment_index)
        self._local_of.append(local_id)

    def freeze(
        self, weights: Sequence[float], counts: Sequence[int] | None = None
    ) -> None:
        if self._frozen:
            raise StorageError("Backend already frozen")
        n = len(self._seg_of)
        if len(weights) != n:
            raise StorageError(f"{n} triples but {len(weights)} weights")
        self._weights = array("d", weights)
        if counts is not None:
            if len(counts) != n:
                raise StorageError(f"{n} triples but {len(counts)} counts")
            self._counts = array(ID_TYPECODE, counts)
        for segment_index, segment in enumerate(self._segments):
            globals_ = self._globals[segment_index]
            local_weights = [self._weights[g] for g in globals_]
            local_counts = (
                [self._counts[g] for g in globals_] if counts is not None else None
            )
            segment.freeze(local_weights, local_counts)
        self._frozen = True

    # -- lookup ------------------------------------------------------------

    def _merge(
        self, parts: list[tuple[Sequence[int], array]]
    ) -> Iterator[int]:
        """Lazy k-way heap merge of per-segment postings, in global sort order.

        Each part yields local ids in (weight desc, local id asc) order;
        locals map to globals monotonically, so every mapped stream is
        already sorted by (-weight, global id) and ``heapq.merge`` over that
        key reproduces the exact single-segment order.
        """
        weights = self._weights
        # map() binds each part's globals_ eagerly (a lazy genexp here would
        # close over the loop variable and read the last part's map).
        streams = [
            map(globals_.__getitem__, postings) for postings, globals_ in parts
        ]
        return heapq.merge(
            *streams, key=lambda global_id: (-weights[global_id], global_id)
        )

    def postings(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> Sequence[int]:
        if self._closed:
            raise StorageError("Storage backend is closed")
        if not self._frozen:
            raise StorageError("Backend must be frozen before lookup")
        sig = signature_of(bound_slots)
        if sig and len(key) != len(sig):
            raise StorageError(
                f"Key arity {len(key)} does not match signature {sig}"
            )
        parts: list[tuple[Sequence[int], array]] = []
        total = 0
        for segment_index, segment in enumerate(self._segments):
            postings = segment.postings(bound_slots, key)
            if len(postings):
                parts.append((postings, self._globals[segment_index]))
                total += len(postings)
        if not total:
            return _EMPTY
        return MergedPostings(self._merge(parts), total)

    def distinct_keys(self, bound_slots: Sequence[bool]) -> list[tuple[int, ...]]:
        if self._closed:
            raise StorageError("Storage backend is closed")
        if not self._frozen:
            raise StorageError("Backend must be frozen before lookup")
        sig = signature_of(bound_slots)
        if not sig:
            raise StorageError("The scan signature has no keys")
        # Walk global ids so keys come out in first-occurrence order — the
        # same order the single-segment backends produce.
        seen: dict[tuple[int, ...], None] = {}
        for triple_id in range(len(self._seg_of)):
            spo = self.slot_ids(triple_id)
            seen[tuple(spo[slot] for slot in sig)] = None
        return list(seen)

    def slot_ids(self, triple_id: int) -> tuple[int, int, int]:
        return self._segments[self._seg_of[triple_id]].slot_ids(
            self._local_of[triple_id]
        )

    def weight(self, triple_id: int) -> float:
        return self._weights[triple_id]

    def count(self, triple_id: int) -> int:
        if not 0 <= triple_id < len(self._seg_of):
            raise StorageError(f"Unknown triple id: {triple_id}")
        if len(self._counts) != len(self._seg_of):
            raise StorageError("Backend was frozen without a counts column")
        return self._counts[triple_id]

    # -- introspection ------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate resident bytes across all segments + the id maps."""
        import sys

        total = sum(segment.memory_bytes() for segment in self._segments)
        total += sum(
            sys.getsizeof(column)
            for column in (self._seg_of, self._local_of, self._weights, self._counts)
        )
        total += sum(sys.getsizeof(globals_) for globals_ in self._globals)
        return total


# Register under "sharded" without importing repro.storage.backend at module
# top level (backend.py imports this module at its bottom).
from repro.storage.backend import _CLOSED, register_backend  # noqa: E402

register_backend(ShardedBackend)
