"""Segmented composite backend: hash-partitioned columnar shards.

The paper's system served its XKG from a sharded ElasticSearch index; this
backend reproduces the shape behind the same :class:`~repro.storage.backend.
StorageBackend` protocol.  Triples are hash-partitioned by their (s, p, o)
term ids across N inner :class:`~repro.storage.columnar.ColumnarBackend`
segments; each segment freezes its own permutation arrays over *local* ids,
and a thin global layer keeps the id translation (global → segment/local,
segment/local → global) plus the global weight and count columns.

``postings()`` answers with a **lazy k-way merge** of the segments'
score-sorted lists: segment heads are compared by (weight desc, global id
asc) — exactly the global sort key the single-segment backends freeze with —
so the merged stream is element-identical to a columnar posting list, while
only the consumed prefix is ever materialised.  The merge pulls each
segment's heads as pre-keyed **blocks** — two parallel ``(-weight, global
id)`` columns built by C-speed gathers (:func:`repro.topk.kernels.
prepare_head_block`) instead of per-head tuple lists — and
:meth:`configure_prefetch` can point it at a shared executor so the next
block of every segment is prepared concurrently while the consumer drains
the current one.  :meth:`configure_block_cache` additionally attaches the
engine-owned :class:`~repro.topk.kernels.HotBlockCache`, so the front
blocks Zipfian traffic hammers are decoded once and served from memory
(delta blocks are never cached — the mutable segment changes under live
ingestion).  Batch sizing is
either fixed or **adaptive** (``batch=None``): each merge starts small and
doubles its per-segment pull as the consumer keeps draining, so one-head
rewriting probes stay cheap while deep drains converge to amortised bulk
pulls — the controller state is per merge instance, i.e. per query.  With
``batch_size=1`` and no executor the merge degenerates to the item-at-a-time
serial pull — the byte-identical reference that parallel execution is
property-tested against.  The id-space execution core runs over a
partitioned store unchanged.

The executor can be a thread pool (prefetch overlaps I/O, still GIL-bound)
or a :class:`~concurrent.futures.ProcessPoolExecutor` over a **directory
snapshot** — then batch preparation runs in worker processes against their
own copy-on-write mappings of the segment files (:mod:`repro.storage.
procpool`), and only tiny ``(lo, hi)`` requests and prepared head lists
cross the process boundary.  Emitted order is identical in every mode.

Snapshot-restored backends (:mod:`repro.storage.snapshot` formats v2/v3)
keep their segmentation: each segment's columns arrive as a lazy loader
over the mapped file(s), materialised on first touch — or all at once, in
parallel, via :meth:`load_segments`.
"""

from __future__ import annotations

import heapq
import threading
from array import array
from concurrent.futures import CancelledError, Executor, ProcessPoolExecutor
from typing import Callable, Sequence

from repro.errors import StorageError
from repro.storage.columnar import ID_TYPECODE, ColumnarBackend
from repro.storage.index import signature_of
from repro.storage.procpool import prepare_heads

_EMPTY: tuple[int, ...] = ()

#: Lazily-imported kernel module (repro.topk.kernels imports nothing from
#: the storage layer, but importing it at module top level here would run
#: repro.topk's package init mid-way through the storage imports).
_kernels = None


def _kernel_module():
    global _kernels
    if _kernels is None:
        from repro.topk import kernels

        _kernels = kernels
    return _kernels

#: Segment count used when the backend is built by registry name.
DEFAULT_SEGMENTS = 4

#: Heads pulled per segment per batch when no explicit prefetch
#: configuration was supplied (``EngineConfig.merge_batch`` overrides).
DEFAULT_MERGE_BATCH = 64

#: Adaptive merge batching (``batch=None``): per-merge slow start.  A fresh
#: merge prepares this many heads per segment, and every further full-depth
#: demand pull doubles the granularity up to the ceiling — so rewriting
#: probes that peek one head stay cheap while queries that actually drain a
#: posting list converge to large, amortised pulls.  The state lives on the
#: :class:`MergedPostings` instance, i.e. per lookup per query: concurrent
#: queries adapt independently and cannot clobber each other.
ADAPTIVE_INITIAL_BATCH = 8
ADAPTIVE_MAX_BATCH = 1024

#: Smallest batch worth shipping to a *process* pool.  A remote preparation
#: pays pickling plus a queue round trip (~hundreds of microseconds); below
#: this many heads the consuming thread prepares the range inline faster
#: than it could post the request.  With adaptive sizing this means a merge
#: escapes to worker processes exactly when its drain depth has proven the
#: demand — short probes never leave the process.
REMOTE_MIN_BATCH = 64


class _SegmentStream:
    """One segment's contribution to a merge: postings plus the id map.

    ``prepare_block`` translates the ``[lo, hi)`` local posting ids into a
    pre-keyed head block — parallel ``(-weight, global id)`` columns — in
    one pass of C-speed gathers; that block is the unit of work an
    executor runs ahead of the consumer, and the unit the hot-block cache
    stores.  ``kw``/``kg`` hold the current block, ``index`` the consumed
    prefix.  Ranges are *claimed* (``position`` advanced, the range parked
    in ``inflight``) before the work is placed, on the consuming thread,
    so at most one range per stream is ever outstanding and no lock is
    needed; whoever delivers the claimed range — prefetch worker, cache,
    or inline fallback — produces the same block.
    """

    __slots__ = ("postings", "globals_", "segment_index", "position", "kw",
                 "kg", "index", "future", "inflight", "weights", "is_delta")

    def __init__(
        self,
        postings: Sequence[int],
        globals_: Sequence[int],
        weights=None,
        is_delta: bool = False,
    ):
        self.postings = postings
        self.globals_ = globals_
        self.segment_index = 0
        self.position = 0
        # Current head block: -weight merge keys and global ids, parallel.
        self.kw: Sequence[float] = ()
        self.kg: Sequence[int] = ()
        self.index = 0
        self.future = None
        self.inflight: tuple[int, int] | None = None
        # Per-stream weight override: the mutable delta segment carries its
        # own immutable weight snapshot (frozen weights columns don't cover
        # delta ids).  None means "use the merge-level weights".
        self.weights = weights
        self.is_delta = is_delta

    def claim(self, batch: int) -> tuple[int, int]:
        lo = self.position
        hi = min(lo + batch, len(self.postings))
        self.position = hi
        self.inflight = (lo, hi)
        return lo, hi

    def prepare_block(self, weights, lo: int, hi: int):
        if self.weights is not None:
            weights = self.weights
        return _kernel_module().prepare_head_block(
            self.postings, self.globals_, weights, lo, hi
        )


class _RemoteSpec:
    """Address of one lookup for process-pool workers: which directory
    snapshot, and which (bound-slot mask, key) lookup to re-run there.
    Everything a :func:`repro.storage.procpool.prepare_heads` request needs
    besides the segment index and posting range."""

    __slots__ = ("directory", "bound_slots", "key")

    def __init__(
        self, directory: str, bound_slots: tuple[bool, ...], key: tuple[int, ...]
    ):
        self.directory = directory
        self.bound_slots = bound_slots
        self.key = key


class _CachedBlock:
    """Future-like wrapper around a cache-served head block.

    Lets a cache hit flow through the same ``stream.future`` slot as an
    executor submission: :meth:`cancel` refuses (the block is already
    here), :meth:`result` hands it over.  ``_refill`` recognises the type
    to count the hit.
    """

    __slots__ = ("_block",)

    def __init__(self, block):
        self._block = block

    def cancel(self) -> bool:
        return False

    def result(self):
        return self._block


class MergedPostings:
    """Immutable posting sequence materialised lazily from a segment merge.

    Length is known up front (each global id lives in exactly one segment,
    so the merged length is the sum of the part lengths); items are pulled
    from the k-way merge only as far as callers index, iterate, or
    :meth:`pull`.  Cursors that abandon a posting list after a few sorted
    accesses never pay for the full merge.

    Segment heads are prepared in batches of ``batch`` pre-keyed entries;
    ``batch=None`` selects **adaptive** sizing (slow start per merge, see
    :data:`ADAPTIVE_INITIAL_BATCH`).  When ``executor`` is set, one batch
    per segment is kept in flight while the merge drains (double
    buffering), so concurrent posting pulls overlap the consumer's own
    work; a thread executor additionally prefetches every segment's first
    batch at construction.  With ``remote`` set (a :class:`_RemoteSpec`,
    executor a process pool over a directory snapshot), batches are
    prepared in worker processes against their own segment mappings —
    construction then skips the eager first-batch round trip, and ranges
    below :data:`REMOTE_MIN_BATCH` heads are prepared inline, so one-head
    probes and shallow drains never pay IPC.  The emitted order is deterministic and
    independent of executor timing and batch sizing: the heap compares
    ``(-weight, global id)`` and global ids are unique.

    ``delta`` adds the store's mutable delta segment as one more stream:
    a ``(postings, globals_, weights)`` snapshot (:class:`~repro.storage.
    delta.DeltaPart`) whose per-stream weight view covers the delta ids the
    merge-level weights column doesn't.  Delta heads are always prepared
    in-process (the delta lives in this process's memory, workers can't
    map it), and :attr:`delta_emitted` counts how many merged items came
    from it — the source of ``QueryStats.delta_hits``.
    """

    __slots__ = ("_items", "_streams", "_weights", "_length", "_heap",
                 "_executor", "_batch", "_adaptive", "_remote",
                 "_has_delta", "_delta_emitted", "_cache", "_cache_base",
                 "_cache_hits")

    def __init__(
        self,
        parts: list[tuple[Sequence[int], Sequence[int]]],
        weights,
        length: int,
        *,
        executor: Executor | None = None,
        batch: int | None = DEFAULT_MERGE_BATCH,
        remote: "_RemoteSpec | None" = None,
        segment_indices: Sequence[int] | None = None,
        delta=None,
        cache=None,
        cache_base: tuple | None = None,
    ):
        self._items = array(ID_TYPECODE)
        self._streams = [_SegmentStream(p, g) for p, g in parts]
        if segment_indices is not None:
            for stream, index in zip(self._streams, segment_indices):
                stream.segment_index = index
        if delta is not None:
            delta_postings, delta_globals, delta_weights = delta
            stream = _SegmentStream(
                delta_postings, delta_globals, delta_weights, is_delta=True
            )
            stream.segment_index = -1
            self._streams.append(stream)
        self._has_delta = delta is not None
        self._delta_emitted = 0
        self._weights = weights
        self._length = length
        self._heap: list[tuple[float, int, int]] | None = None
        self._executor = executor
        self._adaptive = batch is None
        self._batch = ADAPTIVE_INITIAL_BATCH if batch is None else max(1, batch)
        self._remote = remote if executor is not None else None
        # Hot-block cache: engine-owned, shared across merges; keyed by the
        # lookup address (cache_base) plus segment index and block range.
        self._cache = cache if cache_base is not None else None
        self._cache_base = cache_base
        self._cache_hits = 0
        if executor is not None and remote is None:
            for stream in self._streams:
                stream.future = self._submit(stream)

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    @property
    def materialized(self) -> int:
        """How many items have been pulled from the merge so far."""
        return len(self._items)

    @property
    def segments(self) -> int:
        """Number of segments contributing to this merge."""
        return len(self._streams)

    @property
    def batch_size(self) -> int:
        """Current heads-per-segment pull granularity (grows when adaptive)."""
        return self._batch

    @property
    def delta_emitted(self) -> int:
        """How many materialised items came from the mutable delta."""
        return self._delta_emitted

    @property
    def cache_hits(self) -> int:
        """How many head blocks this merge served from the hot-block cache
        (the source of ``QueryStats.block_cache_hits``)."""
        return self._cache_hits

    # -- merge machinery ---------------------------------------------------

    def _cache_key(self, stream: _SegmentStream, lo: int, hi: int) -> tuple:
        return (self._cache_base, stream.segment_index, lo, hi)

    def _cacheable(self, stream: _SegmentStream) -> bool:
        # Frozen segment blocks only: the mutable delta changes under live
        # ingestion, and its streams are rebuilt per lookup anyway.
        return self._cache is not None and not stream.is_delta

    def _submit(self, stream: _SegmentStream):
        """Claim the stream's next batch and queue it on the executor.

        The range is claimed *here*, on the consuming thread, so the
        worker-side preparation is a pure function of ``(lo, hi)`` — for a
        process pool that means the request pickles as a handful of
        scalars.  If the executor refuses (shut down under us — engine
        closed mid-stream), the claim stays parked in ``stream.inflight``
        and the consumer prepares it inline from here on.
        """
        executor = self._executor
        if executor is None:
            # A sibling _submit in the same loop already saw the shutdown.
            return None
        if self._cacheable(stream):
            lo = stream.position
            hi = min(lo + self._batch, len(stream.postings))
            if lo < hi:
                block = self._cache.get(self._cache_key(stream, lo, hi))
                if block is not None:
                    # Already decoded once — claim the range and park the
                    # block where the executor's future would have gone.
                    stream.claim(self._batch)
                    return _CachedBlock(block)
        remote = self._remote
        if remote is not None and stream.is_delta:
            # The delta lives in this process's memory — workers can't map
            # it; the consumer prepares delta ranges inline on demand.
            return None
        if remote is not None:
            remaining = len(stream.postings) - stream.position
            if min(self._batch, remaining) < REMOTE_MIN_BATCH:
                # Too small to amortise the IPC round trip — leave the range
                # unclaimed; the consumer prepares it inline on demand.
                return None
        lo, hi = stream.claim(self._batch)
        if lo >= hi:
            stream.inflight = None
            return None
        try:
            if remote is not None:
                return executor.submit(
                    prepare_heads,
                    remote.directory,
                    stream.segment_index,
                    remote.bound_slots,
                    remote.key,
                    lo,
                    hi,
                )
            return executor.submit(stream.prepare_block, self._weights, lo, hi)
        except RuntimeError:
            self._executor = None
            return None

    def _refill(self, stream: _SegmentStream, limit: int | None = None) -> None:
        """Swap in the stream's next prepared batch (prefetched or inline).

        Never *waits* on a batch still sitting in the executor queue: a
        thread pool is shared with whole-query tasks (``engine.ask_many``),
        so a queued prefetch may be stuck behind the very query that needs
        it — blocking would deadlock the pool.  A pending future cancels
        (we prepare its claimed range inline instead); a running or
        finished one completes on its own worker and is safe to collect.
        A worker-side failure (e.g. a broken process pool) downgrades to
        inline preparation — the heads are identical either way.

        ``limit`` caps an *inline* prepare below the configured batch —
        used on heap initialisation so a consumer that reads one head
        (rewriting enumeration probing ``ids[0]``) doesn't pay for a full
        batch per segment.

        Every delivery path converges here, so this is also where the
        hot-block cache is consulted (inline path) and fed: a block
        decoded by a worker or inline is stored under its ``(lookup,
        segment, range)`` key, and a :class:`_CachedBlock` collected from
        the future slot counts as a hit.
        """
        future, stream.future = stream.future, None
        block = None
        if future is not None and not future.cancel():
            try:
                block = future.result()
            except CancelledError:
                block = None
            except Exception:
                self._executor = None
                block = None
            if block is not None and type(future) is _CachedBlock:
                self._cache_hits += 1
        if block is None:
            if stream.inflight is None:
                stream.claim(limit or self._batch)
            lo, hi = stream.inflight
            cacheable = self._cacheable(stream)
            if cacheable:
                block = self._cache.get(self._cache_key(stream, lo, hi))
                if block is not None:
                    self._cache_hits += 1
            if block is None:
                block = stream.prepare_block(self._weights, lo, hi)
                if cacheable:
                    self._cache.put(self._cache_key(stream, lo, hi), block)
        elif self._cacheable(stream) and type(future) is not _CachedBlock:
            lo, hi = stream.inflight
            self._cache.put(self._cache_key(stream, lo, hi), block)
        stream.inflight = None
        stream.kw, stream.kg = block
        stream.index = 0
        if (
            self._executor is not None
            and stream.position < len(stream.postings)
        ):
            stream.future = self._submit(stream)

    def _push(self, heap, stream_id: int, limit: int | None = None) -> None:
        """Push the stream's next head, refilling its block when drained."""
        stream = self._streams[stream_id]
        if stream.index >= len(stream.kw):
            if (
                stream.future is None
                and stream.inflight is None
                and stream.position >= len(stream.postings)
            ):
                return
            self._refill(stream, limit)
            if not len(stream.kw):
                return
        index = stream.index
        stream.index = index + 1
        heapq.heappush(heap, (stream.kw[index], stream.kg[index], stream_id))

    def pull(self, n: int) -> int:
        """Materialise up to ``n`` further items; return how many were added.

        This is the batched sorted-access entry point: one call amortises
        the heap walk (and any executor hand-off) over ``n`` items instead
        of paying the per-item Python overhead at every ``[index]``.
        """
        if n <= 0:
            return 0
        heap = self._heap
        if heap is None:
            heap = self._heap = []
            # Size the opening prepare to the request: a one-head probe
            # (rewriting enumeration peeking ids[0]) should not pay for a
            # full batch per segment.
            first = min(n, self._batch)
            for stream_id in range(len(self._streams)):
                self._push(heap, stream_id, first)
        elif self._adaptive and n >= self._batch:
            # The consumer drained the previous granularity and came back
            # for at least as much again — this lookup is a deep drain, so
            # double the per-segment pull (slow start, bounded).
            self._batch = min(self._batch * 2, ADAPTIVE_MAX_BATCH)
        items = self._items
        streams = self._streams
        has_delta = self._has_delta
        delta_emitted = 0
        before = len(items)
        target = min(self._length, before + n)
        while len(items) < target and heap:
            neg_weight, gid, stream_id = heap[0]
            items.append(gid)
            stream = streams[stream_id]
            if has_delta and stream.is_delta:
                delta_emitted += 1
            index = stream.index
            if index < len(stream.kw):
                # Fast path: the stream's next head is already prepared.
                stream.index = index + 1
                heapq.heapreplace(
                    heap, (stream.kw[index], stream.kg[index], stream_id)
                )
            else:
                heapq.heappop(heap)
                # The winner's next head must re-enter the heap to keep the
                # merge resumable, but prepare no more than this pull still
                # needs (at least one) — light consumers stay light.
                self._push(heap, stream_id, max(1, target - len(items)))
        if delta_emitted:
            self._delta_emitted += delta_emitted
        return len(items) - before

    def _fill(self, needed: int) -> None:
        missing = needed - len(self._items)
        if missing > 0:
            self.pull(missing)

    # -- sequence surface --------------------------------------------------

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            self._fill(start + 1 if step < 0 else stop)
            return tuple(self._items[start:stop:step])
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"Posting index out of range: {index}")
        self._fill(index + 1)
        return self._items[index]

    def __iter__(self):
        position = 0
        while position < self._length:
            if position >= len(self._items):
                # Re-read the batch each round so adaptive growth applies.
                if not self.pull(self._batch):
                    return
            yield self._items[position]
            position += 1

    def __contains__(self, value: object) -> bool:
        return any(item == value for item in self)


class ShardedBackend:
    """Hash-partitioned composite of N columnar segments."""

    name = "sharded"

    def __init__(self, num_segments: int = DEFAULT_SEGMENTS):
        if num_segments < 1:
            raise StorageError(f"Need at least one segment, got {num_segments}")
        self._segments: list[ColumnarBackend | None] = [
            ColumnarBackend() for _ in range(num_segments)
        ]
        self._segment_loaders: list[Callable[[], ColumnarBackend]] | None = None
        # Global triple id -> owning segment / local id within it.
        self._seg_of = array(ID_TYPECODE)
        self._local_of = array(ID_TYPECODE)
        # Per segment: local id -> global id (ascending, since globals
        # arrive densely — which keeps local posting order equal to global
        # (weight desc, id asc) order within each segment).
        self._globals = [array(ID_TYPECODE) for _ in range(num_segments)]
        self._weights = array("d")
        self._counts = array(ID_TYPECODE)
        self._frozen = False
        self._closed = False
        self._buffer = None
        self._load_lock = threading.Lock()
        self._executor: Executor | None = None
        self._merge_batch: int | None = DEFAULT_MERGE_BATCH
        self._remote = False
        self._source_dir: str | None = None
        self._snapshot_root: str | None = None
        self._generation = 0
        self._delta = None
        self._block_cache = None

    @classmethod
    def _restore(
        cls,
        *,
        seg_of,
        local_of,
        weights,
        counts,
        globals_,
        segment_loaders: list[Callable[[], ColumnarBackend]],
        buffer=None,
        source_dir: str | None = None,
        snapshot_root: str | None = None,
        generation: int = 0,
    ) -> "ShardedBackend":
        """Assemble an already-frozen backend from snapshot sections.

        Segments arrive as zero-argument *loaders* over the mapped file and
        materialise lazily on first touch (or eagerly, in parallel, via
        :meth:`load_segments`) — a cold open pays for the global id maps
        only.  The mapped ``buffer`` is owned here and released on
        :meth:`close`.
        """
        backend = cls.__new__(cls)
        backend._segments = [None] * len(segment_loaders)
        backend._segment_loaders = list(segment_loaders)
        backend._seg_of = seg_of
        backend._local_of = local_of
        backend._weights = weights
        backend._counts = counts
        backend._globals = list(globals_)
        backend._frozen = True
        backend._closed = False
        backend._buffer = buffer
        backend._load_lock = threading.Lock()
        backend._executor = None
        backend._merge_batch = DEFAULT_MERGE_BATCH
        backend._remote = False
        backend._source_dir = source_dir
        backend._snapshot_root = snapshot_root if snapshot_root else source_dir
        backend._generation = generation
        backend._delta = None
        backend._block_cache = None
        return backend

    @property
    def source_dir(self) -> str | None:
        """Directory this backend was mapped from, when it came from a v3
        directory snapshot — the address worker processes re-open segments
        by (:mod:`repro.storage.procpool`).  ``None`` for in-memory stores
        and single-file snapshots, which therefore cannot run under the
        process executor."""
        return self._source_dir

    @property
    def snapshot_root(self) -> str | None:
        """Root of the generational snapshot this backend was loaded from
        (the directory holding ``CURRENT`` + ``generation-K`` dirs).  For
        flat single-generation layouts this equals :attr:`source_dir`;
        compaction writes the next generation here."""
        return self._snapshot_root

    @property
    def generation(self) -> int:
        """Snapshot generation number this backend serves (0 = flat/legacy)."""
        return self._generation

    @property
    def delta(self):
        """The attached mutable :class:`~repro.storage.delta.DeltaSegment`,
        or ``None`` while the store is purely frozen."""
        return self._delta

    def attach_delta(self, delta) -> None:
        """Hook the store's mutable delta into every lookup surface.

        From here on the delta contributes one more stream to every
        :meth:`postings` merge and the id-space accessors dispatch global
        ids at or above the frozen size to it.
        """
        if not self._frozen:
            raise StorageError("Only a frozen backend can carry a delta")
        if self._closed:
            raise StorageError("Storage backend is closed")
        self._delta = delta

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every segment and drop the global id maps.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._delta = None
        self._segment_loaders = None
        views = [
            view
            for view in (self._seg_of, self._local_of, self._weights,
                         self._counts, *self._globals)
            if isinstance(view, memoryview)
        ]
        for segment in self._segments:
            if segment is not None:
                segment.close()
        self._segments = _CLOSED
        self._seg_of = _CLOSED
        self._local_of = _CLOSED
        self._weights = _CLOSED
        self._counts = _CLOSED
        self._globals = _CLOSED
        for view in views:
            view.release()
        buffer, self._buffer = self._buffer, None
        if buffer is not None and hasattr(buffer, "close"):
            try:
                buffer.close()
            except BufferError:
                # Posting slices exported before close are still alive
                # somewhere; the mapping is freed when they are collected.
                pass

    @property
    def num_segments(self) -> int:
        return len(self._globals)

    def segment_count(self) -> int:
        """Physical partitions one lookup fans out over (protocol surface)."""
        return len(self._globals)

    def __len__(self) -> int:
        n = len(self._seg_of)
        if self._delta is not None:
            n += len(self._delta)
        return n

    def segment_sizes(self) -> list[int]:
        """Triples per segment (introspection and partitioning tests)."""
        return [len(globals_) for globals_ in self._globals]

    def loaded_segments(self) -> list[int]:
        """Indices of segments whose columns are materialised (lazy loads)."""
        if self._closed:
            raise StorageError("Storage backend is closed")
        with self._load_lock:
            return [
                i for i, seg in enumerate(self._segments) if seg is not None
            ]

    def _segment(self, index: int) -> ColumnarBackend:
        # xkg: allow[lock-discipline] double-checked locking: the unlocked first read only short-circuits after a segment is published; the locked re-read decides
        segment = self._segments[index]
        if segment is None:
            with self._load_lock:
                segment = self._segments[index]
                if segment is None:
                    segment = self._segment_loaders[index]()
                    self._segments[index] = segment
        return segment

    def load_segments(self, executor: Executor | None = None) -> None:
        """Materialise every lazy segment — concurrently when given a pool."""
        if self._closed:
            raise StorageError("Storage backend is closed")
        with self._load_lock:
            count = len(self._segments)
        indices = range(count)
        if executor is None:
            for index in indices:
                self._segment(index)
        else:
            list(executor.map(self._segment, indices))

    def configure_prefetch(
        self,
        executor: Executor | None,
        batch_size: int | None = DEFAULT_MERGE_BATCH,
    ) -> None:
        """Set the shared executor and pull granularity for merged postings.

        ``executor=None`` keeps the merge on the consumer thread;
        ``batch_size=1`` restores item-at-a-time pulls (the serial
        reference) and ``batch_size=None`` selects per-merge adaptive
        sizing.  The engine wires its own pool through here
        (``EngineConfig.parallelism`` / ``merge_batch`` /
        ``executor_kind``).

        Both settings are engine-lifetime defaults copied into each
        :class:`MergedPostings` at lookup time — nothing here mutates
        mid-query, so concurrent queries with different adaptive batch
        trajectories cannot clobber each other through the shared backend.

        A :class:`~concurrent.futures.ProcessPoolExecutor` switches batch
        preparation to worker processes — valid only for a backend mapped
        from a **directory snapshot** (:attr:`source_dir` set), since
        workers re-open segments by path; otherwise the process pool is
        ignored and the merge stays on the consumer thread (graceful
        fallback, the engine reports the effective kind).
        """
        if batch_size is not None and batch_size < 1:
            raise StorageError(f"batch_size must be >= 1, got {batch_size}")
        remote = False
        if executor is not None and isinstance(executor, ProcessPoolExecutor):
            if self._source_dir is None:
                executor = None
            else:
                remote = True
        self._executor = executor
        self._remote = remote
        self._merge_batch = batch_size

    def configure_block_cache(self, cache) -> None:
        """Attach (or detach, with ``None``) a hot-block cache.

        The cache is engine-owned (one :class:`~repro.topk.kernels.
        HotBlockCache` per engine, shared by every lookup) and invalidated
        by the engine at the store-swap quiet point — this backend only
        consults it.  Cache keys carry the backend's persistent identity
        (snapshot root + generation; a process-local token for in-memory
        builds), the lookup's (bound-slot mask, key), the segment index and
        the block range — everything that determines a prepared block's
        content — so value-identical blocks are the only thing a hit can
        return and emitted merge order is unaffected.
        """
        self._block_cache = cache

    def posting_block(
        self,
        segment_index: int,
        bound_slots: Sequence[bool],
        key: tuple[int, ...],
        lo: int,
        hi: int,
    ) -> Sequence[int]:
        """Zero-copy block ``[lo, hi)`` of one segment's frozen posting
        list — the segment-addressed face of :meth:`ColumnarBackend.
        posting_block` (local posting ids; translate via the segment's
        global id map)."""
        if self._closed:
            raise StorageError("Storage backend is closed")
        if not self._frozen:
            raise StorageError("Backend must be frozen before lookup")
        return self._segment(segment_index).posting_block(
            bound_slots, key, lo, hi
        )

    # -- build phase ------------------------------------------------------------

    def _place(self, slot_ids: tuple[int, int, int]) -> int:
        """Deterministic hash partition over the (s, p, o) term ids."""
        s, p, o = slot_ids
        return ((s * 2654435761 + p * 40503 + o) & 0x7FFFFFFF) % len(
            self._globals
        )

    def insert(self, triple_id: int, slot_ids: tuple[int, int, int]) -> None:
        if self._frozen:
            raise StorageError("Cannot insert into a frozen backend")
        if triple_id != len(self._seg_of):
            raise StorageError(
                f"Triple ids must be dense: expected {len(self._seg_of)}, "
                f"got {triple_id}"
            )
        segment_index = self._place(slot_ids)
        globals_ = self._globals[segment_index]
        local_id = len(globals_)
        # xkg: allow[lock-discipline] builder phase: insert runs single-threaded before freeze() publishes the backend; lazy loads (the lock's domain) exist only on snapshot-loaded backends
        self._segments[segment_index].insert(local_id, slot_ids)
        globals_.append(triple_id)
        self._seg_of.append(segment_index)
        self._local_of.append(local_id)

    def freeze(
        self, weights: Sequence[float], counts: Sequence[int] | None = None
    ) -> None:
        if self._frozen:
            raise StorageError("Backend already frozen")
        n = len(self._seg_of)
        if len(weights) != n:
            raise StorageError(f"{n} triples but {len(weights)} weights")
        self._weights = array("d", weights)
        if counts is not None:
            if len(counts) != n:
                raise StorageError(f"{n} triples but {len(counts)} counts")
            self._counts = array(ID_TYPECODE, counts)
        # xkg: allow[lock-discipline] builder phase: freeze runs single-threaded before the backend is shared; lazy loads (the lock's domain) exist only on snapshot-loaded backends
        for segment_index, segment in enumerate(self._segments):
            globals_ = self._globals[segment_index]
            local_weights = [self._weights[g] for g in globals_]
            local_counts = (
                [self._counts[g] for g in globals_] if counts is not None else None
            )
            segment.freeze(local_weights, local_counts)
        self._frozen = True

    # -- lookup ------------------------------------------------------------

    def _check_lookup(self, bound_slots, key) -> tuple[int, ...]:
        if self._closed:
            raise StorageError("Storage backend is closed")
        if not self._frozen:
            raise StorageError("Backend must be frozen before lookup")
        sig = signature_of(bound_slots)
        if sig and len(key) != len(sig):
            raise StorageError(
                f"Key arity {len(key)} does not match signature {sig}"
            )
        return sig

    def postings(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> Sequence[int]:
        self._check_lookup(bound_slots, key)
        delta_part = (
            self._delta.posting_part(bound_slots, key)
            if self._delta is not None
            else None
        )
        parts: list[tuple[Sequence[int], Sequence[int]]] = []
        indices: list[int] = []
        total = 0
        for segment_index in range(len(self._globals)):
            postings = self._segment(segment_index).postings(bound_slots, key)
            if len(postings):
                parts.append((postings, self._globals[segment_index]))
                indices.append(segment_index)
                total += len(postings)
        if delta_part is not None:
            total += len(delta_part.postings)
        if not total:
            return _EMPTY
        remote = None
        if self._remote and self._executor is not None:
            remote = _RemoteSpec(
                self._source_dir, tuple(bound_slots), tuple(key)
            )
        cache = self._block_cache
        cache_base = None
        if cache is not None:
            root = self._snapshot_root or self._source_dir
            identity = root if root is not None else ("mem", id(self))
            cache_base = (
                identity, self._generation, tuple(bound_slots), tuple(key)
            )
        return MergedPostings(
            parts,
            self._weights,
            total,
            executor=self._executor,
            batch=self._merge_batch,
            remote=remote,
            segment_indices=indices,
            delta=delta_part,
            cache=cache,
            cache_base=cache_base,
        )

    def segment_postings(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> list[Sequence[int]]:
        """Per-segment score-sorted *global* triple ids for one lookup.

        The unmerged view of :meth:`postings` — one handle per segment, each
        already in global id terms and (weight desc, id asc) order.  Callers
        that partition work by segment (benchmarks, distributed drivers)
        consume these directly and skip the k-way merge.
        """
        self._check_lookup(bound_slots, key)
        handles: list[Sequence[int]] = []
        for segment_index in range(len(self._globals)):
            postings = self._segment(segment_index).postings(bound_slots, key)
            globals_ = self._globals[segment_index]
            handles.append(
                array(ID_TYPECODE, map(globals_.__getitem__, postings))
            )
        if self._delta is not None:
            part = self._delta.posting_part(bound_slots, key)
            if part is not None:
                handles.append(
                    array(
                        ID_TYPECODE,
                        map(part.globals_.__getitem__, part.postings),
                    )
                )
        return handles

    def distinct_keys(self, bound_slots: Sequence[bool]) -> list[tuple[int, ...]]:
        if self._closed:
            raise StorageError("Storage backend is closed")
        if not self._frozen:
            raise StorageError("Backend must be frozen before lookup")
        sig = signature_of(bound_slots)
        if not sig:
            raise StorageError("The scan signature has no keys")
        # Walk global ids so keys come out in first-occurrence order — the
        # same order the single-segment backends produce.  Delta ids sit
        # densely above the frozen ids, so delta-only keys land last in
        # delta insertion order — the fresh-build order too.
        seen: dict[tuple[int, ...], None] = {}
        for triple_id in range(len(self)):
            spo = self.slot_ids(triple_id)
            seen[tuple(spo[slot] for slot in sig)] = None
        return list(seen)

    def slot_ids(self, triple_id: int) -> tuple[int, int, int]:
        if self._delta is not None and triple_id >= len(self._seg_of):
            return self._delta.slot_ids(triple_id)
        return self._segment(self._seg_of[triple_id]).slot_ids(
            self._local_of[triple_id]
        )

    def weight(self, triple_id: int) -> float:
        if self._delta is not None and triple_id >= len(self._weights):
            return self._delta.weight(triple_id)
        return self._weights[triple_id]

    def count(self, triple_id: int) -> int:
        if self._delta is not None and triple_id >= len(self._seg_of):
            return self._delta.count(triple_id)
        if not 0 <= triple_id < len(self._seg_of):
            raise StorageError(f"Unknown triple id: {triple_id}")
        if len(self._counts) != len(self._seg_of):
            raise StorageError("Backend was frozen without a counts column")
        return self._counts[triple_id]

    # -- introspection ------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate resident bytes across all segments + the id maps."""
        import sys

        with self._load_lock:
            loaded = [seg for seg in self._segments if seg is not None]
        total = sum(segment.memory_bytes() for segment in loaded)
        total += sum(
            column.nbytes if isinstance(column, memoryview) else sys.getsizeof(column)
            for column in (self._seg_of, self._local_of, self._weights, self._counts)
        )
        total += sum(
            globals_.nbytes
            if isinstance(globals_, memoryview)
            else sys.getsizeof(globals_)
            for globals_ in self._globals
        )
        return total


# Register under "sharded" without importing repro.storage.backend at module
# top level (backend.py imports this module at its bottom).
from repro.storage.backend import _CLOSED, register_backend  # noqa: E402

register_backend(ShardedBackend)
