"""Derived statistics over a frozen store.

Relaxation-rule mining needs ``args(p)`` — the set of subject-object pairs a
predicate connects (Section 3 of the paper); query suggestion needs the
*context pairs* of a term in a slot to measure match overlap between a text
token and a candidate KG resource (Section 5).  Both are computed here, once,
from the frozen store, and exposed through cached accessors.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.terms import Term
from repro.core.triples import TriplePattern, Triple
from repro.core.terms import Variable
from repro.errors import StorageError
from repro.storage.store import TripleStore
from repro.util.lazy import LazilyBuilt

#: Slot indexes, for readability at call sites.
SUBJECT, PREDICATE, OBJECT = 0, 1, 2


class StoreStatistics(LazilyBuilt):
    """Aggregate views over a frozen :class:`TripleStore`.

    All returned collections use term *ids* internally but the public API
    speaks :class:`Term`; decoding happens lazily where needed.
    """

    def __init__(self, store: TripleStore):
        if not store.is_frozen:
            raise StorageError("Statistics require a frozen store")
        self.store = store
        # predicate id -> set of (subject id, object id)
        self._args: dict[int, set[tuple[int, int]]] = defaultdict(set)
        # predicate id -> total observation weight
        self._pred_mass: dict[int, float] = defaultdict(float)
        # slot -> term id -> set of context tuples (ids of the other 2 slots)
        self._context: list[dict[int, set[tuple[int, int]]]] = [
            defaultdict(set),
            defaultdict(set),
            defaultdict(set),
        ]
        self._init_lazy()

    def _build(self) -> None:
        # Deferring the build (LazilyBuilt._ensure) keeps a cold
        # ``TriniT.open()`` with mining disabled from sweeping the whole
        # store; the build itself reads the backend's id columns and the
        # weight column directly, so no :class:`StoredTriple` records are
        # materialised for it.  Built into fresh containers and assigned
        # at the end: after ``invalidate()`` (live ingestion) a rebuild
        # must not double-count into the old dicts, and concurrent readers
        # keep a consistent pre-rebuild view until the swap.
        store = self.store
        slot_ids = store.backend.slot_ids
        weights = store.weights()
        args: dict[int, set[tuple[int, int]]] = defaultdict(set)
        pred_mass: dict[int, float] = defaultdict(float)
        context: list[dict[int, set[tuple[int, int]]]] = [
            defaultdict(set),
            defaultdict(set),
            defaultdict(set),
        ]
        for tid in range(len(store)):
            s, p, o = slot_ids(tid)
            args[p].add((s, o))
            pred_mass[p] += weights[tid]
            context[SUBJECT][s].add((p, o))
            context[PREDICATE][p].add((s, o))
            context[OBJECT][o].add((s, p))
        self._args = args
        self._pred_mass = pred_mass
        self._context = context

    # -- predicates ---------------------------------------------------------

    def predicates(self) -> list[Term]:
        """All distinct predicate terms, most-observed first (deterministic)."""
        self._ensure()
        ordered = sorted(
            self._args,
            key=lambda pid: (-self._pred_mass[pid], self.store.dictionary.decode(pid).sort_key()),
        )
        return [self.store.dictionary.decode(pid) for pid in ordered]

    def args(self, predicate: Term) -> frozenset[tuple[int, int]]:
        """``args(p)``: the set of (subject id, object id) pairs p connects.

        This is exactly the quantity the paper's mining weight
        ``w(p1 → p2) = |args(p1) ∩ args(p2)| / |args(p2)|`` is defined over.
        """
        self._ensure()
        pid = self.store.dictionary.id_of(predicate)
        if pid is None:
            return frozenset()
        return frozenset(self._args.get(pid, ()))

    def args_inverted(self, predicate: Term) -> frozenset[tuple[int, int]]:
        """``args(p)`` with each pair flipped — for mining inversion rules."""
        return frozenset((o, s) for s, o in self.args(predicate))

    def predicate_fanout(self, predicate: Term) -> int:
        """Number of distinct S-O pairs the predicate connects."""
        return len(self.args(predicate))

    def predicate_mass(self, predicate: Term) -> float:
        """Total observation weight across the predicate's triples."""
        self._ensure()
        pid = self.store.dictionary.id_of(predicate)
        return 0.0 if pid is None else self._pred_mass.get(pid, 0.0)

    # -- per-slot context ------------------------------------------------------

    def context_pairs(self, term: Term, slot: int) -> frozenset[tuple[int, int]]:
        """Context tuples of ``term`` in ``slot``.

        For a subject this is its set of (predicate, object) pairs, for a
        predicate its (subject, object) pairs, for an object its
        (subject, predicate) pairs.  Query suggestion compares the context
        pairs of a text token with those of KG resources: large overlap means
        the token likely denotes that resource.
        """
        if slot not in (SUBJECT, PREDICATE, OBJECT):
            raise StorageError(f"Slot must be 0, 1 or 2, got {slot}")
        self._ensure()
        term_id = self.store.dictionary.id_of(term)
        if term_id is None:
            return frozenset()
        return frozenset(self._context[slot].get(term_id, ()))

    def terms_in_slot(self, slot: int, kind: str | None = None) -> list[Term]:
        """Distinct terms occurring in ``slot``, optionally filtered by kind."""
        if slot not in (SUBJECT, PREDICATE, OBJECT):
            raise StorageError(f"Slot must be 0, 1 or 2, got {slot}")
        self._ensure()
        decode = self.store.dictionary.decode
        terms = (decode(term_id) for term_id in sorted(self._context[slot]))
        if kind is None:
            return list(terms)
        return [t for t in terms if t.kind == kind]

    # -- selectivity helpers -----------------------------------------------------

    def pattern_selectivity(self, pattern: TriplePattern) -> float:
        """Fraction of the store matched by the pattern (0 when empty store)."""
        total = len(self.store)
        if total == 0:
            return 0.0
        return self.store.cardinality(pattern) / total

    def type_instances(self, class_term: Term, type_predicate: Term) -> list[Term]:
        """Entities ``e`` with ``e type_predicate class_term`` — taxonomy helper."""
        pattern = TriplePattern(Variable("x"), type_predicate, class_term)
        return [rec.triple.s for rec in self.store.matches(pattern)]
