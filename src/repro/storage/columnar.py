"""Columnar array storage backend.

Triples live in parallel columns — ``array('i')`` for the s/p/o term ids,
``array('d')`` for sort weights, ``array('i')`` for observation counts —
instead of a list of per-triple objects.  For each bound-slot signature the
freeze step materialises one *permutation array*: all triple ids reordered so
that ids sharing a key are contiguous and each key group is sorted by
(weight desc, triple id asc).  A posting list is then just an index range
``perm[start:stop]``, returned as a zero-copy read-only memoryview.

Compared to the hash-bucketed :class:`~repro.storage.backend.DictBackend`
this halves per-posting overhead (no per-bucket list headers), keeps posting
traversal on contiguous machine integers, and is the layout a mmap'd or
sharded persistent backend would use — which is why the backend protocol was
cut exactly here.
"""

from __future__ import annotations

import sys
from array import array
from typing import Sequence

from repro.errors import StorageError
from repro.storage.delta import overlay_postings
from repro.storage.index import SIGNATURES, signature_of

#: Typecode for id columns.  'q' (64-bit) would also work; 'i' (>= 32-bit)
#: comfortably covers term and triple ids at in-memory scales.
ID_TYPECODE = "i"

_EMPTY: tuple[int, ...] = ()


class ColumnarBackend:
    """Dictionary-encoded triples as parallel arrays + range posting lists."""

    name = "columnar"

    def __init__(self):
        self._s = array(ID_TYPECODE)
        self._p = array(ID_TYPECODE)
        self._o = array(ID_TYPECODE)
        self._weights = array("d")
        self._counts = array(ID_TYPECODE)
        # signature -> read-only memoryview over that signature's permutation
        self._perm_views: dict[tuple[int, ...], memoryview] = {}
        # signature -> key tuple -> (start, stop) into the permutation
        self._offsets: dict[tuple[int, ...], dict[tuple[int, ...], tuple[int, int]]] = {}
        self._scan_view: memoryview | None = None
        self._frozen = False
        self._closed = False
        self._delta = None
        # Set by _restore: keeps a snapshot's mmap (or bytes) buffer alive
        # for as long as the views over it exist.
        self._buffer = None

    @classmethod
    def _restore(
        cls,
        *,
        s,
        p,
        o,
        weights,
        counts,
        scan_view,
        perm_views,
        offsets,
        buffer=None,
    ) -> "ColumnarBackend":
        """Assemble an already-frozen backend from snapshot sections.

        Columns and permutation views may be read-only memoryviews straight
        over a mapped snapshot file (see :mod:`repro.storage.snapshot`) —
        nothing is copied and no freeze-time sorting happens: the on-disk
        permutations *are* the posting lists.
        """
        backend = cls.__new__(cls)
        backend._s = s
        backend._p = p
        backend._o = o
        backend._weights = weights
        backend._counts = counts
        backend._perm_views = perm_views
        backend._offsets = offsets
        backend._scan_view = scan_view
        backend._frozen = True
        backend._closed = False
        backend._delta = None
        backend._buffer = buffer
        return backend

    @property
    def delta(self):
        """The attached mutable delta segment, or ``None``."""
        return self._delta

    def attach_delta(self, delta) -> None:
        """Overlay a mutable delta on the frozen columns (live ingestion)."""
        if not self._frozen:
            raise StorageError("Only a frozen backend can carry a delta")
        if self._closed:
            raise StorageError("Storage backend is closed")
        self._delta = delta

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release columns, permutation views and the snapshot buffer.

        For an mmap-restored backend this is the only way the mapping is
        ever unmapped: every retained memoryview over the mapped pages is
        released and the :class:`mmap.mmap` closed.  Posting-list slices
        handed out before close (cursors of a still-live stream) keep the
        pages alive until they are garbage-collected — in that case the
        explicit unmap is deferred to GC rather than failing the close.
        Further lookups raise :class:`StorageError`.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self._delta = None
        views = [
            view
            for view in (
                self._s,
                self._p,
                self._o,
                self._weights,
                self._counts,
                self._scan_view,
                *self._perm_views.values(),
            )
            if isinstance(view, memoryview)
        ]
        self._s = self._p = self._o = _CLOSED
        self._weights = self._counts = _CLOSED
        self._scan_view = _CLOSED
        self._perm_views = _CLOSED
        self._offsets = _CLOSED
        for view in views:
            view.release()
        buffer, self._buffer = self._buffer, None
        if buffer is not None and hasattr(buffer, "close"):
            try:
                buffer.close()
            except BufferError:
                # Posting slices exported before close are still alive
                # somewhere; the mapping is freed when they are collected.
                pass

    def __len__(self) -> int:
        n = len(self._s)
        if self._delta is not None:
            n += len(self._delta)
        return n

    # -- build phase ------------------------------------------------------------

    def insert(self, triple_id: int, slot_ids: tuple[int, int, int]) -> None:
        if self._frozen:
            raise StorageError("Cannot insert into a frozen backend")
        if triple_id != len(self._s):
            raise StorageError(
                f"Triple ids must be dense: expected {len(self._s)}, "
                f"got {triple_id}"
            )
        s, p, o = slot_ids
        self._s.append(s)
        self._p.append(p)
        self._o.append(o)

    def freeze(
        self, weights: Sequence[float], counts: Sequence[int] | None = None
    ) -> None:
        if self._frozen:
            raise StorageError("Backend already frozen")
        n = len(self._s)
        if len(weights) != n:
            raise StorageError(f"{n} triples but {len(weights)} weights")
        self._weights = array("d", weights)
        if counts is not None:
            if len(counts) != n:
                raise StorageError(f"{n} triples but {len(counts)} counts")
            self._counts = array(ID_TYPECODE, counts)
        w = self._weights
        columns = (self._s, self._p, self._o)

        def order(tid: int) -> tuple[float, int]:
            return (-w[tid], tid)

        scan = array(ID_TYPECODE, sorted(range(n), key=order))
        self._scan_view = memoryview(scan).toreadonly()

        for sig in SIGNATURES:
            sig_columns = [columns[slot] for slot in sig]
            groups: dict[tuple[int, ...], list[int]] = {}
            for tid in range(n):
                key = tuple(col[tid] for col in sig_columns)
                groups.setdefault(key, []).append(tid)
            perm = array(ID_TYPECODE)
            offsets: dict[tuple[int, ...], tuple[int, int]] = {}
            for key, tids in groups.items():
                tids.sort(key=order)
                start = len(perm)
                perm.extend(tids)
                offsets[key] = (start, len(perm))
            self._perm_views[sig] = memoryview(perm).toreadonly()
            self._offsets[sig] = offsets
        self._frozen = True

    # -- lookup ------------------------------------------------------------

    def postings(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> Sequence[int]:
        if self._closed:
            raise StorageError("Storage backend is closed")
        if not self._frozen:
            raise StorageError("Backend must be frozen before lookup")
        sig = signature_of(bound_slots)
        if sig and len(key) != len(sig):
            raise StorageError(
                f"Key arity {len(key)} does not match signature {sig}"
            )
        if not sig:
            base: Sequence[int] = self._scan_view  # type: ignore[assignment]
        else:
            span = self._offsets[sig].get(key)
            if span is None:
                base = _EMPTY
            else:
                start, stop = span
                base = self._perm_views[sig][start:stop]
        if self._delta is None or not len(self._delta):
            return base
        return overlay_postings(
            base, len(self._s), self._weights, self._delta, bound_slots, key
        )

    def posting_block(
        self,
        bound_slots: Sequence[bool],
        key: tuple[int, ...],
        lo: int,
        hi: int,
    ) -> Sequence[int]:
        """Zero-copy block ``[lo, hi)`` of one *frozen* posting list.

        The block-decode entry point of the execution kernels
        (:mod:`repro.topk.kernels`): a memoryview slice straight off the
        permutation array — for an mmap-restored backend that is a window
        onto the mapped snapshot pages, no intermediate tuples or copies.
        Serves the frozen columns only; a live delta overlay is merged by
        :meth:`postings`, never block-decoded here (delta heads are always
        prepared thread-side from the mutable segment).  Raises
        :class:`StorageError` once the backend is closed — a cached
        consumer holding a stale handle gets a clean error, not a crash
        against released views.
        """
        if self._closed:
            raise StorageError("Storage backend is closed")
        if not self._frozen:
            raise StorageError("Backend must be frozen before lookup")
        sig = signature_of(bound_slots)
        if sig and len(key) != len(sig):
            raise StorageError(
                f"Key arity {len(key)} does not match signature {sig}"
            )
        if not sig:
            base: Sequence[int] = self._scan_view  # type: ignore[assignment]
        else:
            span = self._offsets[sig].get(key)
            if span is None:
                return _EMPTY
            start, stop = span
            base = self._perm_views[sig][start:stop]
        return base[lo:hi]

    def segment_count(self) -> int:
        return 1

    def segment_postings(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> list[Sequence[int]]:
        return [self.postings(bound_slots, key)]

    def configure_prefetch(self, executor, batch_size: int = 1) -> None:
        """Postings are zero-copy range views; nothing to prefetch."""

    def distinct_keys(self, bound_slots: Sequence[bool]) -> list[tuple[int, ...]]:
        if self._closed:
            raise StorageError("Storage backend is closed")
        if not self._frozen:
            raise StorageError("Backend must be frozen before lookup")
        sig = signature_of(bound_slots)
        if not sig:
            raise StorageError("The scan signature has no keys")
        keys = list(self._offsets[sig].keys())
        if self._delta is not None and len(self._delta):
            known = set(keys)
            keys.extend(
                key
                for key in self._delta.distinct_keys(bound_slots)
                if key not in known
            )
        return keys

    def slot_ids(self, triple_id: int) -> tuple[int, int, int]:
        if self._delta is not None and triple_id >= len(self._s):
            return self._delta.slot_ids(triple_id)
        return (self._s[triple_id], self._p[triple_id], self._o[triple_id])

    def weight(self, triple_id: int) -> float:
        if self._delta is not None and triple_id >= len(self._weights):
            return self._delta.weight(triple_id)
        return self._weights[triple_id]

    def count(self, triple_id: int) -> int:
        if self._delta is not None and triple_id >= len(self._s):
            return self._delta.count(triple_id)
        if not 0 <= triple_id < len(self._s):
            raise StorageError(f"Unknown triple id: {triple_id}")
        if len(self._counts) != len(self._s):
            raise StorageError("Backend was frozen without a counts column")
        return self._counts[triple_id]

    # -- introspection ------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate resident bytes of the column + permutation arrays."""
        total = sum(
            col.nbytes if isinstance(col, memoryview) else sys.getsizeof(col)
            for col in (self._s, self._p, self._o, self._weights, self._counts)
        )
        for view in self._perm_views.values():
            total += view.nbytes
        if self._scan_view is not None:
            total += self._scan_view.nbytes
        return total


# Register under "columnar" without importing repro.storage.backend at module
# top level (backend.py imports this module at its bottom).
from repro.storage.backend import _CLOSED, register_backend  # noqa: E402

register_backend(ColumnarBackend)
