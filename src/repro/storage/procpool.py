"""Worker-process side of the multi-process segment executor.

The thread-pool prefetch of :mod:`repro.storage.sharded` overlaps I/O and
keeps batches ready, but every head preparation still competes for the one
GIL with the consumer's merge/rank-join work.  This module is the other
half of the escape hatch: with a **directory snapshot** (format v3, see
:mod:`repro.storage.snapshot`) each segment lives in its own file, so a
worker *process* can serve ``prepare_heads`` requests against its own
mapping of exactly the segment files it is asked about — copy-on-write
shared page cache, no posting data ever pickled.  What crosses the process
boundary per request is a few scalars (directory, segment index, the
lookup's bound-slot mask and key, and the ``[lo, hi)`` posting range) and
the prepared head list coming back.

Workers cache one loaded store per snapshot directory, keyed by the
directory path and guarded by the worker's pid — a pool that forks after
the cache was warmed (or a forkserver recycling interpreters) never serves
another process's mappings.  Loading is lazy twice over: the store loads on
the worker's first request, and the v3 loader maps a segment file only when
a request touches that segment, so a worker that only ever serves segment 2
maps the manifest and ``segment-0002.xkgsnap`` and nothing else.

Everything here must stay importable under the ``spawn`` start method
(workers re-import the module by qualified name), so the snapshot loader is
imported inside the function — :mod:`repro.storage.snapshot` imports
:mod:`repro.storage.sharded`, which imports this module at top level.
"""

from __future__ import annotations

import multiprocessing
import os

#: directory path -> loaded TripleStore, private to one worker process.
_CACHE: dict[str, object] = {}
_CACHE_PID: int | None = None


def process_context():
    """The preferred multiprocessing context for the segment process pool.

    ``forkserver`` first (fork-safety next to the engine's own threads,
    without spawn's full re-import per worker), then ``spawn``, then plain
    ``fork``; ``None`` when the platform offers no start method at all —
    the engine falls back to the thread executor then.
    """
    for method in ("forkserver", "spawn", "fork"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return None


def _backend_for(directory: str):
    """This worker's mapping of the directory snapshot (cached per pid)."""
    global _CACHE_PID
    pid = os.getpid()
    if pid != _CACHE_PID:
        _CACHE.clear()
        _CACHE_PID = pid
    store = _CACHE.get(directory)
    if store is None:
        from repro.storage.snapshot import load_snapshot

        store = load_snapshot(directory)
        _CACHE[directory] = store
    return store.backend


def prepare_heads(
    directory: str,
    segment_index: int,
    bound_slots: tuple[bool, ...],
    key: tuple[int, ...],
    lo: int,
    hi: int,
):
    """Prepare one segment's ``[lo, hi)`` posting range as a head block.

    The process-pool counterpart of ``_SegmentStream.prepare_block``: the
    worker re-runs the segment-local lookup against its own mapping (a dict
    probe into the frozen offset table — no scan), block-decodes the
    requested slice zero-copy (``posting_block``), and translates it into
    pre-keyed merge heads — two parallel ``(-weight, global id)`` columns
    (:func:`repro.topk.kernels.prepare_head_block`).  Both sides slice the
    same frozen posting list, so the block is identical to an inline
    preparation in the engine process, and the two flat columns pickle
    tighter than a list of per-head tuples.
    """
    from repro.topk.kernels import prepare_head_block

    backend = _backend_for(directory)
    postings = backend._segment(segment_index).posting_block(
        bound_slots, key, lo, hi
    )
    globals_ = backend._globals[segment_index]
    weights = backend._weights
    return prepare_head_block(postings, globals_, weights, 0, len(postings))
