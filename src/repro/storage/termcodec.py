"""Shared term / provenance codecs for the persistence formats.

Both on-disk formats — the JSONL statement file (:mod:`repro.storage.
persistence`) and the binary columnar snapshot (:mod:`repro.storage.
snapshot`) — serialise terms and provenance records the same way, so the
codecs live here, below both modules.

Term encoding is a two-element array ``[kind_tag, lexical]`` with tags
``r`` (resource), ``l`` (literal), ``t`` (token).  Literals carry their
datatype as a third element so ``"1879-03-14"``-the-string and
1879-03-14-the-date round-trip to exactly what was stored.
"""

from __future__ import annotations

from datetime import date

from repro.core.terms import Literal, Resource, Term, TextToken
from repro.core.terms import _auto_type  # canonical literal typing
from repro.core.triples import Provenance
from repro.errors import PersistenceError


def encode_term(term: Term) -> list[str]:
    if isinstance(term, Resource):
        return ["r", term.name]
    if isinstance(term, TextToken):
        return ["t", term.norm]
    if isinstance(term, Literal):
        return ["l", term.lexical(), term.datatype]
    raise PersistenceError(f"Cannot persist term of kind {term.kind}")


def _decode_literal(value: str, datatype: str) -> Literal:
    if datatype == "string":
        return Literal(value)
    if datatype == "integer":
        return Literal(int(value))
    if datatype == "double":
        return Literal(float(value))
    if datatype == "date":
        return Literal(date.fromisoformat(value))
    raise PersistenceError(f"Unknown literal datatype: {datatype!r}")


def decode_term(encoded: list) -> Term:
    if not isinstance(encoded, list) or len(encoded) not in (2, 3):
        raise PersistenceError(f"Bad term encoding: {encoded!r}")
    tag, value = encoded[0], encoded[1]
    if tag == "r":
        return Resource(value)
    if tag == "t":
        return TextToken(value)
    if tag == "l":
        if len(encoded) == 3:
            return _decode_literal(value, encoded[2])
        return Literal(_auto_type(value))  # legacy 2-element form
    raise PersistenceError(f"Unknown term tag: {tag!r}")


def encode_provenance(prov: Provenance) -> dict:
    record = {"origin": prov.origin}
    if prov.source:
        record["source"] = prov.source
    if prov.sentence:
        record["sentence"] = prov.sentence
    if prov.extractor:
        record["extractor"] = prov.extractor
    return record


def decode_provenance(record: dict) -> Provenance:
    return Provenance(
        origin=record.get("origin", "kg"),
        source=record.get("source", ""),
        sentence=record.get("sentence", ""),
        extractor=record.get("extractor", ""),
    )
