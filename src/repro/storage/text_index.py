"""Fuzzy matching between query text tokens and stored terms.

A query token like ``'won nobel for'`` should match the stored extraction
phrase ``'won a nobel for'`` even though the normalised surface forms differ
— and a token like ``'born in'`` should match the canonical KG predicate
``bornIn`` through its camel-case surface form.  The :class:`TokenMatcher`
indexes, per SPO slot, every distinct stored token phrase *and* every
resource's surface words by their stemmed content-token *match key*, and
answers: given a query token and a slot, which stored terms does it denote,
and how similar are they?

Similarity grades (all deterministic):

* identical normalised form → 1.0
* identical match key (same content stems) → 0.95
* one key a contiguous subsequence of the other →
  ``0.6 + 0.3 · |shorter| / |longer|``
* matches against a *resource* surface form are further scaled by 0.95 —
  translating free text into the canonical vocabulary is almost, but not
  quite, as reliable as matching the phrase itself.

The similarity multiplies into the answer score exactly like a relaxation
weight — matching a vaguer phrase attenuates the answer.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.terms import Resource, Term, TextToken
from repro.errors import StorageError
from repro.storage.store import TripleStore
from repro.util.lazy import LazilyBuilt
from repro.util.text import camel_to_words, is_subsequence, match_key

#: Slots, mirroring statistics.SUBJECT/PREDICATE/OBJECT.
SUBJECT, PREDICATE, OBJECT = 0, 1, 2

#: Attenuation applied when a token matches a canonical resource rather
#: than a stored phrase.
RESOURCE_MATCH_FACTOR = 0.95


@dataclass(frozen=True)
class TokenMatch:
    """A stored term matching a query token, with its similarity.

    ``token`` is the term to substitute into the pattern: a stored
    :class:`TextToken` phrase or a canonical :class:`Resource`.
    """

    token: Term
    similarity: float

    def sort_key(self):
        return (-self.similarity, self.token.kind, self.token.lexical())


class TokenMatcher(LazilyBuilt):
    """Index of stored phrases and resource surfaces, per slot."""

    def __init__(self, store: TripleStore, *, include_resources: bool = True):
        if not store.is_frozen:
            raise StorageError("TokenMatcher requires a frozen store")
        self.store = store
        self.include_resources = include_resources
        # slot -> exact norm -> term (the term that normalises to it)
        self._by_norm: list[dict[str, Term]] = [{}, {}, {}]
        # slot -> match key -> list of terms
        self._by_key: list[dict[tuple[str, ...], list[Term]]] = [
            defaultdict(list),
            defaultdict(list),
            defaultdict(list),
        ]
        # slot -> single stem -> set of match keys containing it
        self._by_stem: list[dict[str, set[tuple[str, ...]]]] = [
            defaultdict(set),
            defaultdict(set),
            defaultdict(set),
        ]
        self._init_lazy()

    @staticmethod
    def _surface(term: Term) -> str:
        if isinstance(term, Resource):
            return camel_to_words(term.name)
        return term.lexical()

    def _key_for(self, term: Term, slot: int) -> tuple[str, ...]:
        return match_key(self._surface(term), predicate=(slot == PREDICATE))

    def _build(self) -> None:
        # First use only (LazilyBuilt._ensure): walks the backend's id
        # columns and decodes each distinct per-slot term exactly once —
        # no :class:`StoredTriple` records are materialised, so a lazily
        # loaded snapshot store pays for the text index only when a query
        # actually expands tokens.  Built into fresh containers assigned
        # at the end so an ``invalidate()`` rebuild (live ingestion) never
        # double-appends and concurrent readers see a consistent index.
        store = self.store
        decode = store.dictionary.decode
        slot_ids = store.backend.slot_ids
        by_norm: list[dict[str, Term]] = [{}, {}, {}]
        by_key: list[dict[tuple[str, ...], list[Term]]] = [
            defaultdict(list),
            defaultdict(list),
            defaultdict(list),
        ]
        by_stem: list[dict[str, set[tuple[str, ...]]]] = [
            defaultdict(set),
            defaultdict(set),
            defaultdict(set),
        ]
        seen: list[set[int]] = [set(), set(), set()]
        for tid in range(len(store)):
            for slot, term_id in enumerate(slot_ids(tid)):
                if term_id in seen[slot]:
                    continue
                seen[slot].add(term_id)
                term = decode(term_id)
                if not isinstance(term, TextToken) and not (
                    self.include_resources and isinstance(term, Resource)
                ):
                    continue
                norm = (
                    term.norm
                    if isinstance(term, TextToken)
                    else " ".join(self._surface(term).lower().split())
                )
                by_norm[slot].setdefault(norm, term)
                key = self._key_for(term, slot)
                if not key:
                    continue
                by_key[slot][key].append(term)
                for stem_token in set(key):
                    by_stem[slot][stem_token].add(key)
        # Deterministic candidate order within identical keys: phrases
        # before resources, then lexical.
        for slot_keys in by_key:
            for terms in slot_keys.values():
                terms.sort(key=lambda t: (t.kind != "token", t.lexical()))
        self._by_norm = by_norm
        self._by_key = by_key
        self._by_stem = by_stem

    def phrases_in_slot(self, slot: int) -> list[TextToken]:
        """All distinct stored token phrases for a slot, lexically ordered."""
        self._ensure()
        phrases = [
            term
            for term in self._by_norm[slot].values()
            if isinstance(term, TextToken)
        ]
        return sorted(phrases, key=lambda t: t.norm)

    def _factor(self, term: Term) -> float:
        return RESOURCE_MATCH_FACTOR if isinstance(term, Resource) else 1.0

    def matches(self, query_token: TextToken, slot: int) -> list[TokenMatch]:
        """Stored terms matching ``query_token`` in ``slot``, best first."""
        if slot not in (SUBJECT, PREDICATE, OBJECT):
            raise StorageError(f"Slot must be 0, 1 or 2, got {slot}")
        self._ensure()
        results: dict[Term, TokenMatch] = {}

        def offer(term: Term, similarity: float) -> None:
            similarity *= self._factor(term)
            existing = results.get(term)
            if existing is None or existing.similarity < similarity:
                results[term] = TokenMatch(term, similarity)

        exact = self._by_norm[slot].get(query_token.norm)
        if exact is not None:
            offer(exact, 1.0)

        query_key = self._key_for(query_token, slot)
        if query_key:
            for term in self._by_key[slot].get(query_key, ()):
                offer(term, 0.95)
            # Candidate keys sharing at least one stem; verified by a
            # contiguous-subsequence check in either direction.
            candidate_keys: set[tuple[str, ...]] = set()
            for stem_token in set(query_key):
                candidate_keys |= self._by_stem[slot].get(stem_token, set())
            for key in candidate_keys:
                if key == query_key:
                    continue
                short, long_ = sorted((query_key, key), key=len)
                if not is_subsequence(short, long_):
                    continue
                similarity = 0.6 + 0.3 * len(short) / len(long_)
                for term in self._by_key[slot][key]:
                    offer(term, similarity)

        return sorted(results.values(), key=TokenMatch.sort_key)
