"""Bidirectional term ↔ integer-id dictionary.

Dictionary encoding keeps the index structures compact (ints instead of term
objects) and makes term identity checks O(1).  Ids are assigned densely in
insertion order, so a store built twice from the same input assigns identical
ids.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.terms import Term
from repro.errors import DictionaryError
from repro.util.lazy import LazilyBuilt


class TermDictionary:
    """Assigns stable dense integer ids to terms.

    The dictionary is append-only: terms are never removed, so ids stay
    valid for the lifetime of the store that owns them.
    """

    def __init__(self):
        self._term_to_id: dict[Term, int] = {}
        self._id_to_term: list[Term] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[Term]:
        return iter(self._id_to_term)

    def encode(self, term: Term) -> int:
        """Return the id for ``term``, assigning a fresh one if unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def id_of(self, term: Term) -> int | None:
        """Return the id for ``term`` or None when it was never added."""
        return self._term_to_id.get(term)

    def require_id(self, term: Term) -> int:
        """Return the id for ``term``; raise :class:`DictionaryError` if absent."""
        existing = self._term_to_id.get(term)
        if existing is None:
            raise DictionaryError(f"Unknown term: {term!r}")
        return existing

    def decode(self, term_id: int) -> Term:
        """Return the term for ``term_id``; raise on out-of-range ids."""
        if 0 <= term_id < len(self._id_to_term):
            return self._id_to_term[term_id]
        raise DictionaryError(f"Unknown term id: {term_id}")

    def ids_of_kind(self, kind: str) -> list[int]:
        """All ids whose term has the given kind ('resource', 'token', ...)."""
        return [i for i, term in enumerate(self._id_to_term) if term.kind == kind]


class LazyTermDictionary(TermDictionary, LazilyBuilt):
    """A dictionary whose term table decodes on first use.

    Snapshot loading used to decode every stored term up front — a cost a
    cold open pays even when the session never runs a query.  This variant
    defers the decode to the first dictionary access: ``populate`` (a
    closure over the snapshot's terms section) fills the table exactly once
    (:class:`~repro.util.lazy.LazilyBuilt`), so concurrent first touches
    (``ask_many`` threads) observe either nothing or the complete id
    assignment, never a prefix.
    """

    def __init__(self, populate: Callable[["TermDictionary"], None]):
        super().__init__()
        self._populate = populate
        self._init_lazy()

    @property
    def is_materialized(self) -> bool:
        """True once the term table has been decoded."""
        return self._built

    def _build(self) -> None:
        self._populate(self)
        self._populate = None  # free the closed-over terms blob

    def __len__(self) -> int:
        self._ensure()
        return super().__len__()

    def __contains__(self, term: Term) -> bool:
        self._ensure()
        return super().__contains__(term)

    def __iter__(self) -> Iterator[Term]:
        self._ensure()
        return super().__iter__()

    def encode(self, term: Term) -> int:
        self._ensure()
        return super().encode(term)

    def id_of(self, term: Term) -> int | None:
        self._ensure()
        return super().id_of(term)

    def require_id(self, term: Term) -> int:
        self._ensure()
        return super().require_id(term)

    def decode(self, term_id: int) -> Term:
        self._ensure()
        return super().decode(term_id)

    def ids_of_kind(self, kind: str) -> list[int]:
        self._ensure()
        return super().ids_of_kind(kind)
