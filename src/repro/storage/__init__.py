"""Storage backend: dictionary-encoded triple store with sorted posting lists.

The paper uses ElasticSearch as the storage backend; the contract top-k query
processing needs from it is narrow: *given a triple pattern, access its
matching triples in descending score order, incrementally*.  This package
provides that contract with an in-memory store:

* :mod:`dictionary` — bidirectional term ↔ integer-id encoding,
* :mod:`backend` — the pluggable :class:`StorageBackend` boundary (the
  sharding / persistence seam) with the hash-index :class:`DictBackend`,
* :mod:`columnar` — the compact array-column backend (:class:`ColumnarBackend`),
* :mod:`sharded` — the segmented composite backend (:class:`ShardedBackend`):
  hash-partitioned columnar shards with lazy k-way merged postings,
* :mod:`index` — posting lists for every bound-slot signature, pre-sorted by
  observation weight so sorted access is an array walk,
* :mod:`store` — the :class:`TripleStore` facade (add / freeze / match),
* :mod:`statistics` — pattern cardinalities, ``args(p)`` subject-object pair
  sets for relaxation mining, collection frequencies for scoring,
* :mod:`text_index` — fuzzy phrase matching for text-token query slots,
* :mod:`persistence` — JSONL save/load (with format sniffing),
* :mod:`snapshot` — binary columnar snapshots loaded back via ``mmap``.
"""

from repro.storage.backend import (
    BACKENDS,
    DictBackend,
    StorageBackend,
    make_backend,
    register_backend,
)
from repro.storage.columnar import ColumnarBackend
from repro.storage.dictionary import TermDictionary
from repro.storage.sharded import ShardedBackend
from repro.storage.store import StoredTriple, TripleStore
from repro.storage.statistics import StoreStatistics
from repro.storage.text_index import TokenMatcher, TokenMatch
from repro.storage.persistence import load_store, save_store
from repro.storage.snapshot import load_snapshot, save_snapshot

__all__ = [
    "BACKENDS",
    "ColumnarBackend",
    "DictBackend",
    "ShardedBackend",
    "StorageBackend",
    "TermDictionary",
    "TripleStore",
    "StoredTriple",
    "StoreStatistics",
    "TokenMatcher",
    "TokenMatch",
    "make_backend",
    "register_backend",
    "save_store",
    "load_store",
    "save_snapshot",
    "load_snapshot",
]
