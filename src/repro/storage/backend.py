"""The pluggable storage backend boundary.

The top-k machinery needs a narrow contract from physical storage: *given the
bound-slot signature and key of a triple pattern, enumerate matching triple
ids in descending score order*, plus O(1) id-level access to each triple's
slot ids and sort weight.  Everything above this boundary (cursors, rank
join, scoring) speaks integer ids only, so swapping the physical layout —
hash-bucketed posting lists, columnar arrays, later a sharded or persistent
backend — never touches query processing.

Three backends ship in-tree:

* :class:`DictBackend` — the original hash-index layout
  (:class:`~repro.storage.index.PostingIndex` underneath): one dict per
  bound-slot signature mapping key tuples to posting tuples.
* :class:`~repro.storage.columnar.ColumnarBackend` — compact parallel
  columns (``array('i')`` for s/p/o ids, ``array('d')`` for weights) with
  posting lists represented as index *ranges* into per-signature permutation
  arrays; lookups return zero-copy read-only memoryview slices.  This is
  also the layout the binary snapshot format (:mod:`repro.storage.snapshot`)
  maps back from disk.
* :class:`~repro.storage.sharded.ShardedBackend` — a segmented composite:
  triples hash-partitioned across N inner columnar segments, postings
  answered by a lazy k-way heap merge of the segments' score-sorted lists.

Backends register themselves in :data:`BACKENDS`; :func:`make_backend`
resolves a name (as carried by ``EngineConfig.storage_backend``) to a fresh
instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NoReturn, Protocol, Sequence, runtime_checkable

from repro.errors import StorageError
from repro.storage.index import PostingIndex

if TYPE_CHECKING:
    from concurrent.futures import Executor

    from repro.storage.delta import DeltaSegment


@runtime_checkable
class StorageBackend(Protocol):
    """Physical storage contract for one :class:`~repro.storage.store.TripleStore`.

    Build phase: :meth:`insert` every triple id with its (s, p, o) term ids,
    then :meth:`freeze` once with the per-triple sort weights.  After
    freezing the backend's *frozen* structures are immutable and lookups
    are allowed — until :meth:`close` releases whatever the backend holds
    (mapped snapshot buffers, segment columns); any use after that raises
    :class:`~repro.errors.StorageError`.

    Live ingestion rides on one optional extension: ``attach_delta(delta)``
    hooks a mutable :class:`~repro.storage.delta.DeltaSegment` (ids densely
    above the frozen size) into the lookup surface — ``postings`` merges
    the delta's score-sorted matches behind the same sequence interface,
    and the id-level accessors (:meth:`slot_ids` / :meth:`weight` /
    :meth:`count` / :meth:`__len__`) dispatch delta ids to it.  All three
    in-tree backends implement it; a backend without it simply cannot back
    a live store (``TripleStore`` raises on the first post-freeze add).
    """

    #: Registry name ("dict", "columnar", ...).
    name: str

    @property
    def is_frozen(self) -> bool: ...

    @property
    def closed(self) -> bool: ...

    def close(self) -> None:
        """Release held resources; idempotent.  Lookups afterwards raise."""
        ...

    def __len__(self) -> int:
        """Number of triples inserted."""
        ...

    def insert(self, triple_id: int, slot_ids: tuple[int, int, int]) -> None:
        """Register one triple.  Ids must arrive densely, in order."""
        ...

    def freeze(
        self, weights: Sequence[float], counts: Sequence[int] | None = None
    ) -> None:
        """Finalise: sort posting structures by (weight desc, triple id asc).

        ``counts`` is the optional per-triple observation-count column;
        backends may retain it (the columnar backend does, for
        introspection and future persistence) or ignore it.
        """
        ...

    def postings(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> Sequence[int]:
        """Score-sorted triple ids for a bound-slot lookup.

        The returned sequence is immutable (tuple or read-only memoryview);
        callers may hold it indefinitely without copying.
        """
        ...

    def segment_count(self) -> int:
        """Physical partitions one lookup fans out over (1 for monoliths)."""
        ...

    def segment_postings(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> list[Sequence[int]]:
        """Per-segment score-sorted triple id handles for one lookup.

        Monolithic backends return a one-element list holding the same
        sequence :meth:`postings` would; segmented backends return one
        handle per segment (global ids, each in score order) so callers can
        partition work — or pull — segment by segment.
        """
        ...

    def configure_prefetch(
        self, executor: Executor | None, batch_size: int | None
    ) -> None:
        """Set the shared executor / pull batch used by merged postings.

        A no-op for backends whose postings are already materialised;
        segmented backends use it to prepare segment heads concurrently
        (``batch_size=None`` selects adaptive per-merge sizing, and a
        process-pool executor moves preparation off the GIL for stores
        mapped from directory snapshots).
        """
        ...

    def distinct_keys(self, bound_slots: Sequence[bool]) -> list[tuple[int, ...]]:
        """All keys present for a signature (statistics and mining)."""
        ...

    def slot_ids(self, triple_id: int) -> tuple[int, int, int]:
        """The (s, p, o) term ids of one triple."""
        ...

    def weight(self, triple_id: int) -> float:
        """The sort weight the backend was frozen with."""
        ...

    def count(self, triple_id: int) -> int:
        """The observation count the backend was frozen with.

        Raises :class:`~repro.errors.StorageError` for unknown triple ids
        and when the backend was frozen without a counts column.
        """
        ...


class _ClosedData:
    """Placeholder swapped in for released columns and posting structures.

    Every access path through a closed backend lands on one of these, so
    use-after-close surfaces as :class:`StorageError` instead of a released
    memoryview's ``ValueError`` (mmap case) or silently-working stale data
    (in-memory case) — with zero per-access cost before close.
    """

    def _raise(self) -> NoReturn:
        raise StorageError("Storage backend is closed")

    def __getitem__(self, index: object) -> NoReturn:
        self._raise()

    def __len__(self) -> NoReturn:
        self._raise()

    def __iter__(self) -> NoReturn:
        self._raise()

    def get(self, *args: object) -> NoReturn:
        self._raise()

    def keys(self) -> NoReturn:
        self._raise()

    def values(self) -> NoReturn:
        self._raise()


_CLOSED = _ClosedData()


class DictBackend:
    """Hash-bucketed posting lists — the original storage layout."""

    name = "dict"

    def __init__(self) -> None:
        self._index = PostingIndex()
        self._keys: list[tuple[int, int, int]] = []
        self._weights: Sequence[float] = ()
        self._counts: Sequence[int] | None = None
        self._closed = False
        self._delta: DeltaSegment | None = None

    @property
    def delta(self) -> DeltaSegment | None:
        """The attached mutable delta segment, or ``None``."""
        return self._delta

    def attach_delta(self, delta: DeltaSegment) -> None:
        """Overlay a mutable delta on the frozen index (live ingestion)."""
        if not self.is_frozen:
            raise StorageError("Only a frozen backend can carry a delta")
        if self._closed:
            raise StorageError("Storage backend is closed")
        self._delta = delta

    @property
    def is_frozen(self) -> bool:
        return self._frozen_at_close if self._closed else self._index.is_frozen

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drop the index and columns; further lookups raise StorageError."""
        if self._closed:
            return
        self._frozen_at_close = self._index.is_frozen
        self._closed = True
        self._delta = None
        self._index = _CLOSED
        self._keys = _CLOSED
        self._weights = _CLOSED
        if self._counts is not None:
            self._counts = _CLOSED

    def __len__(self) -> int:
        n = len(self._keys)
        if self._delta is not None:
            n += len(self._delta)
        return n

    def insert(self, triple_id: int, slot_ids: tuple[int, int, int]) -> None:
        if triple_id != len(self._keys):
            raise StorageError(
                f"Triple ids must be dense: expected {len(self._keys)}, "
                f"got {triple_id}"
            )
        self._keys.append(slot_ids)
        self._index.insert(triple_id, slot_ids)

    def freeze(
        self, weights: Sequence[float], counts: Sequence[int] | None = None
    ) -> None:
        if len(weights) != len(self._keys):
            raise StorageError(
                f"{len(self._keys)} triples but {len(weights)} weights"
            )
        if counts is not None:
            if len(counts) != len(self._keys):
                raise StorageError(
                    f"{len(self._keys)} triples but {len(counts)} counts"
                )
            self._counts = tuple(counts)
        self._weights = tuple(weights)
        self._index.freeze(self._weights)

    def postings(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> Sequence[int]:
        if self._closed:
            raise StorageError("Storage backend is closed")
        base = self._index.postings(bound_slots, key)
        if self._delta is None or not len(self._delta):
            return base
        from repro.storage.delta import overlay_postings

        return overlay_postings(
            base, len(self._keys), self._weights, self._delta, bound_slots, key
        )

    def segment_count(self) -> int:
        return 1

    def segment_postings(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> list[Sequence[int]]:
        return [self.postings(bound_slots, key)]

    def configure_prefetch(
        self, executor: Executor | None, batch_size: int | None = 1
    ) -> None:
        """Postings are fully materialised tuples; nothing to prefetch."""

    def distinct_keys(self, bound_slots: Sequence[bool]) -> list[tuple[int, ...]]:
        if self._closed:
            raise StorageError("Storage backend is closed")
        keys = list(self._index.distinct_keys(bound_slots))
        if self._delta is not None and len(self._delta):
            known = set(keys)
            keys.extend(
                key
                for key in self._delta.distinct_keys(bound_slots)
                if key not in known
            )
        return keys

    def slot_ids(self, triple_id: int) -> tuple[int, int, int]:
        if self._delta is not None and triple_id >= len(self._keys):
            return self._delta.slot_ids(triple_id)
        return self._keys[triple_id]

    def weight(self, triple_id: int) -> float:
        if self._delta is not None and triple_id >= len(self._weights):
            return self._delta.weight(triple_id)
        return self._weights[triple_id]

    def count(self, triple_id: int) -> int:
        if self._delta is not None and triple_id >= len(self._keys):
            return self._delta.count(triple_id)
        if not 0 <= triple_id < len(self._keys):
            raise StorageError(f"Unknown triple id: {triple_id}")
        if self._counts is None:
            raise StorageError("Backend was frozen without a counts column")
        return self._counts[triple_id]


#: Name -> constructor registry.  The columnar backend registers itself on
#: import (see bottom of this module); third-party backends may register too.
BACKENDS: dict[str, type] = {DictBackend.name: DictBackend}


def register_backend(cls: type) -> type:
    """Register a backend class under its ``name``.  Usable as a decorator."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise StorageError(f"Backend {cls!r} has no string 'name' attribute")
    BACKENDS[name] = cls
    return cls


def make_backend(backend: "str | StorageBackend | None") -> StorageBackend:
    """Resolve a backend spec: None -> default, name -> new instance."""
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, str):
        cls = BACKENDS.get(backend)
        if cls is None:
            known = ", ".join(sorted(BACKENDS))
            raise StorageError(f"Unknown storage backend {backend!r} (have: {known})")
        return cls()
    if len(backend) or backend.is_frozen:
        raise StorageError("A shared backend instance must be empty and unfrozen")
    return backend


# Imported for the side effect of registering "columnar" and "sharded" in
# BACKENDS; the imports sit below the registry to avoid a cycle.
from repro.storage import columnar as _columnar  # noqa: E402,F401
from repro.storage import sharded as _sharded  # noqa: E402,F401

#: Backend used when a store is built without an explicit choice.  Columnar
#: is the compact, fast layout; "dict" remains available for comparison and
#: as the reference for backend-equivalence tests.
DEFAULT_BACKEND = "columnar"
