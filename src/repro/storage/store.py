"""The triple store: the library's single source of truth for XKG data.

A :class:`TripleStore` is built in two phases.  During the *load* phase,
triples are :meth:`~TripleStore.add`-ed; duplicate statements accumulate
observation counts (the same fact extracted from ten documents is one
distinct triple observed ten times — the tf-like evidence the scoring model
uses) and keep the best confidence plus a bounded sample of provenances.
:meth:`~TripleStore.freeze` then builds the posting-list indexes; afterwards
the store is immutable and supports sorted access.

Physical index layout is delegated to a pluggable
:class:`~repro.storage.backend.StorageBackend` ("columnar" by default,
"dict" for the original hash-index layout); the store also exposes the
id-level accessors (:meth:`spo_ids`, :meth:`weight`, :meth:`postings_ids`)
the id-space execution core runs on.

**Live ingestion.**  Freezing is no longer the end of the write path: an
:meth:`~TripleStore.add` against a frozen store routes the observation
into a mutable :class:`~repro.storage.delta.DeltaSegment` layered on top
of the frozen backend.  New statements get dense ids above the frozen id
space and are immediately visible to every lookup (the backend merges the
delta's score-sorted postings into its own); duplicate evidence for a
statement *already frozen* updates the record's count/confidence/
provenance metadata but leaves the frozen sort weight untouched until the
delta is folded in by compaction (:mod:`repro.storage.compaction`) — the
documented eventual-consistency window that keeps frozen posting order
(and therefore byte-identity with the serial reference) intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Iterator, Sequence

from repro.core.terms import Term
from repro.core.triples import KG_PROVENANCE, Provenance, Triple, TriplePattern
from repro.errors import StorageError
from repro.storage.backend import StorageBackend, make_backend
from repro.storage.delta import DeltaSegment
from repro.storage.dictionary import TermDictionary

#: How many distinct provenance records are retained per triple.  Answer
#: explanations show a sample of sources, not every one of potentially
#: thousands of documents.
MAX_PROVENANCES = 5


@dataclass
class StoredTriple:
    """A distinct triple with aggregated observation evidence."""

    triple: Triple
    count: int = 1
    confidence: float = 1.0
    provenances: list[Provenance] = field(default_factory=list)

    @property
    def weight(self) -> float:
        """Sort/score weight: observations × extraction confidence."""
        return self.count * self.confidence

    def add_provenance(self, provenance: Provenance | None) -> bool:
        """Append one provenance sample; return True if it was retained.

        This is the single code path enforcing the :data:`MAX_PROVENANCES`
        bound — both live :meth:`TripleStore.add` calls and the persistence
        loaders route through it, so no format (hand-edited or future) can
        inflate a record past the documented cap.
        """
        if provenance is None:
            return False
        if len(self.provenances) >= MAX_PROVENANCES:
            return False
        if provenance in self.provenances:
            return False
        self.provenances.append(provenance)
        return True


class TripleStore:
    """Dictionary-encoded triple store with score-sorted posting lists.

    Parameters
    ----------
    name:
        Label used in provenance descriptions and persistence headers.
    backend:
        Storage backend: a registry name ("columnar", "dict") or a fresh
        :class:`~repro.storage.backend.StorageBackend` instance.  ``None``
        selects the default (columnar).
    """

    #: Preferred posting-block granularity for the id-space execution
    #: kernels (``EngineConfig.block_size``).  A class attribute so stores
    #: assembled via ``__new__`` (snapshot restore, ``_adopt_frozen``)
    #: inherit the adaptive default without extra wiring; the engine
    #: overrides it per instance through :meth:`configure_blocks`.
    _block_size: int | None = None

    def __init__(self, name: str = "XKG", backend: str | StorageBackend | None = None):
        self.name = name
        self.dictionary = TermDictionary()
        self._triples: list[StoredTriple] = []
        self._by_key: dict[tuple[int, int, int], int] = {}
        self._backend = make_backend(backend)
        self._weights: Sequence[float] = ()
        self._frozen = False
        self._closed = False
        self._pattern_total_cache: dict[object, float] = {}
        self._delta_records: list[StoredTriple] = []
        self._delta: DeltaSegment | None = None

    @classmethod
    def _adopt_frozen(
        cls,
        name: str,
        dictionary: TermDictionary,
        records: Sequence[StoredTriple],
        by_key: dict[tuple[int, int, int], int] | None,
        backend: StorageBackend,
        weights: Sequence[float],
    ) -> "TripleStore":
        """Assemble an already-frozen store from restored parts.

        Entry point for the snapshot loader (:mod:`repro.storage.snapshot`):
        the backend arrives frozen with its posting structures intact, so no
        re-ingestion and no :meth:`freeze` re-sort happens — posting lists
        are byte-identical to the store the snapshot was written from.
        ``records`` may be a lazy sequence that materialises
        :class:`StoredTriple` objects on demand, and ``by_key`` may be
        ``None`` — the statement-lookup map is then derived from the backend
        columns on first :meth:`lookup`.
        """
        store = cls.__new__(cls)
        store.name = name
        store.dictionary = dictionary
        store._triples = records
        store._by_key = by_key
        store._backend = backend
        store._weights = weights
        store._frozen = True
        store._closed = False
        store._pattern_total_cache = {}
        store._delta_records = []
        store._delta = None
        return store

    def _require_by_key(self) -> dict[tuple[int, int, int], int]:
        """The (s, p, o) id-triple → triple id map, derived lazily if absent."""
        by_key = self._by_key
        if by_key is None:
            slot_ids = self._backend.slot_ids
            total = len(self._triples) + len(self._delta_records)
            by_key = {slot_ids(tid): tid for tid in range(total)}
            self._by_key = by_key
        return by_key

    # -- load phase ------------------------------------------------------------

    def add(
        self,
        triple: Triple,
        provenance: Provenance | None = None,
        confidence: float = 1.0,
        count: int = 1,
    ) -> int:
        """Add one observation of ``triple``; return its triple id.

        Re-adding an existing statement increments its observation count,
        raises its confidence to the max seen, and appends the provenance
        (up to :data:`MAX_PROVENANCES` distinct records).

        Adding to a *frozen* store routes the observation into the mutable
        delta segment: brand-new statements get dense ids above the frozen
        id space and become visible to every lookup immediately, while
        duplicate evidence for an already-frozen statement only updates
        the record's metadata (the frozen sort weight stays fixed until
        compaction folds the delta in).
        """
        if not 0.0 < confidence <= 1.0:
            raise StorageError(f"Confidence must be in (0, 1], got {confidence}")
        if count < 1:
            raise StorageError(f"Observation count must be >= 1, got {count}")
        if provenance is None:
            provenance = KG_PROVENANCE
        if self._frozen:
            return self._add_live(triple, provenance, confidence, count)
        key = (
            self.dictionary.encode(triple.s),
            self.dictionary.encode(triple.p),
            self.dictionary.encode(triple.o),
        )
        existing = self._by_key.get(key)
        if existing is not None:
            record = self._triples[existing]
            record.count += count
            record.confidence = max(record.confidence, confidence)
            record.add_provenance(provenance)
            return existing
        triple_id = len(self._triples)
        self._triples.append(
            StoredTriple(triple, count, confidence, [provenance])
        )
        self._by_key[key] = triple_id
        self._backend.insert(triple_id, key)
        return triple_id

    def _add_live(
        self,
        triple: Triple,
        provenance: Provenance,
        confidence: float,
        count: int,
    ) -> int:
        """Post-freeze write path: absorb one observation into the delta."""
        if self._closed:
            raise StorageError("Store is closed")
        # The dictionary is append-only (lazy snapshot dictionaries encode
        # new terms after materialising), so encoding live terms is safe.
        key = (
            self.dictionary.encode(triple.s),
            self.dictionary.encode(triple.p),
            self.dictionary.encode(triple.o),
        )
        by_key = self._require_by_key()
        base = len(self._triples)
        existing = by_key.get(key)
        if existing is not None:
            record = self.record(existing)
            record.count += count
            record.confidence = max(record.confidence, confidence)
            record.add_provenance(provenance)
            if existing >= base:
                # Delta statements re-sort live; frozen ones keep their
                # frozen sort weight until compaction (documented above).
                self._delta.update(existing, record.weight, record.count)
            self._pattern_total_cache.clear()
            return existing
        delta = self._delta
        if delta is None:
            attach = getattr(self._backend, "attach_delta", None)
            if attach is None:
                raise StorageError(
                    f"Backend {self.backend_name!r} cannot absorb live "
                    f"additions (no delta support)"
                )
            delta = self._delta = DeltaSegment(base)
            attach(delta)
        triple_id = base + len(self._delta_records)
        record = StoredTriple(triple, count, confidence, [provenance])
        self._delta_records.append(record)
        by_key[key] = triple_id
        delta.add(triple_id, key, record.weight, record.count)
        self._pattern_total_cache.clear()
        return triple_id

    def add_all(
        self,
        triples: Sequence[Triple],
        provenance: Provenance | None = None,
        *,
        confidence: float = 1.0,
        count: int = 1,
    ) -> list[int]:
        """Bulk-add facts with shared provenance/confidence/count.

        The confidence and count apply to every triple in the batch, so bulk
        extension loading (one corpus chunk, one extractor confidence) does
        not need per-triple :meth:`add` calls.  Returns the triple ids in
        input order.
        """
        return [
            self.add(triple, provenance, confidence=confidence, count=count)
            for triple in triples
        ]

    def freeze(self) -> "TripleStore":
        """Finalise the store: sort posting lists.  Returns self for chaining."""
        if self._frozen:
            raise StorageError("Store already frozen")
        self._weights = tuple(record.weight for record in self._triples)
        self._backend.freeze(
            self._weights, [record.count for record in self._triples]
        )
        self._frozen = True
        return self

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (mapped snapshot buffers, columns).

        After closing, lookups raise :class:`StorageError`; the distinct-
        triple records and the term dictionary stay readable so answers
        already materialised keep rendering.  Idempotent — the engine's
        context manager calls this on exit.
        """
        if self._closed:
            return
        self._closed = True
        self._delta = None
        # Lazy record tables hold views over the snapshot mapping; release
        # them before the backend unmaps the buffer.
        release = getattr(self._triples, "release", None)
        if release is not None:
            release()
        close = getattr(self._backend, "close", None)
        if close is not None:
            close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- introspection ------------------------------------------------------------

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    @property
    def backend(self) -> StorageBackend:
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    def __len__(self) -> int:
        """Number of *distinct* triples (frozen + live delta)."""
        return len(self._triples) + len(self._delta_records)

    @property
    def delta_size(self) -> int:
        """Distinct statements living in the mutable delta (0 when none)."""
        return len(self._delta_records)

    @property
    def has_delta(self) -> bool:
        return bool(self._delta_records)

    @property
    def delta_version(self) -> int:
        """Monotonic version of the mutable delta segment (0 when none).

        Every accepted live write — a new statement *or* fresh evidence
        for a delta statement — bumps the version, so ``(generation,
        delta_version)`` names the exact data a query sees.  Result caches
        key on it: a changed version can change answers, an unchanged one
        cannot.  Resets with the delta itself at compaction (the
        generation number advances instead).
        """
        delta = self._delta
        return delta.version if delta is not None else 0

    def __contains__(self, triple: Triple) -> bool:
        key = self._encode_key(triple)
        return key is not None and key in self._require_by_key()

    def records(self) -> Iterator[StoredTriple]:
        """Iterate all stored records in id order (frozen, then delta)."""
        if not self._delta_records:
            return iter(self._triples)
        return chain(iter(self._triples), iter(self._delta_records))

    def record(self, triple_id: int) -> StoredTriple:
        if 0 <= triple_id < len(self._triples):
            return self._triples[triple_id]
        local = triple_id - len(self._triples)
        if 0 <= local < len(self._delta_records):
            return self._delta_records[local]
        raise StorageError(f"Unknown triple id: {triple_id}")

    def triple(self, triple_id: int) -> Triple:
        return self.record(triple_id).triple

    def weight(self, triple_id: int) -> float:
        if self._closed:
            raise StorageError("Store is closed")
        if self._frozen:
            if 0 <= triple_id < len(self._weights):
                return self._weights[triple_id]
            local = triple_id - len(self._weights)
            if 0 <= local < len(self._delta_records):
                return self._delta.weight(triple_id)
            raise StorageError(f"Unknown triple id: {triple_id}")
        return self.record(triple_id).weight

    def weights(self) -> Sequence[float]:
        """The per-triple *sort* weight column (index parallel to triple ids).

        With a live delta the frozen column is extended by a dispatching
        view: ids below the frozen size read the frozen column untouched,
        ids above it read the delta's live weights.
        """
        if self._closed:
            raise StorageError("Store is closed")
        if not self._frozen:
            raise StorageError("Weights are materialised at freeze time")
        if not self._delta_records:
            return self._weights
        return _CombinedWeights(self._weights, len(self._triples), self._delta)

    @property
    def block_size(self) -> int | None:
        """Posting-block granularity for block-at-a-time execution.

        ``None`` (the default) adapts: cursors over merged segment postings
        score exactly what each batched pull materialised, monolithic
        posting views use the kernels' default block.  ``1`` selects the
        per-item reference path (the property suite's oracle).
        """
        return self._block_size

    def configure_blocks(self, block_size: int | None) -> None:
        """Set the preferred posting-block size (``None`` = adaptive)."""
        if block_size is not None and block_size < 1:
            raise StorageError(
                f"Block size must be >= 1 or None, got {block_size}"
            )
        self._block_size = block_size

    def spo_ids(self, triple_id: int) -> tuple[int, int, int]:
        """The (s, p, o) term ids of one stored triple.

        Validates the id; hot loops that walk trusted posting lists read
        ``backend.slot_ids`` / :meth:`weights` directly instead.
        """
        if not 0 <= triple_id < len(self):
            raise StorageError(f"Unknown triple id: {triple_id}")
        return self._backend.slot_ids(triple_id)

    def total_observations(self) -> float:
        """Collection-wide observation mass (for smoothing).

        A frozen store reads its weight column (identical values in the same
        id order, so the float sum is bit-identical) — no
        :class:`StoredTriple` is materialised for it.  Delta weights extend
        the sum in id order, which keeps the float accumulation sequence —
        and therefore the result bits — equal to a fresh build over the
        union.
        """
        if self._frozen:
            total = sum(self._weights)
            delta = self._delta
            if delta is not None:
                base = len(self._triples)
                for triple_id in range(base, base + len(self._delta_records)):
                    total += delta.weight(triple_id)
            return total
        return sum(record.weight for record in self._triples)

    def num_token_triples(self) -> int:
        """Distinct triples with a token in any slot (the XKG extension part)."""
        if self._frozen:
            token_ids = set(self.dictionary.ids_of_kind("token"))
            if not token_ids:
                return 0
            slot_ids = self._backend.slot_ids
            return sum(
                1
                for tid in range(len(self))
                if not token_ids.isdisjoint(slot_ids(tid))
            )
        return sum(1 for r in self._triples if r.triple.is_token_triple)

    def num_kg_triples(self) -> int:
        """Distinct triples whose every slot is canonical (KG part)."""
        return len(self) - self.num_token_triples()

    # -- lookup ------------------------------------------------------------

    def _encode_key(self, triple: Triple) -> tuple[int, int, int] | None:
        ids = tuple(self.dictionary.id_of(t) for t in triple.terms())
        if any(i is None for i in ids):
            return None
        return ids  # type: ignore[return-value]

    def lookup(self, triple: Triple) -> StoredTriple | None:
        """Return the stored record for an exact statement, if present."""
        key = self._encode_key(triple)
        if key is None:
            return None
        triple_id = self._require_by_key().get(key)
        return None if triple_id is None else self.record(triple_id)

    def sorted_ids(self, pattern: TriplePattern) -> Sequence[int]:
        """Triple ids matching the pattern's *constant slots*, best first.

        Token constants match exactly (same normalised phrase); fuzzy token
        expansion is layered on top by :class:`~repro.storage.text_index.
        TokenMatcher`.  Patterns with repeated variables need post-filtering
        — use :meth:`matches` or filter via ``pattern.bind``.  The returned
        sequence is immutable and owned by the backend.
        """
        if self._closed:
            raise StorageError("Store is closed")
        if not self._frozen:
            raise StorageError("Store must be frozen before lookup")
        bound = [t.is_constant for t in pattern.terms()]
        key: list[int] = []
        for term in pattern.terms():
            if term.is_constant:
                term_id = self.dictionary.id_of(term)
                if term_id is None:
                    return ()
                key.append(term_id)
        return self._backend.postings(bound, tuple(key))

    def postings_ids(
        self, s: int | None, p: int | None, o: int | None
    ) -> Sequence[int]:
        """Score-sorted triple ids for an id-level lookup (None = unbound).

        This is the hot-path twin of :meth:`sorted_ids` for callers that
        already hold term ids (the id-space sub-join evaluator).
        """
        if self._closed:
            raise StorageError("Store is closed")
        if not self._frozen:
            raise StorageError("Store must be frozen before lookup")
        bound = (s is not None, p is not None, o is not None)
        key = tuple(i for i in (s, p, o) if i is not None)
        return self._backend.postings(bound, key)

    def _has_repeated_variable(self, pattern: TriplePattern) -> bool:
        names = [t for t in pattern.terms() if t.is_variable]
        return len(names) != len(set(names))

    def matches(self, pattern: TriplePattern) -> list[StoredTriple]:
        """All records matching ``pattern`` exactly, best-scoring first."""
        ids = self.sorted_ids(pattern)
        if self._has_repeated_variable(pattern):
            return [
                self.record(i)
                for i in ids
                if pattern.bind(self.record(i).triple) is not None
            ]
        return [self.record(i) for i in ids]

    def cardinality(self, pattern: TriplePattern) -> int:
        """Number of distinct triples matching ``pattern``'s constants.

        Repeated-variable patterns are counted directly on the id columns —
        no :class:`StoredTriple` lists are materialised just to be measured
        (cardinality is called per pattern per sub-join ordering, so this
        sits on the planning path).
        """
        ids = self.sorted_ids(pattern)
        if not self._has_repeated_variable(pattern):
            return len(ids)
        first_position: dict[Term, int] = {}
        repeat_pairs: list[tuple[int, int]] = []
        for position, term in enumerate(pattern.terms()):
            if term.is_variable:
                seen_at = first_position.setdefault(term, position)
                if seen_at != position:
                    repeat_pairs.append((seen_at, position))
        slot_ids = self._backend.slot_ids
        total = 0
        for tid in ids:
            spo = slot_ids(tid)
            if all(spo[a] == spo[b] for a, b in repeat_pairs):
                total += 1
        return total

    def observation_mass(self, pattern: TriplePattern) -> float:
        """Total observation weight of the pattern's matches (idf-like term).

        Cached per pattern since scoring asks repeatedly for the same
        pattern during top-k processing.
        """
        cache_key = (pattern.s, pattern.p, pattern.o)
        cached = self._pattern_total_cache.get(cache_key)
        if cached is not None:
            return cached
        weights = self.weights() if self._frozen else self._weights
        total = sum(weights[i] for i in self.sorted_ids(pattern))
        self._pattern_total_cache[cache_key] = total
        return total

    def terms_of_kind(self, kind: str) -> list[Term]:
        """All distinct terms of a kind appearing anywhere in the store."""
        return [self.dictionary.decode(i) for i in self.dictionary.ids_of_kind(kind)]

    # -- backend conversion ------------------------------------------------------------

    def convert(self, backend: str | StorageBackend) -> "TripleStore":
        """A copy of this store on a different backend.

        Records are re-added in id order (frozen records first, then any
        live delta records), so triple ids, dictionary ids, and posting
        orders are identical to a fresh build over the same statements —
        the conversion is observationally transparent to query processing.
        This is also the rebuild path compaction uses to fold a delta into
        a fresh frozen store.
        """
        clone = TripleStore(self.name, backend=backend)
        for record in self.records():
            key = (
                clone.dictionary.encode(record.triple.s),
                clone.dictionary.encode(record.triple.p),
                clone.dictionary.encode(record.triple.o),
            )
            triple_id = len(clone._triples)
            clone._triples.append(
                StoredTriple(
                    record.triple,
                    record.count,
                    record.confidence,
                    list(record.provenances),
                )
            )
            clone._by_key[key] = triple_id
            clone._backend.insert(triple_id, key)
        if self._frozen:
            clone.freeze()
        return clone


class _CombinedWeights:
    """Frozen weight column extended by the live delta's weights.

    Indexable by any current triple id: ids below the frozen size read the
    frozen column (same objects, same bits), ids above it dispatch to the
    delta.  Hot loops cache one instance per cursor open, so the dispatch
    branch is paid only on delta ids.
    """

    __slots__ = ("_frozen", "_base", "_delta")

    def __init__(self, frozen: Sequence[float], base: int, delta: DeltaSegment):
        self._frozen = frozen
        self._base = base
        self._delta = delta

    def __getitem__(self, triple_id: int) -> float:
        if triple_id < self._base:
            return self._frozen[triple_id]
        return self._delta.weight(triple_id)

    def __len__(self) -> int:
        return self._base + len(self._delta)

    def __iter__(self) -> Iterator[float]:
        yield from self._frozen
        delta = self._delta
        for triple_id in range(self._base, self._base + len(delta)):
            yield delta.weight(triple_id)
