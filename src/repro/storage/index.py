"""Posting-list indexes over encoded triples.

For every *bound-slot signature* of a triple pattern (P bound; S and P bound;
S, P and O bound; ...) there is one hash index mapping the tuple of bound term
ids to a posting list of triple ids.  Posting lists are sorted once at freeze
time by descending observation weight (observation count × confidence), which
is the quantity all pattern scores are monotone in — so *sorted access in
score order*, the primitive of top-k processing, is a plain array walk.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import StorageError

#: The seven non-scan signatures, each a tuple of bound slot positions
#: (0 = subject, 1 = predicate, 2 = object).
SIGNATURES: tuple[tuple[int, ...], ...] = (
    (0,),
    (1,),
    (2,),
    (0, 1),
    (0, 2),
    (1, 2),
    (0, 1, 2),
)


def signature_of(bound_slots: Sequence[bool]) -> tuple[int, ...]:
    """Map a per-slot boundness mask to a signature tuple.

    >>> signature_of([True, True, False])
    (0, 1)
    """
    return tuple(i for i, bound in enumerate(bound_slots) if bound)


class PostingIndex:
    """Holds one posting-list dictionary per signature plus a global scan list.

    Build phase: :meth:`insert` each triple id with its slot ids, then call
    :meth:`freeze` with the per-triple sort weights.  Lookup before freezing
    raises, guaranteeing callers never observe unsorted lists.
    """

    def __init__(self):
        # Buckets are mutable lists during the build phase; freeze() replaces
        # them (and the scan list) with tuples.
        self._lists: dict[tuple[int, ...], dict[tuple[int, ...], Sequence[int]]] = {
            sig: {} for sig in SIGNATURES
        }
        self._scan: Sequence[int] = []
        self._frozen = False

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    def insert(self, triple_id: int, slot_ids: tuple[int, int, int]) -> None:
        """Register a triple under every signature key it matches."""
        if self._frozen:
            raise StorageError("Cannot insert into a frozen index")
        self._scan.append(triple_id)
        for sig in SIGNATURES:
            key = tuple(slot_ids[slot] for slot in sig)
            bucket = self._lists[sig].setdefault(key, [])
            bucket.append(triple_id)

    def freeze(self, weights: Sequence[float]) -> None:
        """Sort every posting list by (weight desc, triple id asc).

        ``weights[i]`` is the sort weight of triple id ``i``.  Ascending id as
        tie-break keeps ordering deterministic.  Posting lists are converted
        to tuples here so no caller can ever mutate the index through a
        returned list.
        """
        if self._frozen:
            raise StorageError("Index already frozen")

        def order(tid: int) -> tuple[float, int]:
            return (-weights[tid], tid)

        self._scan = tuple(sorted(self._scan, key=order))
        for sig, sig_lists in self._lists.items():
            self._lists[sig] = {
                key: tuple(sorted(posting, key=order))
                for key, posting in sig_lists.items()
            }
        self._frozen = True

    def postings(
        self, bound_slots: Sequence[bool], key: tuple[int, ...]
    ) -> tuple[int, ...]:
        """Return the posting list (score-sorted triple ids) for a lookup.

        ``bound_slots`` marks which of S/P/O are constants; ``key`` carries
        the term ids of the bound slots in S, P, O order.  An all-variables
        lookup returns the global scan list.  Postings are immutable tuples.
        """
        if not self._frozen:
            raise StorageError("Index must be frozen before lookup")
        sig = signature_of(bound_slots)
        if not sig:
            return self._scan
        if len(key) != len(sig):
            raise StorageError(
                f"Key arity {len(key)} does not match signature {sig}"
            )
        return self._lists[sig].get(key, _EMPTY)

    def distinct_keys(self, bound_slots: Sequence[bool]) -> list[tuple[int, ...]]:
        """All keys present for a signature (used by statistics and mining)."""
        sig = signature_of(bound_slots)
        if not sig:
            raise StorageError("The scan signature has no keys")
        return list(self._lists[sig].keys())


_EMPTY: tuple[int, ...] = ()
