"""TriniT — exploratory querying of extended knowledge graphs.

A faithful reproduction of *"Exploratory Querying of Extended Knowledge
Graphs"* (Yahya, Berberich, Ramanath, Weikum — PVLDB 9(13), 2016) and the
system machinery it demonstrates: extended knowledge graphs that combine a
curated KG with Open IE token triples, an extended triple-pattern query
language, weighted query relaxation, query-likelihood answer scoring, and
adaptive top-k query processing with incremental merging — plus answer
explanation and query suggestion.

Quickstart::

    from repro import TriniT

    engine = TriniT.from_triples(kg_triples, extension_triples)
    answers = engine.ask("SELECT ?x WHERE AlbertEinstein affiliation ?x")
    print(answers.render_table())

Session lifecycle, streaming and batch querying::

    with TriniT.open("xkg.snap") as engine:
        stream = engine.stream("?x 'works at' ?y")
        first = stream.next_k(10)     # anytime: resumes, never recomputes
        more = stream.next_k(10)
        results = engine.ask_many(["?x bornIn ?y", "?x type city"], k=5)
"""

from repro.core import (
    Answer,
    AnswerSet,
    AnswerStream,
    EngineConfig,
    QueryStats,
    Explanation,
    Literal,
    Provenance,
    Query,
    QuerySuggester,
    Resource,
    Suggestion,
    Term,
    TextToken,
    TriniT,
    Triple,
    TriplePattern,
    Variable,
    parse_pattern,
    parse_query,
    parse_rule,
    term_from_text,
)
from repro.errors import TrinitError
from repro.relax import RelaxationRule, RuleSet
from repro.storage import (
    TripleStore,
    load_snapshot,
    load_store,
    save_snapshot,
    save_store,
)
from repro.topk import ProcessorConfig, TopKDriver, TopKProcessor

__version__ = "1.0.0"

__all__ = [
    "TriniT",
    "EngineConfig",
    "ProcessorConfig",
    "TopKDriver",
    "TopKProcessor",
    "TripleStore",
    "save_store",
    "load_store",
    "save_snapshot",
    "load_snapshot",
    "Term",
    "Resource",
    "Literal",
    "TextToken",
    "Variable",
    "term_from_text",
    "Triple",
    "TriplePattern",
    "Provenance",
    "Query",
    "parse_query",
    "parse_pattern",
    "parse_rule",
    "Answer",
    "AnswerSet",
    "AnswerStream",
    "QueryStats",
    "Explanation",
    "Suggestion",
    "QuerySuggester",
    "RelaxationRule",
    "RuleSet",
    "TrinitError",
    "__version__",
]
