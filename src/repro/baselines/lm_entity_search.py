"""Language-model entity search over virtual entity documents.

The IR family of comparators (Balog et al., ACM TOIS 2011): every entity is
represented by the *virtual document* of all corpus sentences mentioning it
(FACC1-style annotations supply the mentions, as they did for the paper's
competitors); a structured query is flattened to a bag of words; entities
are ranked by smoothed query likelihood.

Strong where text is plentiful and the query is about one entity; weak on
the join-intensive queries TriniT is geared for — it cannot represent the
join at all, which is exactly the qualitative gap the paper reports.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Iterable

from repro.core.query import Query
from repro.core.terms import Resource, Term, Variable
from repro.openie.corpus import Document
from repro.util.text import camel_to_words, stem, tokenize_phrase


def _content_words(text: str) -> list[str]:
    return [stem(tok) for tok in tokenize_phrase(text) if len(tok) > 1]


class LmEntitySearchBaseline:
    """Query-likelihood retrieval over entity virtual documents.

    Parameters
    ----------
    documents:
        The annotated corpus.
    mu:
        Dirichlet smoothing parameter.
    """

    name = "lm-entity-search"

    def __init__(self, documents: Iterable[Document], mu: float = 200.0):
        self.mu = mu
        self._entity_docs: dict[str, Counter] = defaultdict(Counter)
        self._collection: Counter = Counter()
        for document in documents:
            for sentence in document.sentences:
                words = _content_words(sentence.text)
                self._collection.update(words)
                for mention in sentence.mentions:
                    self._entity_docs[mention.entity_id].update(words)
        self._collection_total = sum(self._collection.values()) or 1
        self._doc_totals = {
            entity: sum(bag.values()) for entity, bag in self._entity_docs.items()
        }

    def _query_words(self, query: Query) -> list[str]:
        words: list[str] = []
        for pattern in query.patterns:
            for term in pattern.terms():
                if isinstance(term, Variable):
                    continue
                if isinstance(term, Resource):
                    words.extend(_content_words(camel_to_words(term.name)))
                else:
                    words.extend(_content_words(term.lexical()))
        return words

    def score(self, entity_id: str, query_words: list[str]) -> float:
        """Dirichlet-smoothed log query likelihood of the entity document."""
        bag = self._entity_docs.get(entity_id)
        if bag is None:
            return float("-inf")
        doc_total = self._doc_totals[entity_id]
        log_likelihood = 0.0
        for word in query_words:
            collection_p = self._collection.get(word, 0) / self._collection_total
            numerator = bag.get(word, 0) + self.mu * collection_p
            denominator = doc_total + self.mu
            probability = numerator / denominator if denominator else 0.0
            log_likelihood += math.log(probability) if probability > 0 else -30.0
        return log_likelihood

    def rank(self, query: Query, target: Variable, k: int) -> list[Term]:
        query_words = self._query_words(query)
        if not query_words:
            return []
        scored = [
            (self.score(entity_id, query_words), entity_id)
            for entity_id in self._entity_docs
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [Resource(entity_id) for _score, entity_id in scored[:k]]
