"""The system protocol shared by TriniT and every baseline."""

from __future__ import annotations

from typing import Protocol

from repro.core.query import Query
from repro.core.terms import Term, Variable


class System(Protocol):
    """Anything the evaluation runner can score.

    ``rank`` returns the system's ranked terms for the benchmark query's
    target variable — the entity (or phrase) answers graded against the
    world-derived judgments.
    """

    name: str

    def rank(self, query: Query, target: Variable, k: int) -> list[Term]: ...
