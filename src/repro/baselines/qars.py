"""QaRS-style query relaxation on the KG only.

Fokou et al.'s QaRS (EDBT 2015) offers automatic and manual query relaxation
over a plain KG — "however, there is no attempt to address KG
incompleteness" (Section 6).  Our representative is literally TriniT's own
relaxation and top-k machinery pointed at the *KG-only* store: rules are
mined from the KG (AMIE-style + inversions) and user alias rules apply, but
there are no token triples to relax into.  The gap between this baseline and
full TriniT therefore measures exactly the XKG's contribution.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.query import Query
from repro.core.results import QueryStats
from repro.core.terms import Term, Variable
from repro.relax.amie import mine_amie_rules
from repro.relax.rules import RelaxationRule, RuleSet
from repro.relax.structural import inversion_rules
from repro.storage.statistics import StoreStatistics
from repro.storage.store import TripleStore
from repro.topk.processor import ProcessorConfig, TopKProcessor


class QarsBaseline:
    """Relaxation-enabled top-k querying over a KG-only store."""

    name = "qars-kg-relaxation"

    def __init__(
        self,
        store: TripleStore,
        extra_rules: Iterable[RelaxationRule] = (),
        config: ProcessorConfig | None = None,
    ):
        statistics = StoreStatistics(store)
        rules = RuleSet(extra_rules)
        rules.extend(mine_amie_rules(statistics, min_support=2, min_confidence=0.2))
        rules.extend(inversion_rules(statistics, min_support=2))
        self.processor = TopKProcessor(
            store,
            rules=rules,
            config=config if config is not None else ProcessorConfig(),
        )
        #: Cumulative driver statistics of the last :meth:`rank` call —
        #: same counters (including the streaming fields) as full TriniT's,
        #: so efficiency comparisons against the baseline are apples to
        #: apples.
        self.last_stats: QueryStats = QueryStats()

    def rank(self, query: Query, target: Variable, k: int) -> list[Term]:
        """Top-``k`` distinct terms for ``target``, KG-relaxation only.

        Runs on the same resumable driver as the full system: the top-k
        answers come from one settled drain (identical to the eager answer
        set), and the driver's statistics are kept for comparison.
        """
        driver = self.processor.driver(query)
        answers = driver.advance(k).ranked(k)
        self.last_stats = driver.stats
        ranked: list[Term] = []
        seen: set[Term] = set()
        for answer in answers:
            try:
                term = answer.value(target)
            except KeyError:
                continue
            if term not in seen:
                seen.add(term)
                ranked.append(term)
        return ranked[:k]
