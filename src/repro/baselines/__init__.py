"""Baseline systems for the evaluation (Section 4's comparison).

The demo paper reports TriniT at NDCG@5 = 0.775 with "the next best
state-of-the-art system" at 0.419; its Related Work names the system
families.  One representative per family is implemented here, all sharing
the :class:`System` protocol used by the evaluation runner:

* :mod:`strict_sparql` — exact triple-pattern evaluation on the curated KG
  (what a SPARQL endpoint gives a user, no relaxation, no XKG);
* :mod:`lm_entity_search` — language-model entity search over virtual entity
  documents built from the annotated corpus (the Balog-style IR family);
* :mod:`slq` — SLQ-style schemaless graph querying: structural matching on
  the KG with string/semantic label transformations but no XKG and no
  structural relaxation;
* :mod:`qars` — QaRS-style relaxation on the KG only: TriniT's relaxation
  machinery without the XKG extension.
"""

from repro.baselines.base import System
from repro.baselines.strict_sparql import StrictSparqlBaseline
from repro.baselines.lm_entity_search import LmEntitySearchBaseline
from repro.baselines.slq import SlqBaseline
from repro.baselines.qars import QarsBaseline
from repro.baselines.trinit_system import TrinitSystem

__all__ = [
    "System",
    "StrictSparqlBaseline",
    "LmEntitySearchBaseline",
    "SlqBaseline",
    "QarsBaseline",
    "TrinitSystem",
]
