"""TriniT wrapped in the evaluation System protocol."""

from __future__ import annotations

from repro.core.engine import TriniT
from repro.core.query import Query
from repro.core.terms import Term, Variable


class TrinitSystem:
    """Adapter: a (possibly ablated) TriniT engine as an evaluation system."""

    def __init__(self, engine: TriniT, name: str = "trinit"):
        self.engine = engine
        self.name = name

    def rank(self, query: Query, target: Variable, k: int) -> list[Term]:
        answers = self.engine.ask(query, k)
        ranked: list[Term] = []
        seen: set[Term] = set()
        for answer in answers:
            try:
                term = answer.value(target)
            except KeyError:
                continue
            if term not in seen:
                seen.add(term)
                ranked.append(term)
        return ranked[:k]
