"""SLQ-style schemaless graph querying on the curated KG.

Yang et al.'s SLQ (PVLDB 2014) matches query graphs against a data graph
through a library of *transformations* (synonym, abbreviation, ontology)
over node and edge labels, scoring matches by a weighted combination of
transformation similarities.  Our representative: each query pattern's
constants may be transformed into KG terms whose surface words overlap
(token-set similarity), the transformed conjunctive query is evaluated
exactly, and the answer score is the product of transformation similarities.

No XKG and no structural relaxation — the two TriniT capabilities the paper
positions against this family ("both of these projects assume a fixed
dataset ... none of this related work considers the power of query
relaxation").
"""

from __future__ import annotations

import itertools

from repro.core.query import Query
from repro.core.terms import Resource, Term, TextToken, Variable
from repro.core.triples import TriplePattern
from repro.scoring.language_model import PatternScorer
from repro.storage.statistics import StoreStatistics
from repro.storage.store import TripleStore
from repro.topk.exhaustive import naive_join
from repro.util.text import camel_to_words, dice, stem, tokenize_phrase


def _label_tokens(term: Term) -> frozenset[str]:
    if isinstance(term, Resource):
        text = camel_to_words(term.name)
    else:
        text = term.lexical()
    return frozenset(stem(tok) for tok in tokenize_phrase(text) if len(tok) > 1)


class SlqBaseline:
    """Transformation-based matching over one KG store."""

    name = "slq-schemaless"

    def __init__(
        self,
        store: TripleStore,
        *,
        max_transformations_per_term: int = 4,
        min_similarity: float = 0.34,
        max_query_variants: int = 32,
    ):
        self.store = store
        self.scorer = PatternScorer(store)
        self.statistics = StoreStatistics(store)
        self.max_transformations_per_term = max_transformations_per_term
        self.min_similarity = min_similarity
        self.max_query_variants = max_query_variants
        # Label token index for every predicate and every entity in the KG.
        self._predicate_labels = [
            (p, _label_tokens(p)) for p in self.statistics.predicates()
        ]

    def _transformations(self, term: Term, is_predicate: bool) -> list[tuple[Term, float]]:
        """Candidate KG terms for a query constant, best first.

        Identity (similarity 1.0) is included when the term exists in the
        KG; otherwise only transformed candidates remain.
        """
        options: list[tuple[Term, float]] = []
        if self.store.dictionary.id_of(term) is not None:
            options.append((term, 1.0))
        query_tokens = _label_tokens(term)
        if query_tokens and is_predicate:
            for predicate, label in self._predicate_labels:
                if predicate == term or not label:
                    continue
                similarity = dice(set(query_tokens), set(label))
                if similarity >= self.min_similarity:
                    options.append((predicate, similarity))
        options.sort(key=lambda o: (-o[1], o[0].sort_key()))
        return options[: self.max_transformations_per_term]

    def _variants(self, query: Query) -> list[tuple[Query, float]]:
        """Transformed query variants with their similarity products."""
        per_pattern: list[list[tuple[TriplePattern, float]]] = []
        for pattern in query.patterns:
            slot_options: list[list[tuple[Term, float]]] = []
            for slot, term in enumerate(pattern.terms()):
                if isinstance(term, Variable):
                    slot_options.append([(term, 1.0)])
                else:
                    found = self._transformations(term, is_predicate=(slot == 1))
                    slot_options.append(found if found else [(term, 0.0)])
            combos = [
                (TriplePattern(s[0], p[0], o[0]), s[1] * p[1] * o[1])
                for s, p, o in itertools.product(*slot_options)
            ]
            combos = [c for c in combos if c[1] > 0.0]
            per_pattern.append(combos if combos else [(pattern, 0.0)])

        variants: list[tuple[Query, float]] = []
        for combination in itertools.product(*per_pattern):
            weight = 1.0
            patterns = []
            for pattern, similarity in combination:
                weight *= similarity
                patterns.append(pattern)
            if weight <= 0.0:
                continue
            try:
                variants.append((Query(patterns, query.projection, query.limit), weight))
            except Exception:
                continue
        variants.sort(key=lambda v: -v[1])
        return variants[: self.max_query_variants]

    def rank(self, query: Query, target: Variable, k: int) -> list[Term]:
        best: dict[Term, float] = {}
        for variant, weight in self._variants(query):
            for binding, score in naive_join(self.store, self.scorer, variant):
                for var, term in binding:
                    if var == target:
                        total = weight * score
                        if total > best.get(term, 0.0):
                            best[term] = total
                        break
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0].sort_key()))
        return [term for term, _score in ranked[:k]]
