"""Strict SPARQL-style evaluation on the curated KG.

What a user gets from a plain SPARQL endpoint: exact matching of every
triple pattern, no vocabulary translation, no extension data.  This is the
floor the paper's motivation section is about — users A–D all get empty or
wrong results here.  Ranking among exact matches uses the same
query-likelihood scores as TriniT so the comparison isolates *matching*
behaviour, not ranking tweaks.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.core.terms import Term, Variable
from repro.scoring.language_model import PatternScorer
from repro.storage.store import TripleStore
from repro.topk.exhaustive import naive_join


class StrictSparqlBaseline:
    """Exact conjunctive evaluation over one (KG-only) store."""

    name = "strict-sparql"

    def __init__(self, store: TripleStore, scorer: PatternScorer | None = None):
        self.store = store
        self.scorer = scorer if scorer is not None else PatternScorer(store)

    def rank(self, query: Query, target: Variable, k: int) -> list[Term]:
        results = naive_join(self.store, self.scorer, query)
        ranked: list[Term] = []
        seen: set[Term] = set()
        for binding, _score in results:
            for var, term in binding:
                if var == target and term not in seen:
                    seen.add(term)
                    ranked.append(term)
                    break
            if len(ranked) >= k:
                break
        return ranked
