"""The query service front-end: a stdlib HTTP/SSE server over one engine.

The engine (:class:`repro.core.engine.TriniT`) has everything a server
needs — an ``open()``/``close()`` lifecycle, resumable
:class:`~repro.core.results.AnswerStream` pagination, concurrent
``ask_many`` and live ``ingest()``/compaction — but no network surface.
This package is that surface, built on nothing but the standard library
(``asyncio`` streams, hand-rolled HTTP/1.1 and Server-Sent-Events
framing; the project has zero runtime dependencies and keeps it that
way):

* :mod:`repro.serve.http` — :class:`QueryService`: request routing for
  ``POST /query`` (eager ask), ``GET /stream`` (SSE answers with
  resumable session ids), ``POST /ingest``, ``GET /healthz`` and
  ``GET /metrics``;
* :mod:`repro.serve.cache` — :class:`ResultCache`: a bounded LRU+TTL
  result cache keyed on (normalized query, k, snapshot identity),
  invalidated at the engine's store-swap quiet point;
* :mod:`repro.serve.admission` — :class:`AdmissionController`:
  semaphore-based admission with a bounded wait queue and per-request
  timeouts, shedding 429/503 instead of piling work onto the engine;
* :mod:`repro.serve.metrics` — :class:`ServerMetrics`: server counters,
  latency percentile rings and cumulative
  :class:`~repro.core.results.QueryStats` (via its ``merge()``/``diff()``
  algebra) rendered as JSON and Prometheus text exposition;
* :mod:`repro.serve.client` — :class:`ServeClient`: the tiny blocking
  HTTP/SSE client the tests and the traffic bench drive the server with.

``python -m repro.serve <snapshot>`` boots a server from the command
line (see :mod:`repro.serve.__main__`).
"""

from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, StreamBatch
from repro.serve.http import QueryService, ServeConfig
from repro.serve.metrics import LatencyRing, ServerMetrics

__all__ = [
    "AdmissionController",
    "LatencyRing",
    "Overloaded",
    "QueryService",
    "ResultCache",
    "ServeClient",
    "ServeConfig",
    "ServerMetrics",
    "StreamBatch",
]
