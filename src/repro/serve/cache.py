"""Bounded LRU+TTL result cache for the query service.

One entry caches the fully serialised response payload of an eager
``POST /query`` — the part of the request whose recomputation the paper's
interactive workload repeats most (a few heavy-hitter queries dominate a
Zipfian mix).  Keys are ``(normalized query, k, snapshot identity)``:

* *normalized query* — the parsed query rendered back to canonical text
  (``Query.n3()``), so surface variants of the same query share an entry;
* *k* — answers requested (a prefix of a larger k is **not** served from
  a smaller k's entry; prefix-stability would allow serving fewer, but
  never more);
* *snapshot identity* — :meth:`repro.core.engine.TriniT.snapshot_identity`,
  which changes on every visible data change (live ingest bumps the
  delta version, compaction bumps the generation).  A stale entry
  therefore can never be *returned* — its key no longer matches — but it
  would still occupy space, which is why the service also subscribes to
  the engine's store-swap quiet point and calls :meth:`ResultCache.flush`
  the moment a compaction adopts a new store.

The cache is a plain ``OrderedDict`` LRU under a mutex (entries are
touched from the event loop *and* from executor threads), with lazy TTL
expiry on read and full hit/miss/eviction/flush accounting for the
metrics surface.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable

#: Key type: (normalized query text, k, snapshot identity token).
CacheKey = Hashable


class ResultCache:
    """Thread-safe bounded LRU with per-entry TTL and hit accounting.

    Parameters
    ----------
    max_entries:
        LRU bound; inserting past it evicts the least recently used
        entry.  ``0`` disables caching entirely (every ``get`` is a miss,
        ``put`` is a no-op) — the service's ``cache_size=0`` knob.
    ttl:
        Seconds an entry stays servable after insertion.  ``None`` means
        entries never expire by age (the snapshot-identity key component
        and the swap-point flush still bound staleness).
    clock:
        Injectable monotonic clock (tests freeze it).
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl: float | None = 300.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, tuple[float, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.flushes = 0
        self.flushed_entries = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> Any | None:
        """The cached value, or ``None`` (miss/expired) — with accounting."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            inserted, value = entry
            if self.ttl is not None and now - inserted > self.ttl:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: CacheKey, value: Any) -> None:
        """Insert/refresh ``key``, evicting LRU entries past the bound."""
        if self.max_entries == 0:
            return
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = (self._clock(), value)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def flush(self) -> int:
        """Drop every entry (store-swap invalidation); returns the count.

        Wired to :meth:`repro.core.engine.TriniT.on_store_swap` so a
        compaction that adopts a new store empties the cache at the same
        quiet point — entries keyed on the retired snapshot identity
        could never be served again anyway, this reclaims their memory
        immediately and makes the invalidation observable in
        ``/metrics`` (``flushes``/``flushed_entries``).
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.flushes += 1
            self.flushed_entries += dropped
            return dropped

    def stats(self) -> dict[str, int | float]:
        """Counter snapshot for the metrics surface."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_ratio": (self.hits / lookups) if lookups else 0.0,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "flushes": self.flushes,
                "flushed_entries": self.flushed_entries,
            }
