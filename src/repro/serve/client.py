"""A tiny blocking HTTP/SSE client for the query service.

Used by the integration tests and the traffic bench's ``--server`` mode;
also a worked example of the wire protocol for real clients.  Built on
``http.client`` only.  The client keeps one persistent connection and
reuses it while the server answers ``Connection: keep-alive``; when a
kept-alive socket turns out stale (the server's idle timeout or request
budget closed it between requests), the request is retried exactly once
on a fresh connection.  SSE responses are EOF-framed — the server closes
after the event stream, so the connection is dropped there.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from http.client import HTTPConnection, HTTPException

from repro.errors import TrinitError


class ServeError(TrinitError):
    """A non-2xx response from the query service."""

    def __init__(self, status: int, payload):
        message = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


@dataclass
class StreamBatch:
    """One ``GET /stream`` response, parsed.

    ``answers`` are the batch's ``answer`` event payloads (rank, binding,
    score, …) in emission order; ``session`` is what the next request
    passes to resume; ``meta``/``end`` carry the framing events' payloads
    (``end`` is ``None`` when the batch ended with an ``error`` event,
    which is then in ``error``).
    """

    session: str
    answers: list[dict] = field(default_factory=list)
    meta: dict | None = None
    end: dict | None = None
    error: dict | None = None

    @property
    def exhausted(self) -> bool:
        return bool(self.end and self.end.get("exhausted"))


def parse_sse(body: str) -> list[tuple[str, dict]]:
    """Parse an SSE byte stream into ``(event, data)`` pairs.

    Minimal by design: the service emits one ``event:`` line and one
    ``data:`` line (JSON) per event, blank-line separated — exactly the
    subset this parses.
    """
    events: list[tuple[str, dict]] = []
    event, data_lines = None, []
    for line in body.split("\n"):
        line = line.rstrip("\r")
        if not line:
            if event is not None or data_lines:
                data = "\n".join(data_lines)
                events.append((event or "message", json.loads(data) if data else {}))
            event, data_lines = None, []
            continue
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:"):].strip())
        # Comment lines (":" prefix) and unknown fields are ignored per spec.
    if event is not None or data_lines:
        data = "\n".join(data_lines)
        events.append((event or "message", json.loads(data) if data else {}))
    return events


class ServeClient:
    """Blocking client: one method per route.

    >>> client = ServeClient("127.0.0.1", service.port)
    >>> client.query("?x bornIn Ulm", k=5)["answers"]
    >>> first = client.stream("?x bornIn ?y", n=10)
    >>> rest = client.resume(first.session, n=10)   # ranks continue
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: HTTPConnection | None = None

    def close(self) -> None:
        """Drop the kept-alive connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        headers = {}
        encoded = None
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            reused = self._connection is not None
            connection = self._connection or HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._connection = None
            try:
                connection.request(method, path, body=encoded, headers=headers)
                response = connection.getresponse()
                status = response.status
                content_type = response.getheader("Content-Type", "")
                keep = (
                    response.getheader("Connection", "").strip().lower()
                    == "keep-alive"
                )
                raw = response.read()
            except (ConnectionError, HTTPException, OSError):
                # A stale kept-alive socket (closed server-side between
                # requests) fails on write or on the status line; retry
                # exactly once on a fresh connection.  A fresh
                # connection's failure is real — propagate it.
                connection.close()
                if reused and attempt == 0:
                    continue
                raise
            if keep:
                self._connection = connection
            else:
                connection.close()
            break
        if "json" in content_type:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        else:
            payload = raw.decode("utf-8")
        if status >= 400:
            raise ServeError(status, payload)
        return status, content_type, payload

    # -- routes --------------------------------------------------------------

    def query(self, query: str, k: int | None = None) -> dict:
        """``POST /query`` — the eager top-k answer document."""
        body = {"query": query}
        if k is not None:
            body["k"] = k
        _status, _ctype, payload = self._request("POST", "/query", body)
        return payload

    def stream(self, query: str, n: int | None = None) -> StreamBatch:
        """``GET /stream?q=…`` — open a session, fetch the first batch."""
        from urllib.parse import urlencode

        params = {"q": query}
        if n is not None:
            params["n"] = n
        return self._stream_request(f"/stream?{urlencode(params)}")

    def resume(self, session: str, n: int | None = None) -> StreamBatch:
        """``GET /stream?session=…`` — the next batch, ranks continuing."""
        from urllib.parse import urlencode

        params = {"session": session}
        if n is not None:
            params["n"] = n
        return self._stream_request(f"/stream?{urlencode(params)}")

    def _stream_request(self, path: str) -> StreamBatch:
        _status, content_type, body = self._request("GET", path)
        if "text/event-stream" not in content_type:
            raise TrinitError(f"Expected an SSE response, got {content_type!r}")
        batch = StreamBatch(session="")
        for event, data in parse_sse(body):
            if event == "meta":
                batch.meta = data
                batch.session = data.get("session", "")
            elif event == "answer":
                batch.answers.append(data)
            elif event == "end":
                batch.end = data
            elif event == "error":
                batch.error = data
        return batch

    def ingest(
        self, triples: list, confidence: float | None = None
    ) -> dict:
        """``POST /ingest`` — ground statements in the query term syntax."""
        body: dict = {"triples": triples}
        if confidence is not None:
            body["confidence"] = confidence
        _status, _ctype, payload = self._request("POST", "/ingest", body)
        return payload

    def healthz(self) -> dict:
        _status, _ctype, payload = self._request("GET", "/healthz")
        return payload

    def metrics(self, format: str = "json"):
        """``GET /metrics`` — a dict (json) or the Prometheus text."""
        path = "/metrics?format=json" if format == "json" else "/metrics"
        _status, _ctype, payload = self._request("GET", path)
        return payload
