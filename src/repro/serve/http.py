"""The query service: stdlib HTTP/1.1 + SSE over one TriniT engine.

:class:`QueryService` maps network clients onto the engine's session
surface.  It is deliberately built on ``asyncio.start_server`` with
hand-rolled HTTP/1.1 request parsing and Server-Sent-Events framing —
the project has zero runtime dependencies and a query server does not
need a framework: five routes, one content type, HTTP/1.1 keep-alive
with a bounded per-connection request budget and idle timeout (SSE
responses are EOF-framed and always close).

Routes
------
``POST /query``
    Eager top-k: body ``{"query": "...", "k": 10}``; answers as JSON.
    Served from the :class:`~repro.serve.cache.ResultCache` when the
    same normalized query + k was answered against the same snapshot
    identity (``"cached": true`` in the response marks a hit).
``GET /stream?q=...&n=10``
    SSE: a ``meta`` event naming the new session, ``n`` ``answer``
    events in score order, an ``end`` event.  The computation suspends
    between requests — ``GET /stream?session=<id>&n=10`` *resumes* the
    same :class:`~repro.core.results.AnswerStream` (ranks continue, the
    concatenation across requests is byte-identical to one eager ask).
``POST /ingest``
    Live writes: ground statements in the query term syntax; visible to
    the next query, compaction per the engine's threshold.
``GET /healthz``
    Liveness + the exact data being served (snapshot identity,
    generation, delta state).
``GET /metrics``
    Prometheus text exposition; ``?format=json`` for the JSON document.

Engine work (an ask, a ``next_k`` resume, an ingest) is blocking Python:
each request runs it on the service's thread pool behind the
:class:`~repro.serve.admission.AdmissionController`, so a burst sheds
429/503 instead of piling unbounded work onto the engine.  Shutdown
**drains**: in-flight requests (including mid-SSE writes against
compaction-pinned store generations) get a bounded grace period before
the engine is closed under them.
"""

from __future__ import annotations

import asyncio
import json
import secrets
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from urllib.parse import parse_qs, unquote, urlsplit

from repro.core.engine import TriniT
from repro.core.parser import parse_pattern, parse_query
from repro.core.results import Answer, AnswerStream, QueryStats
from repro.core.terms import Variable
from repro.core.triples import Triple
from repro.errors import StorageError, TrinitError
from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.cache import ResultCache
from repro.serve.metrics import ServerMetrics

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request-line / header-block / body size bounds (hand-rolled parser).
MAX_REQUEST_LINE = 16 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Service knobs (engine knobs live in ``EngineConfig``).

    Attributes
    ----------
    host, port:
        Bind address; port ``0`` picks an ephemeral port (tests), the
        bound port is readable as :attr:`QueryService.port` after start.
    default_k:
        Answers per ``/query`` and per ``/stream`` batch when the client
        does not say.
    max_concurrency:
        Execution slots — requests running engine work at once; also the
        service executor's thread count.
    queue_depth:
        Requests allowed to *wait* for a slot beyond the executing ones;
        arrivals past it are shed with 429.
    request_timeout:
        Per-request budget in seconds covering queue wait + engine work;
        exceeded → 503 (the engine thread finishes in the background
        without its slot being leaked).  ``None`` disables.
    cache_size, cache_ttl:
        Result-cache LRU bound and entry TTL (``0`` disables the cache,
        ``None`` TTL means age never expires entries).
    session_ttl:
        Idle seconds after which a suspended stream session is evicted
        (it pins a store generation — idle sessions must not pin
        retired generations forever).
    max_sessions:
        Live session bound; creating past it evicts the least recently
        used session.
    drain_grace:
        Shutdown drain bound in seconds: how long ``stop()`` waits for
        in-flight requests to finish before closing anyway.
    keepalive_requests:
        Requests served per connection before the server answers
        ``Connection: close`` (bounds how long one client can hold a
        connection slot); ``1`` disables reuse entirely.
    keepalive_idle:
        Seconds an idle kept-alive connection may wait for its next
        request before the server closes it.  Idle connections are not
        in-flight: draining never waits on them.
    """

    host: str = "127.0.0.1"
    port: int = 8399
    default_k: int = 10
    max_concurrency: int = 8
    queue_depth: int = 16
    request_timeout: float | None = 30.0
    cache_size: int = 256
    cache_ttl: float | None = 300.0
    session_ttl: float = 600.0
    max_sessions: int = 256
    drain_grace: float = 5.0
    keepalive_requests: int = 100
    keepalive_idle: float = 5.0


def serialize_answer(answer: Answer, rank: int) -> dict:
    """The wire form of one answer — shared by server, client and bench.

    Everything a client needs to render a result row; the test suite
    compares these dicts between SSE batches and direct ``engine.ask``
    prefixes, so the serialisation itself is part of the byte-identity
    contract (scores ride as full-precision floats through ``json``).
    """
    return {
        "rank": rank,
        "binding": {var.n3(): term.n3() for var, term in answer.binding},
        "score": answer.score,
        "relaxed": answer.derivation.uses_relaxation,
        "derivations": answer.num_derivations,
    }


def _stats_dict(stats: QueryStats) -> dict:
    return {spec.name: getattr(stats, spec.name) for spec in fields(QueryStats)}


class _BadRequest(TrinitError):
    """Malformed HTTP or payload — answered 400."""


@dataclass
class _Request:
    method: str
    path: str
    params: dict[str, str]
    headers: dict[str, str]
    body: bytes
    version: str = "HTTP/1.1"
    #: Whether the response may keep the connection open — the handshake
    #: of client wish (``Connection`` header, HTTP version default) and
    #: server policy (per-connection budget, drain state); the SSE
    #: handler forces it off (event streams are terminated by EOF).
    keep_alive: bool = False

    def wants_keepalive(self) -> bool:
        token = self.headers.get("connection", "").strip().lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"


class _Session:
    """One suspended stream with its bookkeeping (loop-confined fields)."""

    __slots__ = (
        "sid", "stream", "normalized", "snapshot", "created",
        "last_used", "emitted", "lock",
    )

    def __init__(self, sid: str, stream: AnswerStream, normalized: str,
                 snapshot: str, now: float):
        self.sid = sid
        self.stream = stream
        self.normalized = normalized
        self.snapshot = snapshot
        self.created = now
        self.last_used = now
        self.emitted = 0
        self.lock = asyncio.Lock()


class QueryService:
    """One engine behind an HTTP/SSE front — start, serve, drain, stop.

    Thread model: the service runs its own event loop on a dedicated
    thread (:meth:`start`/:meth:`stop`, or :meth:`run` to serve on the
    calling thread).  Engine work runs on a service-owned
    ``ThreadPoolExecutor`` sized to ``max_concurrency``; session and
    in-flight bookkeeping stays loop-confined.

    Parameters
    ----------
    engine:
        The engine to serve.  The service subscribes to its store-swap
        quiet point (:meth:`TriniT.on_store_swap`) to flush the result
        cache whenever compaction adopts a new store.
    config:
        See :class:`ServeConfig`.
    owns_engine:
        When true, :meth:`close` also closes the engine (the
        ``python -m repro.serve`` entrypoint opens and owns it; tests
        that share an engine across services pass False).
    """

    def __init__(
        self,
        engine: TriniT,
        config: ServeConfig | None = None,
        *,
        owns_engine: bool = False,
    ):
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        self.owns_engine = owns_engine
        self.cache = ResultCache(self.config.cache_size, self.config.cache_ttl)
        self.admission = AdmissionController(
            self.config.max_concurrency,
            self.config.queue_depth,
            self.config.request_timeout,
        )
        self.metrics = ServerMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="trinit-serve",
        )
        engine.on_store_swap(self._store_swapped)
        self._sessions: dict[str, _Session] = {}
        self._connections: set = set()
        self._inflight = 0
        self._draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._start_error: BaseException | None = None
        self._closed = False
        self.host = self.config.host
        self.port: int | None = None

    # -- quiet-point hook ----------------------------------------------------

    def _store_swapped(self, engine: TriniT) -> None:
        # Runs on whatever thread performed the compaction, right after
        # the swap barrier released: entries keyed on the retired
        # snapshot identity can never match again, reclaim them now.
        self.cache.flush()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QueryService":
        """Serve on a background thread; returns once the port is bound."""
        if self._thread is not None:
            raise TrinitError("Service already started")
        self._thread = threading.Thread(
            target=self._serve_thread, name="trinit-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._start_error is not None:
            error = self._start_error
            self._thread.join()
            self._thread = None
            self._start_error = None
            raise TrinitError(f"Could not start query service: {error}")
        return self

    def run(self) -> None:
        """Serve on the calling thread until interrupted (the CLI mode)."""
        if self._thread is not None:
            raise TrinitError("Service already started")
        self._thread = threading.current_thread()
        try:
            self._serve_thread()
            if self._start_error is not None:
                raise TrinitError(
                    f"Could not start query service: {self._start_error}"
                )
        finally:
            self._thread = None

    def _serve_thread(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                server = loop.run_until_complete(
                    asyncio.start_server(
                        self._handle_connection,
                        self.config.host,
                        self.config.port,
                    )
                )
            except OSError as exc:
                self._start_error = exc
                return
            self._server = server
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            self._ready.set()
            self._loop = None
            asyncio.set_event_loop(None)
            loop.close()
            self._stopped.set()

    def stop(self, drain_grace: float | None = None) -> None:
        """Drain and stop the server (idempotent; callable from any thread).

        Stops accepting, then waits up to ``drain_grace`` (default: the
        config's) for in-flight requests — including SSE batches writing
        from streams that pin pre-compaction store generations — to
        finish, then drops the suspended sessions so their pins release.
        Only after that may :meth:`close` shut the engine down; closing
        the engine with requests still dispatching would yank mmap-backed
        stores out from under them mid-write.
        """
        loop = self._loop
        if loop is None or self._thread is None:
            return
        grace = self.config.drain_grace if drain_grace is None else drain_grace
        future = asyncio.run_coroutine_threadsafe(self._shutdown(grace), loop)
        try:
            future.result(timeout=grace + 10.0)
        except TimeoutError:  # pragma: no cover - drain bound blew too
            future.cancel()
        if self._loop is not None:
            self._loop.call_soon_threadsafe(loop.stop)
        if self._thread is not threading.current_thread():
            self._thread.join(timeout=grace + 10.0)
        self._thread = None

    async def _shutdown(self, grace: float) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.02)
        # Kept-alive connections waiting idle for a next request are not
        # in-flight; close them under their readers so their handler
        # loops exit before the event loop does.
        for writer in list(self._connections):
            try:
                writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
        # Sessions go last: each holds the AnswerStream whose weakref
        # finalizer unpins its store generation — dropping them here is
        # what lets close() retire pinned pre-compaction stores.
        self._sessions.clear()

    def close(self) -> None:
        """Stop serving, release the executor, close an owned engine."""
        if self._closed:
            return
        self._closed = True
        self.stop()
        self._executor.shutdown(wait=True)
        if self.owns_engine:
            self.engine.close()

    def __enter__(self) -> "QueryService":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        # HTTP/1.1 keep-alive: serve up to ``keepalive_requests`` requests
        # over one connection.  Each request is counted in-flight only
        # while it is being dispatched — a kept-alive connection waiting
        # idle for its next request never blocks the shutdown drain
        # (the drain closes idle connections under their readers instead).
        self._connections.add(writer)
        try:
            served = 0
            while await self._serve_one(reader, writer, served):
                served += 1
        finally:
            self._connections.discard(writer)
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _serve_one(self, reader, writer, served: int) -> bool:
        """Read and answer one request; True to keep the connection."""
        started = time.perf_counter()
        route, status = "unknown", 500
        keep = False
        try:
            try:
                if served == 0:
                    request = await self._read_request(reader)
                else:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        self.config.keepalive_idle,
                    )
            except asyncio.TimeoutError:  # idle keep-alive expired
                route, status = "empty", 0
                return False
            except _BadRequest as exc:
                route = "bad"
                status = await self._respond(writer, 400, {"error": str(exc)})
                return False
            if request is None:  # client closed without a request
                route, status = "empty", 0
                return False
            started = time.perf_counter()
            request.keep_alive = (
                served + 1 < self.config.keepalive_requests
                and not self._draining
                and request.wants_keepalive()
            )
            self._inflight += 1
            try:
                route, status = await self._dispatch(request, writer)
            finally:
                self._inflight -= 1
            keep = request.keep_alive
        except (ConnectionError, asyncio.IncompleteReadError):
            status = 0  # client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                status = await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            if route not in ("empty",) and status:
                self.metrics.observe_request(
                    route, status, time.perf_counter() - started
                )
        return keep

    async def _read_request(self, reader) -> _Request | None:
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _BadRequest("Truncated request line") from None
        except asyncio.LimitOverrunError:
            raise _BadRequest("Request line too long") from None
        if len(line) > MAX_REQUEST_LINE:
            raise _BadRequest("Request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"Malformed request line: {line!r}")
        method, target, version = parts
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                line = await reader.readuntil(b"\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                raise _BadRequest("Truncated header block") from None
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise _BadRequest("Header block too large")
            if line == b"\r\n":
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(f"Malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                length = int(length)
            except ValueError:
                raise _BadRequest(f"Bad Content-Length: {length!r}") from None
            if length > MAX_BODY_BYTES:
                raise _BadRequest("Request body too large")
            if length:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    raise _BadRequest("Truncated request body") from None
        split = urlsplit(target)
        params = {
            key: values[-1]
            for key, values in parse_qs(split.query, keep_blank_values=True).items()
        }
        return _Request(
            method, unquote(split.path), params, headers, body, version
        )

    # -- responses -----------------------------------------------------------

    async def _respond(
        self,
        writer,
        status: int,
        payload,
        *,
        content_type: str = "application/json",
        extra_headers: tuple[tuple[str, str], ...] = (),
        keep_alive: bool = False,
    ) -> int:
        if isinstance(payload, bytes):
            body = payload
        elif isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = (json.dumps(payload, ensure_ascii=False) + "\n").encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}; charset=utf-8",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra_headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()
        return status

    async def _start_sse(self, writer) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream; charset=utf-8\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

    async def _send_event(self, writer, event: str, payload: dict) -> None:
        data = json.dumps(payload, ensure_ascii=False)
        writer.write(f"event: {event}\ndata: {data}\n\n".encode("utf-8"))
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _dispatch(self, request: _Request, writer) -> tuple[str, int]:
        route_map = {
            ("POST", "/query"): ("query", self._handle_query),
            ("GET", "/stream"): ("stream", self._handle_stream),
            ("POST", "/ingest"): ("ingest", self._handle_ingest),
            ("GET", "/healthz"): ("healthz", self._handle_healthz),
            ("GET", "/metrics"): ("metrics", self._handle_metrics),
        }
        entry = route_map.get((request.method, request.path))
        keep = request.keep_alive
        if entry is None:
            known_path = any(path == request.path for _m, path in route_map)
            if known_path:
                return "bad", await self._respond(
                    writer,
                    405,
                    {"error": f"Method not allowed: {request.method}"},
                    keep_alive=keep,
                )
            return "bad", await self._respond(
                writer,
                404,
                {"error": f"No such route: {request.path}"},
                keep_alive=keep,
            )
        route, handler = entry
        if self._draining and route not in ("healthz", "metrics"):
            return route, await self._respond(
                writer, 503, {"error": "Service is draining"}
            )
        try:
            return route, await handler(request, writer)
        except Overloaded as exc:
            return route, await self._respond(
                writer,
                exc.status,
                {"error": str(exc), "reason": exc.reason},
                keep_alive=keep,
            )
        except _BadRequest as exc:
            return route, await self._respond(
                writer, 400, {"error": str(exc)}, keep_alive=keep
            )
        except TrinitError as exc:
            # Parse/query errors are the client's fault; a closed store
            # under a live stream means the service is going away.
            status = 503 if isinstance(exc, StorageError) else 400
            if status == 503:
                request.keep_alive = False
            return route, await self._respond(
                writer,
                status,
                {"error": f"{type(exc).__name__}: {exc}"},
                keep_alive=request.keep_alive,
            )

    def _json_body(self, request: _Request) -> dict:
        if not request.body:
            raise _BadRequest("Expected a JSON body")
        try:
            body = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"Bad JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise _BadRequest("JSON body must be an object")
        return body

    @staticmethod
    def _positive_int(value, name: str, maximum: int = 10_000) -> int:
        try:
            value = int(value)
        except (TypeError, ValueError):
            raise _BadRequest(f"{name} must be an integer") from None
        if not 1 <= value <= maximum:
            raise _BadRequest(f"{name} must be in 1..{maximum}, got {value}")
        return value

    # -- POST /query ---------------------------------------------------------

    async def _handle_query(self, request: _Request, writer) -> int:
        body = self._json_body(request)
        text = body.get("query")
        if not isinstance(text, str) or not text.strip():
            raise _BadRequest('Body needs a non-empty "query" string')
        k = self._positive_int(
            body.get("k", self.config.default_k), "k"
        )
        query = parse_query(text)
        normalized = query.n3()
        engine = self.engine
        identity = engine.snapshot_identity()
        key = (normalized, k, identity)
        cached = self.cache.get(key)
        if cached is not None:
            payload = dict(cached)
            payload["cached"] = True
            return await self._respond(
                writer, 200, payload, keep_alive=request.keep_alive
            )
        loop = asyncio.get_running_loop()
        answers = await self.admission.run(
            loop, self._executor, lambda: engine.ask(query, k)
        )
        self.metrics.record_query_stats(answers.stats)
        self.metrics.count_answers(len(answers))
        payload = {
            "query": normalized,
            "k": k,
            "snapshot": identity,
            "cached": False,
            "answers": [
                serialize_answer(answer, rank)
                for rank, answer in enumerate(answers, start=1)
            ],
            "stats": _stats_dict(answers.stats),
        }
        self.cache.put(key, payload)
        return await self._respond(
            writer, 200, payload, keep_alive=request.keep_alive
        )

    # -- GET /stream ---------------------------------------------------------

    async def _handle_stream(self, request: _Request, writer) -> int:
        n = self._positive_int(
            request.params.get("n", self.config.default_k), "n"
        )
        sid = request.params.get("session")
        loop = asyncio.get_running_loop()
        now = loop.time()
        self._sweep_sessions(now)
        if sid is not None:
            session = self._sessions.get(sid)
            if session is None:
                return await self._respond(
                    writer,
                    404,
                    {"error": f"Unknown or expired session {sid!r}"},
                    keep_alive=request.keep_alive,
                )
            self.metrics.count_session("resumed")
        else:
            text = request.params.get("q")
            if not text or not text.strip():
                raise _BadRequest('Need "q" (new stream) or "session" (resume)')
            query = parse_query(text)
            engine = self.engine
            identity = engine.snapshot_identity()
            stream = await self.admission.run(
                loop, self._executor, lambda: engine.stream(query)
            )
            sid = secrets.token_hex(8)
            session = _Session(sid, stream, query.n3(), identity, now)
            self._sessions[sid] = session
            self.metrics.count_session("created")
            self._cap_sessions()

        # SSE responses are framed by connection close, not Content-Length
        # — the event stream always ends the connection.
        request.keep_alive = False
        async with session.lock:
            session.last_used = loop.time()
            await self._stream_batch(session, n, writer, loop)
        session.last_used = loop.time()
        return 200

    async def _stream_batch(self, session, n: int, writer, loop) -> None:
        """Admit one resume, then SSE the next ``n`` answers as they settle.

        The asyncio facade over the blocking driver: an executor thread
        pulls answers one rank at a time (``next_k(1)`` resumes are
        incremental — the driver keeps its cursors and rank-join state
        between calls) and posts each onto an ``asyncio.Queue`` that the
        event loop drains into ``answer`` events, so the first answer
        reaches the socket while later ranks are still being computed.
        """
        stream = session.stream
        budget = self.admission.timeout
        await self.admission.acquire(budget)
        held = True
        queue: asyncio.Queue = asyncio.Queue()
        stop_pulling = threading.Event()
        done = object()

        def pull():
            before = stream.stats.copy()
            error = None
            try:
                for _ in range(n):
                    if stop_pulling.is_set():
                        break
                    batch = stream.next_k(1)
                    if not batch:
                        break
                    loop.call_soon_threadsafe(queue.put_nowait, batch[0])
            except Exception as exc:  # noqa: BLE001 - reported via the queue
                error = exc
            delta = stream.stats.diff(before)
            loop.call_soon_threadsafe(queue.put_nowait, (done, delta, error))

        try:
            await self._start_sse(writer)
            await self._send_event(
                writer,
                "meta",
                {
                    "session": session.sid,
                    "query": session.normalized,
                    "snapshot": session.snapshot,
                    "emitted": session.emitted,
                    "n": n,
                },
            )
            future = loop.run_in_executor(self._executor, pull)
            deadline = loop.time() + budget if budget is not None else None
            emitted_here = 0
            error = None
            while True:
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - loop.time())
                try:
                    item = await asyncio.wait_for(queue.get(), timeout)
                except asyncio.TimeoutError:
                    # Budget spent mid-batch: tell the puller to stop at
                    # the next rank boundary and hand the slot to the
                    # future's completion callback (threads cannot be
                    # cancelled; the concurrency bound must keep
                    # counting the straggler).
                    stop_pulling.set()
                    held = False
                    self.admission.release_when_done(loop, future)
                    await self._send_event(
                        writer,
                        "error",
                        {"error": f"batch exceeded the {budget:g}s budget",
                         "reason": "timeout", "session": session.sid},
                    )
                    return
                if isinstance(item, tuple) and item[0] is done:
                    _, delta, error = item
                    break
                session.emitted += 1
                emitted_here += 1
                await self._send_event(
                    writer, "answer", serialize_answer(item, session.emitted)
                )
            self.metrics.record_query_stats(delta)
            self.metrics.count_answers(emitted_here)
            if error is not None:
                await self._send_event(
                    writer,
                    "error",
                    {"error": f"{type(error).__name__}: {error}",
                     "session": session.sid},
                )
                return
            await self._send_event(
                writer,
                "end",
                {
                    "session": session.sid,
                    "batch": emitted_here,
                    "emitted": session.emitted,
                    "exhausted": stream.exhausted,
                    "stats": _stats_dict(delta),
                },
            )
        finally:
            if held:
                self.admission.release()

    def _sweep_sessions(self, now: float) -> None:
        ttl = self.config.session_ttl
        expired = [
            sid
            for sid, session in self._sessions.items()
            if now - session.last_used > ttl and not session.lock.locked()
        ]
        for sid in expired:
            del self._sessions[sid]
            self.metrics.count_session("evicted")

    def _cap_sessions(self) -> None:
        while len(self._sessions) > self.config.max_sessions:
            victim = min(
                (
                    session
                    for session in self._sessions.values()
                    if not session.lock.locked()
                ),
                key=lambda session: session.last_used,
                default=None,
            )
            if victim is None:
                return
            del self._sessions[victim.sid]
            self.metrics.count_session("evicted")

    # -- POST /ingest --------------------------------------------------------

    async def _handle_ingest(self, request: _Request, writer) -> int:
        body = self._json_body(request)
        rows = body.get("triples")
        if not isinstance(rows, list) or not rows:
            raise _BadRequest('Body needs a non-empty "triples" list')
        confidence = body.get("confidence", 1.0)
        if not isinstance(confidence, (int, float)) or not 0 < confidence <= 1:
            raise _BadRequest(f"confidence must be in (0, 1], got {confidence!r}")
        triples = [self._parse_ingest_row(row) for row in rows]
        engine = self.engine
        loop = asyncio.get_running_loop()
        ids = await self.admission.run(
            loop,
            self._executor,
            lambda: engine.ingest(triples, confidence=float(confidence)),
        )
        self.metrics.count_ingested(len(ids))
        store = engine.store
        return await self._respond(
            writer,
            200,
            {
                "ingested": len(ids),
                "delta_size": store.delta_size,
                "generation": engine.generation,
                "snapshot": engine.snapshot_identity(),
            },
            keep_alive=request.keep_alive,
        )

    @staticmethod
    def _parse_ingest_row(row) -> Triple:
        if isinstance(row, dict):
            row = [row.get("s"), row.get("p"), row.get("o")]
        if not isinstance(row, list) or len(row) != 3 or not all(
            isinstance(part, str) and part.strip() for part in row
        ):
            raise _BadRequest(
                'Each triple must be ["s", "p", "o"] (or {"s","p","o"}) of '
                "non-empty term strings in the query syntax"
            )
        pattern = parse_pattern(" ".join(row))
        terms = (pattern.s, pattern.p, pattern.o)
        if any(isinstance(term, Variable) for term in terms):
            raise _BadRequest(
                f"Ingest needs ground statements, got a variable in {row!r}"
            )
        return Triple(*terms)

    # -- GET /healthz --------------------------------------------------------

    async def _handle_healthz(self, request: _Request, writer) -> int:
        engine = self.engine
        store = engine.store
        return await self._respond(
            writer,
            200,
            {
                "status": "draining" if self._draining else "ok",
                "snapshot": engine.snapshot_identity(),
                "generation": engine.generation,
                "delta": {
                    "size": store.delta_size,
                    "version": store.delta_version,
                },
                "triples": len(store),
                "backend": store.backend_name,
                "executor_kind": engine.executor_kind,
                "sessions": len(self._sessions),
                "inflight": self._inflight,
            },
            keep_alive=request.keep_alive,
        )

    # -- GET /metrics --------------------------------------------------------

    async def _handle_metrics(self, request: _Request, writer) -> int:
        cache_stats = self.cache.stats()
        admission_stats = self.admission.stats()
        admission_stats["sessions"] = len(self._sessions)
        if request.params.get("format") == "json":
            return await self._respond(
                writer,
                200,
                self.metrics.snapshot(cache_stats, admission_stats),
                keep_alive=request.keep_alive,
            )
        return await self._respond(
            writer,
            200,
            self.metrics.render_prometheus(cache_stats, admission_stats),
            content_type="text/plain; version=0.0.4",
            keep_alive=request.keep_alive,
        )
