"""The service's observability surface: counters, latency rings, QueryStats.

Three ingredients, aggregated under one mutex and rendered two ways:

* **server counters** — requests per (route, status), answers streamed,
  statements ingested, SSE sessions created/resumed/evicted — plus the
  counters the cache and the admission controller keep themselves;
* **latency rings** — fixed-size rings of the most recent request
  latencies per route family, from which p50/p95/p99 are computed on
  scrape (a ring, not a histogram: the service targets interactive
  workloads where "recent" percentiles are the interesting ones, and a
  512-entry ring is bias-free for them without choosing bucket bounds);
* **cumulative** :class:`~repro.core.results.QueryStats` — every
  request's per-call stats delta is :meth:`~repro.core.results.QueryStats.
  merge`-d into one running total, so the metrics endpoint exposes engine
  work (sorted accesses, posting pulls, delta hits, …) aggregated across
  every query the server ever answered.  The ``diff()`` half of the
  algebra provides the *scrape window*: each ``/metrics`` scrape also
  reports the stats accumulated since the previous scrape
  (``query_stats_window``), which is what a poller actually plots.

Rendering: :meth:`ServerMetrics.snapshot` returns the JSON document;
:meth:`ServerMetrics.render_prometheus` the Prometheus/OpenMetrics text
exposition of the same numbers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import fields

from repro.core.results import QueryStats


class LatencyRing:
    """Fixed-size ring of recent latency observations with percentiles."""

    def __init__(self, size: int = 512):
        if size < 1:
            raise ValueError(f"ring size must be >= 1, got {size}")
        self.size = size
        self._values: list[float] = []
        self._next = 0
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        if len(self._values) < self.size:
            self._values.append(seconds)
        else:
            self._values[self._next] = seconds
        self._next = (self._next + 1) % self.size
        self.count += 1
        self.total += seconds

    def percentile(self, q: float) -> float | None:
        """The q-quantile (0..1) over the ring, ``None`` when empty.

        Nearest-rank on the sorted ring — the same estimator the traffic
        bench uses, so server-side and bench-side percentiles agree.
        """
        if not self._values:
            return None
        ordered = sorted(self._values)
        index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
        return ordered[index]

    def summary(self) -> dict[str, float | int | None]:
        scale = lambda v: v * 1000 if v is not None else None  # noqa: E731
        return {
            "count": self.count,
            "p50_ms": scale(self.percentile(0.50)),
            "p95_ms": scale(self.percentile(0.95)),
            "p99_ms": scale(self.percentile(0.99)),
            "mean_ms": (self.total / self.count * 1000) if self.count else None,
        }


class ServerMetrics:
    """Aggregated service metrics; thread-safe, scrape-rendered."""

    #: Route families with their own latency ring.
    TIMED_ROUTES = ("query", "stream", "ingest")

    def __init__(self, *, ring_size: int = 512, clock=time.time):
        self._lock = threading.Lock()
        self._clock = clock
        self.started_at = clock()
        self.requests: dict[tuple[str, int], int] = {}
        self.rings = {route: LatencyRing(ring_size) for route in self.TIMED_ROUTES}
        self.answers_streamed = 0
        self.statements_ingested = 0
        self.sessions_created = 0
        self.sessions_resumed = 0
        self.sessions_evicted = 0
        self.query_stats = QueryStats()
        self._scrape_mark = QueryStats()

    # -- recording -----------------------------------------------------------

    def observe_request(
        self, route: str, status: int, seconds: float | None = None
    ) -> None:
        """Count one finished request; time it when its family has a ring."""
        with self._lock:
            key = (route, status)
            self.requests[key] = self.requests.get(key, 0) + 1
            # Only successful requests feed the ring: shed/failed requests
            # return in microseconds and would drag the percentiles down.
            ring = self.rings.get(route)
            if ring is not None and seconds is not None and status == 200:
                ring.observe(seconds)

    def record_query_stats(self, delta: QueryStats) -> None:
        """Merge one request's per-call stats into the running total."""
        with self._lock:
            self.query_stats = self.query_stats.merge(delta)

    def count_answers(self, n: int) -> None:
        with self._lock:
            self.answers_streamed += n

    def count_ingested(self, n: int) -> None:
        with self._lock:
            self.statements_ingested += n

    def count_session(self, event: str) -> None:
        with self._lock:
            if event == "created":
                self.sessions_created += 1
            elif event == "resumed":
                self.sessions_resumed += 1
            elif event == "evicted":
                self.sessions_evicted += 1
            else:  # pragma: no cover - programming error
                raise ValueError(f"Unknown session event {event!r}")

    # -- rendering -----------------------------------------------------------

    def snapshot(
        self, cache_stats: dict | None = None, admission_stats: dict | None = None
    ) -> dict:
        """The JSON metrics document (also the base of the Prometheus one).

        Advances the scrape window: ``query_stats_window`` holds the
        stats accumulated since the previous :meth:`snapshot` call,
        computed with :meth:`QueryStats.diff` against the last scrape's
        cumulative values.
        """
        with self._lock:
            window = self.query_stats.diff(self._scrape_mark)
            self._scrape_mark = self.query_stats.copy()
            stats_dict = lambda s: {  # noqa: E731
                spec.name: getattr(s, spec.name) for spec in fields(QueryStats)
            }
            document = {
                "uptime_seconds": self._clock() - self.started_at,
                "requests": {
                    f"{route}:{status}": count
                    for (route, status), count in sorted(self.requests.items())
                },
                "latency": {
                    route: ring.summary() for route, ring in self.rings.items()
                },
                "answers_streamed": self.answers_streamed,
                "statements_ingested": self.statements_ingested,
                "sessions": {
                    "created": self.sessions_created,
                    "resumed": self.sessions_resumed,
                    "evicted": self.sessions_evicted,
                },
                "query_stats": stats_dict(self.query_stats),
                "query_stats_window": stats_dict(window),
            }
        if cache_stats is not None:
            document["cache"] = cache_stats
        if admission_stats is not None:
            document["admission"] = admission_stats
        return document

    def render_prometheus(
        self, cache_stats: dict | None = None, admission_stats: dict | None = None
    ) -> str:
        """Prometheus text exposition (version 0.0.4) of the same numbers."""
        document = self.snapshot(cache_stats, admission_stats)
        lines: list[str] = []

        def emit(name, kind, help_text, samples):
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                if value is None:
                    continue
                rendered = (
                    "{"
                    + ",".join(f'{k}="{v}"' for k, v in labels.items())
                    + "}"
                    if labels
                    else ""
                )
                lines.append(f"{name}{rendered} {value:g}")

        emit(
            "trinit_uptime_seconds",
            "gauge",
            "Seconds since the query service started.",
            [({}, document["uptime_seconds"])],
        )
        emit(
            "trinit_requests_total",
            "counter",
            "Finished HTTP requests by route and status.",
            [
                ({"route": key.split(":")[0], "status": key.split(":")[1]}, count)
                for key, count in document["requests"].items()
            ],
        )
        emit(
            "trinit_request_latency_seconds",
            "summary",
            "Recent request latency quantiles per route (ring-buffered).",
            [
                ({"route": route, "quantile": quantile}, (value / 1000))
                for route, summary in document["latency"].items()
                for quantile, value in (
                    ("0.5", summary["p50_ms"]),
                    ("0.95", summary["p95_ms"]),
                    ("0.99", summary["p99_ms"]),
                )
                if value is not None
            ],
        )
        emit(
            "trinit_answers_streamed_total",
            "counter",
            "Answers handed to clients across /query and /stream.",
            [({}, document["answers_streamed"])],
        )
        emit(
            "trinit_statements_ingested_total",
            "counter",
            "Statements absorbed through POST /ingest.",
            [({}, document["statements_ingested"])],
        )
        emit(
            "trinit_sessions_total",
            "counter",
            "Stream session lifecycle events.",
            [
                ({"event": event}, count)
                for event, count in document["sessions"].items()
            ],
        )
        emit(
            "trinit_query_stats_total",
            "counter",
            "Cumulative engine QueryStats across all served queries.",
            [
                ({"counter": name}, value)
                for name, value in document["query_stats"].items()
            ],
        )
        if "cache" in document:
            emit(
                "trinit_cache",
                "gauge",
                "Result cache state and accounting.",
                [
                    ({"counter": name}, value)
                    for name, value in document["cache"].items()
                ],
            )
        if "admission" in document:
            emit(
                "trinit_admission",
                "gauge",
                "Admission controller state and shed accounting.",
                [
                    ({"counter": name}, value)
                    for name, value in document["admission"].items()
                ],
            )
        return "\n".join(lines) + "\n"
