"""Admission control: bounded concurrency + bounded queue over the engine.

Every piece of engine work a request triggers (an eager ``ask``, one
``next_k`` resume of a stream session, an ``ingest``) is blocking Python
that runs on the service's executor threads.  Without a bound, a traffic
burst piles arbitrarily many queued queries onto the pool — every one of
them eventually runs to completion against an engine whose caller has
long since timed out.  The admission controller is that bound:

* at most ``max_concurrency`` requests hold an execution slot at once
  (matched to the executor's thread count, so an admitted request starts
  immediately);
* at most ``queue_depth`` further requests may *wait* for a slot; a
  request arriving beyond that is shed instantly with **429** — the
  client should back off, nothing was queued on its behalf;
* a request that cannot get a slot within its timeout, or whose engine
  work exceeds it, is answered **503** — and, critically, a timed-out
  *running* computation keeps its slot until the engine thread actually
  finishes (Python threads cannot be cancelled), so the concurrency
  bound holds even under timeout storms instead of quietly leaking
  slots and deadlocking the pool.

The controller is pure ``asyncio`` (used from the service's event loop);
its counters feed the metrics surface.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Any, Callable, TypeVar

from repro.errors import TrinitError

if TYPE_CHECKING:
    from concurrent.futures import Executor, Future

_T = TypeVar("_T")


class Overloaded(TrinitError):
    """The admission controller shed this request.

    ``status`` is the HTTP status the service maps the shed to: 429 for
    queue-full (instant rejection), 503 for a timeout (the request
    waited or ran, and its budget lapsed).
    """

    def __init__(self, message: str, status: int, reason: str) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason


class AdmissionController:
    """Semaphore-based slot admission with a bounded wait queue.

    Use as an async context manager around the engine work::

        async with controller.slot():
            result = await controller.run(loop, executor, fn)

    (:meth:`run` handles both in one call — see below.)
    """

    def __init__(
        self,
        max_concurrency: int = 8,
        queue_depth: int = 16,
        timeout: float | None = 30.0,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {timeout}")
        self.max_concurrency = max_concurrency
        self.queue_depth = queue_depth
        self.timeout = timeout
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self.waiting = 0
        self.executing = 0
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_timeout = 0
        self.orphaned = 0

    async def acquire(self, timeout: float | None) -> None:
        """Take an execution slot or raise :class:`Overloaded`."""
        # The queue bound only applies to requests that would actually
        # wait: a free slot admits immediately even with queue_depth=0.
        if self._semaphore.locked() and self.waiting >= self.queue_depth:
            self.shed_queue_full += 1
            raise Overloaded(
                f"admission queue full ({self.waiting} waiting, "
                f"{self.executing} executing)",
                status=429,
                reason="queue_full",
            )
        self.waiting += 1
        try:
            if timeout is None:
                await self._semaphore.acquire()
            else:
                try:
                    await asyncio.wait_for(
                        self._semaphore.acquire(), timeout
                    )
                except asyncio.TimeoutError:
                    self.shed_timeout += 1
                    raise Overloaded(
                        f"no execution slot within {timeout:g}s",
                        status=503,
                        reason="timeout",
                    ) from None
        finally:
            self.waiting -= 1
        self.executing += 1
        self.admitted += 1

    def release(self) -> None:
        self.executing -= 1
        self._semaphore.release()

    def release_when_done(
        self, loop: asyncio.AbstractEventLoop, future: "Future[Any]"
    ) -> None:
        """Hand a held slot to ``future``'s completion (timeout orphans).

        A timed-out engine thread cannot be cancelled; whoever stops
        waiting for it calls this instead of :meth:`release` so the slot
        stays occupied — and the concurrency bound honest — until the
        thread actually finishes.  The orphan's result/exception is
        discarded.
        """
        self.orphaned += 1
        self.shed_timeout += 1

        def _finished(f: "Future[Any]") -> None:
            if not f.cancelled():
                f.exception()  # consume: the caller is gone
            loop.call_soon(self.release)

        future.add_done_callback(_finished)

    async def run(
        self,
        loop: asyncio.AbstractEventLoop,
        executor: "Executor | None",
        fn: Callable[[], _T],
        *,
        timeout: float | None = None,
    ) -> _T:
        """Admit, then run ``fn()`` on ``executor``, bounded by one budget.

        ``timeout`` (default: the controller's) covers queue wait *and*
        execution together — a request that spent its budget queueing is
        not granted a fresh budget to run.  On execution timeout the
        result is :class:`Overloaded` (503) for the caller, while the
        still-running engine thread keeps its slot until it finishes
        (``orphaned`` counts those observations); its eventual result is
        discarded and its exception, if any, swallowed.
        """
        budget = self.timeout if timeout is None else timeout
        loop_time = loop.time()
        await self.acquire(budget)
        held = True
        try:
            remaining = None
            if budget is not None:
                remaining = budget - (loop.time() - loop_time)
                if remaining <= 0:
                    self.shed_timeout += 1
                    raise Overloaded(
                        f"request budget {budget:g}s spent in the queue",
                        status=503,
                        reason="timeout",
                    )
            future = loop.run_in_executor(executor, fn)
            try:
                if remaining is None:
                    return await future
                return await asyncio.wait_for(
                    asyncio.shield(future), remaining
                )
            except asyncio.TimeoutError:
                # The engine thread is still running and cannot be
                # cancelled: hand slot ownership to its completion
                # callback so max_concurrency keeps counting it.
                held = False
                self.release_when_done(loop, future)
                raise Overloaded(
                    f"engine work exceeded the {budget:g}s budget "
                    "(still completing in the background)",
                    status=503,
                    reason="timeout",
                ) from None
        finally:
            if held:
                self.release()

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the metrics surface."""
        return {
            "max_concurrency": self.max_concurrency,
            "queue_depth": self.queue_depth,
            "executing": self.executing,
            "waiting": self.waiting,
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_timeout": self.shed_timeout,
            "orphaned": self.orphaned,
        }
