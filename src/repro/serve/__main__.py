"""``python -m repro.serve`` — boot the query service from the shell.

Opens an engine over a persisted store (directory snapshot, single-file
snapshot, or JSONL — format-sniffed like ``TriniT.open``), wraps it in a
:class:`~repro.serve.http.QueryService`, and serves until interrupted.
Engine flags mirror :class:`~repro.core.engine.EngineConfig`; service
flags mirror :class:`~repro.serve.http.ServeConfig`::

    python -m repro.serve xkg.snapd --port 8399 --executor-kind process \\
        --compaction-threshold 1000 --cache-size 512 --max-concurrency 8
"""

from __future__ import annotations

import argparse
import sys

from repro.core.engine import EngineConfig, TriniT
from repro.serve.http import QueryService, ServeConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve exploratory top-k querying over HTTP/SSE.",
    )
    parser.add_argument("snapshot", help="store to serve (snapshot dir/file or JSONL)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8399, help="0 = ephemeral")
    parser.add_argument(
        "--k", type=int, default=10, dest="default_k",
        help="default answers per /query and per /stream batch",
    )
    engine = parser.add_argument_group("engine (EngineConfig)")
    engine.add_argument(
        "--executor-kind", choices=("thread", "process", "serial"), default=None,
        help="segment batch preparation: thread pool, process pool, or none",
    )
    engine.add_argument(
        "--parallelism", type=int, default=None,
        help="engine worker count (default: machine-sized)",
    )
    engine.add_argument(
        "--merge-batch", type=int, default=None,
        help="fixed posting-merge batch size (default: adaptive)",
    )
    engine.add_argument(
        "--compaction-threshold", type=int, default=None,
        help="fold the live delta into a new generation past this many statements",
    )
    engine.add_argument(
        "--storage-backend", default=None,
        help="convert the store to this backend at open (e.g. sharded)",
    )
    service = parser.add_argument_group("service (ServeConfig)")
    service.add_argument("--max-concurrency", type=int, default=8)
    service.add_argument("--queue-depth", type=int, default=16)
    service.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request budget (queue wait + engine work); 0 = unbounded",
    )
    service.add_argument("--cache-size", type=int, default=256)
    service.add_argument(
        "--cache-ttl", type=float, default=300.0,
        help="result-cache entry TTL in seconds; 0 = no age expiry",
    )
    service.add_argument("--session-ttl", type=float, default=600.0)
    service.add_argument("--max-sessions", type=int, default=256)
    service.add_argument(
        "--drain-grace", type=float, default=5.0,
        help="shutdown: seconds to wait for in-flight requests",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    engine_config = EngineConfig(
        **{
            key: value
            for key, value in {
                "executor_kind": args.executor_kind,
                "parallelism": args.parallelism,
                "merge_batch": args.merge_batch,
                "compaction_threshold": args.compaction_threshold,
                "storage_backend": args.storage_backend,
            }.items()
            if value is not None
        }
    )
    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        default_k=args.default_k,
        max_concurrency=args.max_concurrency,
        queue_depth=args.queue_depth,
        request_timeout=args.timeout or None,
        cache_size=args.cache_size,
        cache_ttl=args.cache_ttl or None,
        session_ttl=args.session_ttl,
        max_sessions=args.max_sessions,
        drain_grace=args.drain_grace,
    )
    engine = TriniT.open(args.snapshot, config=engine_config)
    service = QueryService(engine, serve_config, owns_engine=True)
    print(
        f"serving {engine.snapshot_identity()} "
        f"({len(engine.store)} triples, executor={engine.executor_kind})",
        file=sys.stderr,
    )
    try:
        service.start()
        print(f"listening on {service.address}", file=sys.stderr)
        service._stopped.wait()
        return 0
    except KeyboardInterrupt:
        print("draining...", file=sys.stderr)
        return 0
    finally:
        service.close()


if __name__ == "__main__":
    raise SystemExit(main())
