"""The ``trinit`` command-line demo.

Examples::

    trinit --query "?x bornIn Germany"
    trinit --query "AlbertEinstein affiliation ?x ; ?x member IvyLeague" --explain
    trinit --dataset generated --query "..." --k 5
    trinit --interactive

The default dataset is the paper's running example (Figures 1, 3, 4); the
``generated`` dataset builds the small-profile synthetic XKG with mined
rules.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.engine import TriniT
from repro.demo.autocomplete import AutoCompleter
from repro.demo.interface import DemoSession


def _build_engine(dataset: str) -> TriniT:
    if dataset == "paper":
        from repro.kg.paper_example import paper_engine

        return paper_engine()
    if dataset == "generated":
        from repro.eval.harness import EvalHarness

        return EvalHarness("small").engine
    raise SystemExit(f"Unknown dataset: {dataset!r} (use 'paper' or 'generated')")


def _interactive(session: DemoSession, completer: AutoCompleter) -> int:
    print("TriniT interactive demo.  Commands:")
    print("  <query>            run a query (e.g.  ?x bornIn Germany )")
    print("  :more [n]          fetch the next n answers (default --k), resuming")
    print("  :rule <rule>       add a relaxation rule (lhs => rhs @ w)")
    print("  :ingest <s> <p> <o> [conf]")
    print("                     absorb a statement live (visible immediately)")
    print("  :explain <rank>    explain the i-th answer of the last query")
    print("  :stats             work counters of the last query (segments,")
    print("                     postings pulled, sorted accesses, ...)")
    print("  :suggest           suggestions for the last query")
    print("  :complete <frag>   auto-complete a term fragment")
    print("  :serve             how to expose this store over HTTP/SSE")
    print("  :quit")
    last_query_text = ""
    while True:
        try:
            line = input("trinit> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line in (":quit", ":q", "exit"):
            return 0
        try:
            if line.startswith(":rule "):
                added = session.add_user_rule(line[len(":rule "):])
                print(f"added: {added}")
            elif line.startswith(":ingest "):
                rest = line[len(":ingest "):].strip()
                confidence = 1.0
                head, _sep, tail = rest.rpartition(" ")
                if head:
                    try:
                        confidence = float(tail)
                        rest = head
                    except ValueError:
                        pass
                print(session.ingest(rest, confidence))
            elif line == ":more" or line.startswith(":more "):
                parts = line.split()
                n = int(parts[1]) if len(parts) > 1 else None
                print(session.render_more_screen(n))
            elif line.startswith(":explain"):
                if session.last_answers is None or session.last_answers.is_empty:
                    print("no answers to explain")
                    continue
                parts = line.split()
                rank = int(parts[1]) if len(parts) > 1 else 1
                answer = session.last_answers[rank - 1]
                print(session.render_explanation_screen(answer))
            elif line == ":stats":
                print(session.render_stats_screen())
            elif line == ":suggest":
                if not last_query_text:
                    print("run a query first")
                    continue
                print(session.render_suggestion_screen(last_query_text))
            elif line.startswith(":complete "):
                for option in completer.complete(line[len(":complete "):]):
                    print(f"  {option}")
            elif line == ":serve":
                print("The demo shell is single-user; for network clients run")
                print("the query service over a saved snapshot instead:")
                print("  python -m repro.serve <snapshot.snapd> --port 8399")
                print("(POST /query, GET /stream (SSE), POST /ingest,")
                print(" GET /healthz, GET /metrics; see README 'Query service')")
            else:
                last_query_text = line
                print(session.render_query_screen(line))
        except Exception as exc:  # demo shell: show, don't crash
            print(f"error: {exc}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="trinit",
        description="TriniT demo: exploratory querying of extended knowledge graphs",
    )
    parser.add_argument(
        "--dataset",
        default="paper",
        choices=("paper", "generated"),
        help="data to query: the paper's Figures 1+3 example, or a generated XKG",
    )
    parser.add_argument("--query", help="query in the textual syntax")
    parser.add_argument(
        "--k",
        type=int,
        default=10,
        help="answers per batch (also the ':more' default in the shell)",
    )
    parser.add_argument(
        "--explain", action="store_true", help="also explain the top answer"
    )
    parser.add_argument(
        "--suggest", action="store_true", help="also print query suggestions"
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=[],
        help="add a relaxation rule (repeatable): 'lhs => rhs @ w'",
    )
    parser.add_argument(
        "--interactive", action="store_true", help="interactive shell"
    )
    args = parser.parse_args(argv)

    engine = _build_engine(args.dataset)
    session = DemoSession(engine, k=args.k)
    for rule_text in args.rule:
        session.add_user_rule(rule_text)

    if args.interactive:
        return _interactive(session, AutoCompleter(engine.store))

    if not args.query:
        parser.print_help()
        return 2

    print(session.render_query_screen(args.query, args.k))
    if args.explain and session.last_answers and not session.last_answers.is_empty:
        print()
        print(
            session.render_explanation_screen(
                session.last_answers[0], session.last_answers.query
            )
        )
    if args.suggest:
        print()
        print(session.render_suggestion_screen(args.query))
    return 0


if __name__ == "__main__":
    sys.exit(main())
