"""Auto-completion for the query interface.

"User input is eased by auto-completion, guiding users towards meaningful
query formulations.  Each of the SPO fields in a triple pattern accepts
either a canonical KG resource or a textual token" — completion therefore
covers both: resource names by prefix, and stored token phrases by prefix
of any content word.
"""

from __future__ import annotations

import bisect

from repro.core.terms import Resource, TextToken
from repro.storage.store import TripleStore


class AutoCompleter:
    """Prefix completion over a frozen store's vocabulary."""

    def __init__(self, store: TripleStore):
        resources: set[str] = set()
        phrases: set[str] = set()
        for record in store.records():
            for term in record.triple.terms():
                if isinstance(term, Resource):
                    resources.add(term.name)
                elif isinstance(term, TextToken):
                    phrases.add(term.norm)
        self._resources = sorted(resources)
        self._resources_lower = [name.lower() for name in self._resources]
        self._phrases = sorted(phrases)
        # word -> phrases containing it (for mid-phrase completion)
        self._word_index: dict[str, list[str]] = {}
        for phrase in self._phrases:
            for word in phrase.split():
                self._word_index.setdefault(word, []).append(phrase)

    def complete_resource(self, prefix: str, limit: int = 10) -> list[str]:
        """Resource names starting with ``prefix`` (case-insensitive).

        >>> # e.g. complete_resource("Alb") -> ["AlbertEinstein", ...]
        """
        needle = prefix.lower()
        start = bisect.bisect_left(self._resources_lower, needle)
        results: list[str] = []
        for index in range(start, len(self._resources)):
            if not self._resources_lower[index].startswith(needle):
                break
            results.append(self._resources[index])
            if len(results) >= limit:
                break
        return results

    def complete_phrase(self, prefix: str, limit: int = 10) -> list[str]:
        """Stored token phrases whose any word starts with ``prefix``."""
        needle = prefix.lower().strip()
        if not needle:
            return self._phrases[:limit]
        results: list[str] = []
        for phrase in self._phrases:
            if phrase.startswith(needle):
                results.append(phrase)
                if len(results) >= limit:
                    return results
        # Fall back to word-level prefix matches.
        for word in sorted(self._word_index):
            if word.startswith(needle):
                for phrase in self._word_index[word]:
                    if phrase not in results:
                        results.append(phrase)
                        if len(results) >= limit:
                            return results
        return results

    def complete(self, fragment: str, limit: int = 10) -> list[str]:
        """Completion for one SPO field: variables, resources, or phrases.

        Fragments starting with ``?`` complete to nothing (variables are
        free), ``'``-prefixed fragments complete against phrases (returned
        quoted), everything else against resources.
        """
        if fragment.startswith("?"):
            return []
        if fragment.startswith("'"):
            return [
                f"'{phrase}'"
                for phrase in self.complete_phrase(fragment[1:].rstrip("'"), limit)
            ]
        return self.complete_resource(fragment, limit)
