"""Text renderings of the demo's two screens (Figures 5 and 6).

:class:`DemoSession` wraps an engine and produces deterministic plain-text
"screenshots": the query screen shows the triple-pattern form, the user's
relaxation rules and the ranked answers (Figure 5); the explanation screen
shows one answer's provenance (Figure 6).  The CLI and the fig5/fig6 benches
render through this module, so the paper's screens are regenerable
artifacts.
"""

from __future__ import annotations

import textwrap

from repro.core.engine import TriniT
from repro.core.parser import parse_pattern
from repro.core.query import Query
from repro.core.results import Answer, AnswerSet, AnswerStream
from repro.core.terms import Variable
from repro.core.triples import Triple
from repro.errors import TrinitError

_WIDTH = 74


def _box(title: str, body_lines: list[str]) -> str:
    top = f"+-- {title} " + "-" * max(0, _WIDTH - len(title) - 6) + "+"
    bottom = "+" + "-" * (_WIDTH - 2) + "+"
    inner = _WIDTH - 4
    framed = [top]
    for line in body_lines:
        # Word-wrap long lines (continuations indented) rather than
        # truncating: explanations must stay readable in full.
        wrapped = textwrap.wrap(
            line,
            width=inner,
            subsequent_indent="    ",
            drop_whitespace=False,
            break_long_words=False,
        ) or [""]
        for chunk in wrapped:
            framed.append(f"| {chunk[:inner].ljust(inner)} |")
    framed.append(bottom)
    return "\n".join(framed)


class DemoSession:
    """One interactive TriniT session with rendered screens.

    Queries run through the engine's streaming API: the session keeps the
    suspended :class:`AnswerStream` of the last query, so ``:more`` (the
    :meth:`more` action) fetches the next batch by *resuming* the top-k
    computation instead of re-running it with a larger k.
    """

    def __init__(self, engine: TriniT, k: int = 10):
        self.engine = engine
        self.k = k
        self.user_rules: list[str] = []
        self.last_answers: AnswerSet | None = None
        self._stream: AnswerStream | None = None

    # -- user actions ------------------------------------------------------------

    def add_user_rule(self, rule_text: str) -> str:
        """Register an interactively supplied relaxation rule."""
        rule = self.engine.add_rule(rule_text)
        self.user_rules.append(rule.n3())
        return rule.n3()

    def ingest(self, statement: str, confidence: float = 1.0) -> str:
        """Absorb one ground statement live (``:ingest <s> <p> <o> [conf]``).

        The statement uses the query syntax for its terms (resources or
        quoted text phrases, no variables) and lands in the engine's
        mutable delta segment — the very next query sees it, and the
        engine compacts in the background once its threshold is crossed.
        """
        pattern = parse_pattern(statement)
        terms = (pattern.s, pattern.p, pattern.o)
        if any(isinstance(term, Variable) for term in terms):
            raise TrinitError(
                "Ingest needs a ground statement — variables cannot be stored"
            )
        self.engine.ingest(
            [Triple(*terms)], confidence=confidence
        )
        rendered = " ".join(term.n3() for term in terms)
        return (
            f"ingested {rendered} (confidence {confidence:g}; delta "
            f"{self.engine.store.delta_size} statements, generation "
            f"{self.engine.generation})"
        )

    def run(self, query_text: str, k: int | None = None) -> AnswerSet:
        """Run a query, keeping its stream open for :meth:`more`."""
        k = k if k is not None else self.k
        self._stream = self.engine.stream(query_text)
        self._stream.next_k(k)
        self.last_answers = self._stream.collected()
        return self.last_answers

    def more(self, n: int | None = None) -> list[Answer]:
        """The next batch of answers for the last query (``:more``).

        Resumes the suspended stream; returns the new answers only (empty
        once the query is exhausted).  ``last_answers`` grows to the full
        collected set, so ``:explain <rank>`` reaches the new answers too.
        """
        if self._stream is None:
            raise TrinitError("No query to continue — run one first")
        batch = self._stream.next_k(n if n is not None else self.k)
        self.last_answers = self._stream.collected()
        return batch

    # -- screens ------------------------------------------------------------

    def render_query_screen(self, query_text: str, k: int | None = None) -> str:
        """The Figure 5 analogue: query form, user rules, ranked answers."""
        k = k if k is not None else self.k
        query = self.engine.parse(query_text)
        answers = self.run(query_text, k)
        body: list[str] = ["TriniT - Exploratory Querying of Extended Knowledge Graphs", ""]
        body.append("Triple patterns:")
        for index, pattern in enumerate(query.patterns, start=1):
            body.append(f"  [{index}]  S: {pattern.s.n3():<24} "
                        f"P: {pattern.p.n3():<20} O: {pattern.o.n3()}")
        body.append(f"Results requested: {k}")
        body.append("")
        body.append("User relaxation rules:")
        if self.user_rules:
            for rule in self.user_rules:
                body.append(f"  - {rule}")
        else:
            body.append("  (none - automatic relaxation only)")
        body.append("")
        body.append("Answers:")
        if answers.is_empty:
            body.append("  (no answers)")
        else:
            for rank, answer in enumerate(answers, start=1):
                binding = ", ".join(
                    f"{var.n3()}={term.n3()}" for var, term in answer.binding
                )
                marker = "*" if answer.derivation.uses_relaxation else " "
                body.append(f"  {rank:>2}.{marker} {binding}  [{answer.score:.4f}]")
            body.append("")
            body.append("  (* = obtained through relaxation; select an answer")
            body.append("   and press 'e' for its explanation)")
            if self._stream is not None and not self._stream.exhausted:
                body.append("  (:more fetches the next answers without recomputing)")
        return _box("Query Interface", body)

    def render_more_screen(self, n: int | None = None) -> str:
        """The ``:more`` screen: the next batch, ranks continuing."""
        batch = self.more(n)
        body: list[str] = []
        if not batch:
            body.append("(no more answers - query exhausted)")
        else:
            first_rank = len(self.last_answers) - len(batch) + 1
            body.append(f"Answers {first_rank}..{len(self.last_answers)}:")
            for offset, answer in enumerate(batch):
                binding = ", ".join(
                    f"{var.n3()}={term.n3()}" for var, term in answer.binding
                )
                marker = "*" if answer.derivation.uses_relaxation else " "
                body.append(
                    f"  {first_rank + offset:>2}.{marker} {binding}"
                    f"  [{answer.score:.4f}]"
                )
            stats = self._stream.last_stats
            body.append("")
            body.append(
                f"  (resumed: {stats.sorted_accesses} sorted accesses, "
                f"{stats.candidates_formed} candidates for this batch)"
            )
        return _box("More Answers", body)

    def render_stats_screen(self) -> str:
        """The ``:stats`` screen: work counters of the last query's stream.

        Shows the cumulative :class:`~repro.core.results.QueryStats` over
        every batch of the suspended stream — including the
        segment-parallel counters (segments fanned out over, posting heads
        the batched merge actually materialised) that make the storage
        layer's laziness observable from the shell.
        """
        if self._stream is None:
            raise TrinitError("No query statistics yet — run a query first")
        stats = self._stream.stats
        backend = self.engine.store.backend
        body = [
            f"Query: {self._stream.query.n3()}",
            "",
            f"  answers emitted        {stats.answers_emitted}",
            f"  stream resumes         {stats.resumes}",
            f"  rewritings             {stats.rewritings_processed} processed"
            f" / {stats.rewritings_enumerated} enumerated",
            f"  relaxations            {stats.relaxations_invoked} invoked"
            f" / {stats.relaxations_considered} considered",
            f"  cursors opened         {stats.cursors_opened}",
            f"  sorted accesses        {stats.sorted_accesses}",
            f"  candidates formed      {stats.candidates_formed}",
            "",
            f"  storage segments       {backend.segment_count()}"
            f" ({self.engine.store.backend_name} backend)",
            f"  segments touched       {stats.segments_touched}",
            f"  postings materialized  {stats.postings_materialized}",
            f"  posting pulls          {stats.posting_pulls}",
            f"  delta hits             {stats.delta_hits}",
            f"  blocks decoded         {stats.blocks_decoded}",
            f"  block cache hits       {stats.block_cache_hits}",
            "",
            f"  live delta             {self.engine.store.delta_size}"
            f" statements (generation {self.engine.generation})",
            f"  snapshot identity      {self.engine.snapshot_identity()}",
            "",
            f"  elapsed                {stats.elapsed_seconds * 1000:.1f} ms",
        ]
        return _box("Query Statistics", body)

    def render_explanation_screen(self, answer: Answer, query: Query | None = None) -> str:
        """The Figure 6 analogue: one answer's provenance."""
        explanation = self.engine.explain(answer, query)
        return _box("Answer Explanation", explanation.render().splitlines())

    def render_suggestion_screen(self, query_text: str) -> str:
        """Query suggestions for the last/given query."""
        query = self.engine.parse(query_text)
        suggestions = self.engine.suggest(query, self.last_answers)
        body = [f"Suggestions for: {query.n3()}", ""]
        if not suggestions:
            body.append("(no suggestions)")
        for suggestion in suggestions:
            body.append(f"[{suggestion.kind}] ({suggestion.score:.2f})")
            body.append(f"  {suggestion.text}")
        return _box("Query Suggestions", body)
