"""The demonstration interface (Section 5) as a terminal application.

The paper demonstrates TriniT through a browser UI (Figures 5–6 are
screenshots of the query form and the answer-explanation view).  This
package renders the same information as deterministic text screens —
:mod:`interface` — with :mod:`autocomplete` supplying the input guidance the
paper describes, and :mod:`cli` wiring both into an interactive terminal
session over the paper's example data or a generated XKG.
"""

from repro.demo.autocomplete import AutoCompleter
from repro.demo.interface import DemoSession

__all__ = ["AutoCompleter", "DemoSession"]
