"""The paper's running example, verbatim.

Figure 1's sample KG (six triples about Albert Einstein), Figure 3's sample
XKG extension (four Open IE token triples), and Figure 4's four relaxation
rules, as Python objects.  Tests, benches and the demo CLI all build on this
fixture, so the paper's Figures 1–6 scenarios run against exactly the data
the paper shows.
"""

from __future__ import annotations

from datetime import date

from repro.core.engine import EngineConfig, TriniT
from repro.core.parser import parse_rule
from repro.core.terms import Literal, Resource, TextToken
from repro.core.triples import Provenance, Triple
from repro.relax.rules import RelaxationRule
from repro.storage.store import TripleStore


def paper_kg() -> list[Triple]:
    """Figure 1: the sample knowledge graph.

    ======================  ===========  =================
    Subject                 Predicate    Object
    ======================  ===========  =================
    AlbertEinstein          bornIn       Ulm
    Ulm                     locatedIn    Germany
    AlbertEinstein          bornOn       '1879-03-14'
    AlfredKleiner           hasStudent   AlbertEinstein
    AlbertEinstein          affiliation  IAS
    PrincetonUniversity     member       IvyLeague
    ======================  ===========  =================
    """
    einstein = Resource("AlbertEinstein")
    return [
        Triple(einstein, Resource("bornIn"), Resource("Ulm")),
        Triple(Resource("Ulm"), Resource("locatedIn"), Resource("Germany")),
        Triple(einstein, Resource("bornOn"), Literal(date(1879, 3, 14))),
        Triple(Resource("AlfredKleiner"), Resource("hasStudent"), einstein),
        Triple(einstein, Resource("affiliation"), Resource("IAS")),
        Triple(Resource("PrincetonUniversity"), Resource("member"), Resource("IvyLeague")),
    ]


def paper_type_triples() -> list[Triple]:
    """Type assertions implied by Figure 4 rule 1 (city/country granularity)."""
    type_predicate = Resource("type")
    return [
        Triple(Resource("Ulm"), type_predicate, Resource("city")),
        Triple(Resource("Germany"), type_predicate, Resource("country")),
        Triple(Resource("PrincetonUniversity"), type_predicate, Resource("university")),
    ]


def paper_xkg_extension() -> list[tuple[Triple, Provenance, float]]:
    """Figure 3: the sample XKG extension, with plausible provenance.

    ================  ====================  ====================================
    Subject           Predicate             Object
    ================  ====================  ====================================
    AlbertEinstein    'won Nobel for'       'discovery of the photoelectric effect'
    IAS               'housed in'           PrincetonUniversity
    AlbertEinstein    'lectured at'         PrincetonUniversity
    AlbertEinstein    'met his teacher'     'Prof. Kleiner'
    ================  ====================  ====================================
    """
    einstein = Resource("AlbertEinstein")
    princeton = Resource("PrincetonUniversity")

    def prov(doc: str, sentence: str) -> Provenance:
        return Provenance("openie", doc, sentence, "reverb")

    return [
        (
            Triple(
                einstein,
                TextToken("won Nobel for"),
                TextToken("discovery of the photoelectric effect"),
            ),
            prov(
                "clueweb-doc-0017",
                "Einstein won a Nobel for his discovery of the photoelectric effect",
            ),
            0.85,
        ),
        (
            Triple(Resource("IAS"), TextToken("housed in"), princeton),
            prov(
                "clueweb-doc-0042",
                "The Institute for Advanced Study was housed in Princeton",
            ),
            0.90,
        ),
        (
            Triple(einstein, TextToken("lectured at"), princeton),
            prov("clueweb-doc-0108", "Einstein lectured at Princeton University"),
            0.80,
        ),
        (
            Triple(einstein, TextToken("met his teacher"), TextToken("Prof. Kleiner")),
            prov("clueweb-doc-0131", "Einstein met his teacher Prof. Kleiner"),
            0.65,
        ),
    ]


def paper_rules() -> list[RelaxationRule]:
    """Figure 4: the four example relaxation rules, with the paper's weights."""
    return [
        parse_rule(
            "?x bornIn ?y ; ?y type country => "
            "?x bornIn ?z ; ?z type city ; ?z locatedIn ?y @ 1.0"
        ),
        parse_rule("?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0"),
        parse_rule(
            "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y @ 0.8"
        ),
        parse_rule("?x affiliation ?y => ?x 'lectured at' ?y @ 0.7"),
    ]


def paper_store() -> TripleStore:
    """The complete Figure 1 + Figure 3 store (with type assertions)."""
    store = TripleStore("PaperExample")
    for triple in paper_kg() + paper_type_triples():
        store.add(triple)
    for triple, provenance, confidence in paper_xkg_extension():
        store.add(triple, provenance, confidence)
    return store.freeze()


def paper_engine(*, with_rules: bool = True, **config_kwargs) -> TriniT:
    """A TriniT engine over the paper's example, Figure 4 rules pre-loaded.

    Automatic miners stay enabled but find little on eleven triples — the
    Figure 4 rules carry the demo, exactly as in the paper's screenshots.
    """
    config = EngineConfig(**config_kwargs) if config_kwargs else EngineConfig()
    return TriniT(
        paper_store(),
        config=config,
        rules=paper_rules() if with_rules else (),
    )
