"""Class taxonomy for the synthetic KG.

Yago2s combines Wikipedia categories with WordNet classes into a deep
subsumption hierarchy; our synthetic analogue is a small fixed DAG covering
the entity kinds the world model generates.  The taxonomy answers
subsumption queries (needed by granularity relaxation rules and by
benchmark-query generation) and yields ``subclassOf`` triples for the KG.
"""

from __future__ import annotations

from repro.core.terms import Resource
from repro.core.triples import Triple

#: (subclass, superclass) edges of the fixed taxonomy.
TAXONOMY_EDGES: tuple[tuple[str, str], ...] = (
    ("physicist", "scientist"),
    ("chemist", "scientist"),
    ("biologist", "scientist"),
    ("economist", "scholar"),
    ("linguist", "scholar"),
    ("scientist", "person"),
    ("scholar", "person"),
    ("person", "entity"),
    ("city", "location"),
    ("country", "location"),
    ("location", "entity"),
    ("university", "organization"),
    ("researchInstitute", "organization"),
    ("company", "organization"),
    ("organization", "entity"),
    ("prize", "award"),
    ("award", "entity"),
    ("researchField", "abstraction"),
    ("abstraction", "entity"),
    ("universityGroup", "organization"),
)

#: Classes a person entity may be typed with directly.
PERSON_LEAF_CLASSES = ("physicist", "chemist", "biologist", "economist", "linguist")


class Taxonomy:
    """Subsumption queries over the fixed class DAG."""

    def __init__(self, edges: tuple[tuple[str, str], ...] = TAXONOMY_EDGES):
        self._parents: dict[str, set[str]] = {}
        for child, parent in edges:
            self._parents.setdefault(child, set()).add(parent)
            self._parents.setdefault(parent, set())
        self._ancestors_cache: dict[str, frozenset[str]] = {}

    def classes(self) -> list[str]:
        """All class names, sorted."""
        return sorted(self._parents)

    def __contains__(self, name: str) -> bool:
        return name in self._parents

    def parents(self, name: str) -> frozenset[str]:
        return frozenset(self._parents.get(name, ()))

    def ancestors(self, name: str) -> frozenset[str]:
        """All strict superclasses (transitive), cached."""
        cached = self._ancestors_cache.get(name)
        if cached is not None:
            return cached
        result: set[str] = set()
        frontier = list(self._parents.get(name, ()))
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self._parents.get(current, ()))
        frozen = frozenset(result)
        self._ancestors_cache[name] = frozen
        return frozen

    def is_subclass(self, child: str, parent: str) -> bool:
        """Reflexive-transitive subsumption check."""
        return child == parent or parent in self.ancestors(child)

    def subclass_triples(self, subclass_predicate: str = "subclassOf") -> list[Triple]:
        """``subclassOf`` triples for the KG, deterministic order."""
        predicate = Resource(subclass_predicate)
        return [
            Triple(Resource(child), predicate, Resource(parent))
            for child, parents in sorted(self._parents.items())
            for parent in sorted(parents)
        ]

    def type_closure(self, leaf: str) -> list[str]:
        """The leaf class plus all its ancestors except the root 'entity'."""
        return [leaf] + sorted(c for c in self.ancestors(leaf) if c != "entity")
