"""Synthetic world model and Yago-style knowledge graph generation.

The paper runs on Yago2s (≈50 M triples); offline we generate a deterministic
synthetic equivalent.  The key design decision: a hidden, *complete*
:class:`~repro.kg.world.World` is generated first, and the KG is a lossy,
vocabulary-limited *sample* of it — some relations are dropped entirely from
the KG vocabulary, others keep only a fraction of their facts.  The corpus
generator (:mod:`repro.openie.corpus`) verbalises the complete world, so Open
IE can recover exactly the knowledge the KG is missing — reproducing the
incompleteness structure the paper's XKG exists to fix.  Evaluation
judgments come from the world, which no system ever sees.
"""

from repro.kg.names import NameFactory
from repro.kg.taxonomy import Taxonomy, TAXONOMY_EDGES
from repro.kg.world import World, WorldConfig, WorldEntity, WorldFact
from repro.kg.generator import KgGenerator, KgConfig, GeneratedKg
from repro.kg.paper_example import paper_kg, paper_xkg_extension, paper_rules, paper_engine

__all__ = [
    "NameFactory",
    "Taxonomy",
    "TAXONOMY_EDGES",
    "World",
    "WorldConfig",
    "WorldEntity",
    "WorldFact",
    "KgGenerator",
    "KgConfig",
    "GeneratedKg",
    "paper_kg",
    "paper_xkg_extension",
    "paper_rules",
    "paper_engine",
]
