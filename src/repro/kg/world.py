"""The hidden complete world model.

Everything downstream — the incomplete KG, the text corpus, and the
evaluation judgments — derives from one :class:`World`: a closed universe of
entities (people, organisations, places, prizes, fields) and *complete*
relational facts.  The KG generator samples a lossy view of it; the corpus
generator verbalises it (including what the KG dropped); the evaluation
harness grades answers against it.  No query-processing component ever reads
the world directly.

World relations (complete here; KG coverage decided later per relation):

=================  =======================================  =================
relation           semantics                                object
=================  =======================================  =================
bornInCity         person born in city                      city
bornOnDate         person's birth date                      ISO date literal
diedInCity         person died in city (some people)        city
nationality        person's citizenship                     country
worksAt            person's employer                        org
educatedAt         person's alma mater                      university
hasAdvisor         person's doctoral advisor                person
lecturedAt         person gave guest lectures at            university
fieldOf            person's research field                  field
wonPrize           person won prize                         prize
prizeFor           what the prize was awarded for           field
marriedTo          symmetric marriage                       person
collaboratedWith   symmetric collaboration                  person
cityInCountry      geographic containment                   country
orgInCity          organisation's seat                      city
housedIn           institute housed in university           university
memberOfGroup      university belongs to group              group
prizeInField       prize's field                            field
=================  =======================================  =================
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.kg.names import NameFactory, to_camel
from repro.kg.taxonomy import PERSON_LEAF_CLASSES, Taxonomy
from repro.util.rand import SeededRng

#: All world relation names, in generation order.
WORLD_RELATIONS = (
    "cityInCountry",
    "orgInCity",
    "housedIn",
    "memberOfGroup",
    "prizeInField",
    "bornInCity",
    "bornOnDate",
    "diedInCity",
    "nationality",
    "fieldOf",
    "educatedAt",
    "worksAt",
    "hasAdvisor",
    "lecturedAt",
    "wonPrize",
    "prizeFor",
    "marriedTo",
    "collaboratedWith",
)


@dataclass(frozen=True)
class WorldEntity:
    """One entity: KG resource name, textual surface form, kind, leaf class."""

    id: str
    surface: str
    kind: str
    leaf_class: str


@dataclass(frozen=True)
class WorldFact:
    """One ground-truth fact; ``obj`` is an entity id or a literal string."""

    relation: str
    subject: str
    obj: str
    literal: bool = False


@dataclass(frozen=True)
class WorldConfig:
    """Size and shape of the generated world (defaults: test scale).

    The evaluation benches scale ``num_people`` and friends up; all
    relation-density knobs stay proportional.
    """

    seed: int = 7
    num_countries: int = 6
    min_cities_per_country: int = 2
    max_cities_per_country: int = 5
    num_universities: int = 12
    num_institutes: int = 8
    num_companies: int = 6
    num_fields: int = 10
    num_prizes: int = 6
    num_groups: int = 2
    num_people: int = 150
    prize_winner_fraction: float = 0.15
    advisor_probability: float = 0.6
    lecture_probability: float = 0.4
    marriage_probability: float = 0.25
    collaboration_avg: float = 1.5
    death_probability: float = 0.3


class World:
    """The complete ground-truth universe.  Use :meth:`generate`."""

    def __init__(self, config: WorldConfig):
        self.config = config
        self.entities: dict[str, WorldEntity] = {}
        self.facts: list[WorldFact] = []
        self._by_relation: dict[str, list[WorldFact]] = defaultdict(list)
        self._pairs: dict[str, set[tuple[str, str]]] = defaultdict(set)
        # Per-subject / per-object adjacency, so objects_of / subjects_of
        # stay O(degree) instead of scanning a relation's whole pair set —
        # generation probes these inside the per-person loop, which made
        # lookups over growing relations (marriedTo) quadratic at scale.
        self._objects: dict[tuple[str, str], list[str]] = defaultdict(list)
        self._subjects: dict[tuple[str, str], list[str]] = defaultdict(list)
        self.people: list[WorldEntity] = []
        self.cities: list[WorldEntity] = []
        self.countries: list[WorldEntity] = []
        self.universities: list[WorldEntity] = []
        self.institutes: list[WorldEntity] = []
        self.companies: list[WorldEntity] = []
        self.fields: list[WorldEntity] = []
        self.prizes: list[WorldEntity] = []
        self.groups: list[WorldEntity] = []

    # -- accessors ------------------------------------------------------------

    def entity(self, entity_id: str) -> WorldEntity:
        return self.entities[entity_id]

    def organizations(self) -> list[WorldEntity]:
        return self.universities + self.institutes + self.companies

    def facts_of(self, relation: str) -> list[WorldFact]:
        return self._by_relation.get(relation, [])

    def pairs(self, relation: str) -> set[tuple[str, str]]:
        """The complete (subject, object) pair set of a relation."""
        return self._pairs.get(relation, set())

    def objects_of(self, relation: str, subject: str) -> list[str]:
        return sorted(self._objects.get((relation, subject), ()))

    def subjects_of(self, relation: str, obj: str) -> list[str]:
        return sorted(self._subjects.get((relation, obj), ()))

    def holds(self, relation: str, subject: str, obj: str) -> bool:
        return (subject, obj) in self._pairs.get(relation, set())

    # -- construction ------------------------------------------------------------

    def _add_entity(self, surface: str, kind: str, leaf_class: str) -> WorldEntity:
        entity = WorldEntity(to_camel(surface), surface, kind, leaf_class)
        if entity.id in self.entities:
            raise ValueError(f"Duplicate entity id: {entity.id}")
        self.entities[entity.id] = entity
        return entity

    def _add_fact(self, relation: str, subject: str, obj: str, literal: bool = False) -> None:
        if (subject, obj) in self._pairs[relation]:
            return
        fact = WorldFact(relation, subject, obj, literal)
        self.facts.append(fact)
        self._by_relation[relation].append(fact)
        self._pairs[relation].add((subject, obj))
        self._objects[relation, subject].append(obj)
        self._subjects[relation, obj].append(subject)

    @classmethod
    def generate(cls, config: WorldConfig | None = None) -> "World":
        """Deterministically generate a world from ``config.seed``."""
        config = config if config is not None else WorldConfig()
        world = cls(config)
        rng = SeededRng(config.seed)
        names = NameFactory(rng)
        taxonomy = Taxonomy()

        world._generate_geography(rng.fork("geo"), names)
        world._generate_fields_and_prizes(rng.fork("fields"), names)
        world._generate_organizations(rng.fork("orgs"), names)
        world._generate_people(rng.fork("people"), names, taxonomy)
        return world

    def _generate_geography(self, rng: SeededRng, names: NameFactory) -> None:
        for _ in range(self.config.num_countries):
            self.countries.append(self._add_entity(names.country(), "country", "country"))
        for country in self.countries:
            city_count = rng.randint(
                self.config.min_cities_per_country, self.config.max_cities_per_country
            )
            for _ in range(city_count):
                city = self._add_entity(names.city(), "city", "city")
                self.cities.append(city)
                self._add_fact("cityInCountry", city.id, country.id)

    def _generate_fields_and_prizes(self, rng: SeededRng, names: NameFactory) -> None:
        for _ in range(self.config.num_fields):
            self.fields.append(
                self._add_entity(names.field(), "field", "researchField")
            )
        for _ in range(self.config.num_prizes):
            prize_field = rng.choice(self.fields)
            prize = self._add_entity(
                names.prize(prize_field.surface), "prize", "prize"
            )
            self.prizes.append(prize)
            self._add_fact("prizeInField", prize.id, prize_field.id)

    def _generate_organizations(self, rng: SeededRng, names: NameFactory) -> None:
        for _ in range(self.config.num_groups):
            self.groups.append(
                self._add_entity(names.group(), "group", "universityGroup")
            )
        for _ in range(self.config.num_universities):
            city = self.cities[rng.zipf_index(len(self.cities))]
            university = self._add_entity(
                names.university(city.surface), "university", "university"
            )
            self.universities.append(university)
            self._add_fact("orgInCity", university.id, city.id)
            if self.groups and rng.chance(0.4):
                group = rng.choice(self.groups)
                self._add_fact("memberOfGroup", university.id, group.id)
        for _ in range(self.config.num_institutes):
            institute_field = rng.choice(self.fields)
            institute = self._add_entity(
                names.institute(institute_field.surface),
                "institute",
                "researchInstitute",
            )
            self.institutes.append(institute)
            host = rng.choice(self.universities)
            # An institute is housed in a university and sits in its city.
            self._add_fact("housedIn", institute.id, host.id)
            host_city = self.objects_of("orgInCity", host.id)
            if host_city:
                self._add_fact("orgInCity", institute.id, host_city[0])
        for _ in range(self.config.num_companies):
            company = self._add_entity(names.company(), "company", "company")
            self.companies.append(company)
            city = self.cities[rng.zipf_index(len(self.cities))]
            self._add_fact("orgInCity", company.id, city.id)

    def _generate_people(
        self, rng: SeededRng, names: NameFactory, taxonomy: Taxonomy
    ) -> None:
        organizations = self.organizations()
        winner_count = max(1, int(self.config.num_people * self.config.prize_winner_fraction))
        for index in range(self.config.num_people):
            leaf = rng.choice(PERSON_LEAF_CLASSES)
            person = self._add_entity(names.person(), "person", leaf)
            self.people.append(person)
            pid = person.id

            birth_city = self.cities[rng.zipf_index(len(self.cities))]
            self._add_fact("bornInCity", pid, birth_city.id)
            country = self.objects_of("cityInCountry", birth_city.id)[0]
            self._add_fact("nationality", pid, country)
            year = 1880 + rng.randint(0, 119)
            month, day = rng.randint(1, 12), rng.randint(1, 28)
            self._add_fact(
                "bornOnDate", pid, f"{year:04d}-{month:02d}-{day:02d}", literal=True
            )
            if rng.chance(self.config.death_probability):
                self._add_fact(
                    "diedInCity", pid, self.cities[rng.zipf_index(len(self.cities))].id
                )

            person_field = rng.choice(self.fields)
            self._add_fact("fieldOf", pid, person_field.id)

            for university in rng.sample(self.universities, rng.randint(1, 2)):
                self._add_fact("educatedAt", pid, university.id)
            employer = organizations[rng.zipf_index(len(organizations))]
            self._add_fact("worksAt", pid, employer.id)

            # Advisors come from already-generated (more senior) people.
            if index > 3 and rng.chance(self.config.advisor_probability):
                advisor = self.people[rng.zipf_index(index)]
                if advisor.id != pid:
                    self._add_fact("hasAdvisor", pid, advisor.id)

            if rng.chance(self.config.lecture_probability):
                for university in rng.sample(
                    self.universities, rng.randint(1, min(2, len(self.universities)))
                ):
                    if university.id != employer.id:
                        self._add_fact("lecturedAt", pid, university.id)

            # The most popular people win prizes, for the work in their field.
            if index < winner_count and self.prizes:
                prize = rng.choice(self.prizes)
                self._add_fact("wonPrize", pid, prize.id)
                self._add_fact("prizeFor", pid, person_field.id)

        # Symmetric relations over generated people.
        for index, person in enumerate(self.people):
            if rng.chance(self.config.marriage_probability) and index + 1 < len(self.people):
                partner = self.people[rng.randint(index + 1, len(self.people) - 1)]
                if not self.objects_of("marriedTo", person.id) and not self.objects_of(
                    "marriedTo", partner.id
                ):
                    self._add_fact("marriedTo", person.id, partner.id)
                    self._add_fact("marriedTo", partner.id, person.id)
            collaborations = rng.randint(0, int(self.config.collaboration_avg * 2))
            for _ in range(collaborations):
                other = self.people[rng.zipf_index(len(self.people))]
                if other.id != person.id:
                    self._add_fact("collaboratedWith", person.id, other.id)
                    self._add_fact("collaboratedWith", other.id, person.id)
