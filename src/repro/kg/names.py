"""Deterministic, readable name generation for synthetic entities.

Every entity needs two forms: a CamelCase resource name for the KG
(``MartaKovacs``, ``UniversityOfBrenford``) and a surface form for corpus
text ("Marta Kovacs", "the University of Brenford").  Names are drawn from
fixed syllable inventories with a :class:`~repro.util.rand.SeededRng`, so a
seed fully determines every name, and collisions are resolved by numbering.
"""

from __future__ import annotations

from repro.util.rand import SeededRng

_GIVEN = [
    "Al", "Ben", "Cla", "Da", "El", "Fe", "Gre", "Han", "Ing", "Jo",
    "Ka", "Li", "Mar", "Nor", "Ol", "Pe", "Qui", "Ro", "Sa", "Tho",
]
_GIVEN_END = ["ra", "na", "to", "bert", "ria", "lix", "gor", "mas", "vid", "line"]
_FAMILY = [
    "Ander", "Berg", "Carl", "Dor", "Eber", "Fisch", "Gold", "Hoff",
    "Iva", "Jans", "Kova", "Lind", "Mont", "Newm", "Ostr", "Pell",
    "Quast", "Rein", "Stein", "Traut",
]
_FAMILY_END = ["son", "mann", "berg", "ini", "ov", "er", "feld", "etti", "cs", "dal"]
_PLACE = [
    "Bren", "Cal", "Dun", "Es", "Fal", "Gor", "Hol", "Ips", "Jar", "Kel",
    "Lor", "Mond", "Nar", "Or", "Pras", "Quill", "Ros", "Sten", "Tarn", "Ulm",
]
_PLACE_END = ["ford", "wick", "stad", "mouth", "berg", "ton", "holm", "dale", "gart", "by"]
_COUNTRY = [
    "Ard", "Bel", "Cor", "Dal", "Est", "Fen", "Gal", "Hesp", "Ill", "Jut",
]
_COUNTRY_END = ["onia", "avia", "land", "mark", "istan", "ora", "esia", "ria", "ium", "any"]
_FIELD_HEAD = [
    "quantum", "statistical", "organic", "theoretical", "applied",
    "computational", "molecular", "classical", "nuclear", "cognitive",
]
_FIELD_TAIL = [
    "mechanics", "chemistry", "biology", "economics", "linguistics",
    "optics", "topology", "genetics", "astronomy", "logic",
]


def to_camel(surface: str) -> str:
    """Turn a surface form into a CamelCase resource name.

    >>> to_camel("university of Brenford")
    'UniversityOfBrenford'
    """
    return "".join(part.capitalize() for part in surface.split())


class NameFactory:
    """Collision-free deterministic name generator."""

    def __init__(self, rng: SeededRng):
        self._rng = rng.fork("names")
        self._used: set[str] = set()

    def _unique(self, surface: str) -> str:
        candidate = surface
        suffix = 2
        while to_camel(candidate) in self._used:
            candidate = f"{surface} {_roman(suffix)}"
            suffix += 1
        self._used.add(to_camel(candidate))
        return candidate

    def person(self) -> str:
        given = self._rng.choice(_GIVEN) + self._rng.choice(_GIVEN_END)
        family = self._rng.choice(_FAMILY) + self._rng.choice(_FAMILY_END)
        return self._unique(f"{given} {family}")

    def city(self) -> str:
        return self._unique(self._rng.choice(_PLACE) + self._rng.choice(_PLACE_END))

    def country(self) -> str:
        return self._unique(self._rng.choice(_COUNTRY) + self._rng.choice(_COUNTRY_END))

    # Organisation surfaces deliberately avoid "of"/"for": prepositions
    # inside entity names would split NP chunks and break both extraction
    # arguments and mention annotation (ReVerb has the same bias toward
    # compact proper-noun arguments).

    def university(self, city_surface: str) -> str:
        style = self._rng.randint(0, 2)
        if style == 0:
            return self._unique(f"{city_surface} university")
        if style == 1:
            return self._unique(f"{city_surface} polytechnic")
        return self._unique(f"{city_surface} state university")

    def institute(self, field_surface: str) -> str:
        style = self._rng.randint(0, 1)
        if style == 0:
            return self._unique(f"{field_surface} institute")
        return self._unique(f"{field_surface} research center")

    def company(self) -> str:
        head = self._rng.choice(_FAMILY) + self._rng.choice(_FAMILY_END)
        tail = self._rng.choice(["systems", "dynamics", "labs", "industries", "analytics"])
        return self._unique(f"{head} {tail}")

    def field(self) -> str:
        return self._unique(
            f"{self._rng.choice(_FIELD_HEAD)} {self._rng.choice(_FIELD_TAIL)}"
        )

    def prize(self, field_surface: str) -> str:
        style = self._rng.randint(0, 1)
        if style == 0:
            return self._unique(f"{field_surface} medal")
        return self._unique(f"international {field_surface} prize")

    def group(self) -> str:
        head = self._rng.choice(_PLACE) + self._rng.choice(_PLACE_END)
        return self._unique(f"{head} league")


def _roman(number: int) -> str:
    """Small roman numerals for collision suffixes (II, III, IV, ...)."""
    numerals = [
        (10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I"),
    ]
    result = []
    for value, symbol in numerals:
        while number >= value:
            result.append(symbol)
            number -= value
    return "".join(result)
