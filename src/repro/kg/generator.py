"""Sampling a Yago-style incomplete KG from the complete world.

Incompleteness has two dimensions, both present in real KGs and both needed
to reproduce the paper's four user scenarios (Figure 2):

* **Vocabulary gaps** — some world relations have *no* KG predicate at all
  (``lecturedAt``, ``housedIn``, ``prizeFor``, ``collaboratedWith``): user
  D's case.  Only the corpus expresses them.
* **Fact gaps** — relations that are in the vocabulary keep only a fraction
  of their world facts (per-relation coverage below).

The mapping also *bakes in the mismatch traps* of Figure 2: people are born
in cities, not countries (user A), and the advisor relation is stored as
``hasStudent`` with advisor as subject (user B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

from repro.core.terms import Literal, Resource
from repro.core.triples import KG_PROVENANCE, Provenance, Triple
from repro.kg.taxonomy import Taxonomy
from repro.kg.world import World, WorldFact
from repro.storage.store import TripleStore
from repro.util.rand import SeededRng


@dataclass(frozen=True)
class RelationMapping:
    """How one world relation appears in the KG.

    ``coverage`` is the fraction of world facts the KG keeps; ``inverted``
    stores the fact with swapped arguments under the KG predicate (the
    hasAdvisor → hasStudent trap).  ``predicate=None`` removes the relation
    from the KG vocabulary entirely.
    """

    predicate: str | None
    coverage: float = 1.0
    inverted: bool = False


#: Default world-relation → KG mapping (the Yago2s analogue).
DEFAULT_MAPPINGS: dict[str, RelationMapping] = {
    "bornInCity": RelationMapping("bornIn", 0.75),
    "bornOnDate": RelationMapping("bornOnDate", 0.80),
    "diedInCity": RelationMapping("diedIn", 0.60),
    "nationality": RelationMapping("citizenOf", 0.50),
    "worksAt": RelationMapping("affiliation", 0.60),
    "educatedAt": RelationMapping("graduatedFrom", 0.60),
    # The KG models advisorship from the advisor's side.
    "hasAdvisor": RelationMapping("hasStudent", 0.70, inverted=True),
    "wonPrize": RelationMapping("wonPrize", 0.70),
    "marriedTo": RelationMapping("marriedTo", 0.50),
    "cityInCountry": RelationMapping("locatedIn", 1.00),
    "orgInCity": RelationMapping("locatedIn", 0.85),
    "memberOfGroup": RelationMapping("member", 1.00),
    "prizeInField": RelationMapping("inField", 0.80),
    "fieldOf": RelationMapping("researchArea", 0.40),
    # Vocabulary gaps: only the corpus knows these.
    "lecturedAt": RelationMapping(None),
    "housedIn": RelationMapping(None),
    "prizeFor": RelationMapping(None),
    "collaboratedWith": RelationMapping(None),
}

TYPE_PREDICATE = "type"
SUBCLASS_PREDICATE = "subclassOf"


@dataclass(frozen=True)
class KgConfig:
    """KG sampling parameters."""

    seed: int = 11
    mappings: dict[str, RelationMapping] = field(
        default_factory=lambda: dict(DEFAULT_MAPPINGS)
    )
    type_coverage: float = 0.95
    kg_name: str = "SyntheticYago"


@dataclass
class GeneratedKg:
    """The sampled KG: triples plus bookkeeping for analysis and eval."""

    config: KgConfig
    triples: list[Triple]
    kept_facts: dict[str, list[WorldFact]]
    dropped_facts: dict[str, list[WorldFact]]
    provenance: Provenance

    def predicate_for(self, relation: str) -> Resource | None:
        """The KG predicate of a world relation, or None if vocabulary-gapped."""
        mapping = self.config.mappings.get(relation)
        if mapping is None or mapping.predicate is None:
            return None
        return Resource(mapping.predicate)

    def coverage_of(self, relation: str) -> float:
        """Realised (not configured) coverage of a relation."""
        kept = len(self.kept_facts.get(relation, ()))
        dropped = len(self.dropped_facts.get(relation, ()))
        total = kept + dropped
        return kept / total if total else 0.0

    def store(
        self,
        name: str | None = None,
        freeze: bool = True,
        backend: str | None = None,
    ) -> TripleStore:
        """Load the KG into a fresh triple store.

        ``backend`` picks the storage backend directly (``"sharded"`` for
        benchmark-scale KGs skips the build-then-convert copy).
        """
        store = TripleStore(name or self.config.kg_name, backend=backend)
        for triple in self.triples:
            store.add(triple, self.provenance)
        return store.freeze() if freeze else store


class KgGenerator:
    """Generates the KG view of a world."""

    def __init__(self, world: World, config: KgConfig | None = None):
        self.world = world
        self.config = config if config is not None else KgConfig()
        self.taxonomy = Taxonomy()

    def _object_term(self, fact: WorldFact):
        if fact.literal:
            try:
                return Literal(date.fromisoformat(fact.obj))
            except ValueError:
                return Literal(fact.obj)
        return Resource(fact.obj)

    def generate(self) -> GeneratedKg:
        """Sample the KG deterministically from the generator's seed."""
        rng = SeededRng(self.config.seed)
        provenance = Provenance(origin="kg", source=self.config.kg_name)
        triples: list[Triple] = []
        kept: dict[str, list[WorldFact]] = {}
        dropped: dict[str, list[WorldFact]] = {}

        for relation in sorted(self.config.mappings):
            mapping = self.config.mappings[relation]
            facts = self.world.facts_of(relation)
            kept[relation] = []
            dropped[relation] = []
            if mapping.predicate is None:
                dropped[relation] = list(facts)
                continue
            predicate = Resource(mapping.predicate)
            relation_rng = rng.fork(relation)
            for fact in facts:
                if not relation_rng.chance(mapping.coverage):
                    dropped[relation].append(fact)
                    continue
                kept[relation].append(fact)
                obj = self._object_term(fact)
                subject = Resource(fact.subject)
                if mapping.inverted:
                    if fact.literal:
                        raise ValueError(
                            f"Cannot invert literal-valued relation {relation}"
                        )
                    triples.append(Triple(Resource(fact.obj), predicate, subject))
                else:
                    triples.append(Triple(subject, predicate, obj))

        # Type assertions: every entity gets its leaf class (mostly), plus
        # the full subclassOf hierarchy.
        type_predicate = Resource(TYPE_PREDICATE)
        type_rng = rng.fork("types")
        for entity_id in sorted(self.world.entities):
            entity = self.world.entities[entity_id]
            if type_rng.chance(self.config.type_coverage):
                triples.append(
                    Triple(
                        Resource(entity.id),
                        type_predicate,
                        Resource(entity.leaf_class),
                    )
                )
        triples.extend(self.taxonomy.subclass_triples(SUBCLASS_PREDICATE))

        return GeneratedKg(
            config=self.config,
            triples=triples,
            kept_facts=kept,
            dropped_facts=dropped,
            provenance=provenance,
        )
