"""Parser for the textual form of the extended query language.

Grammar (whitespace-separated, case-sensitive keywords)::

    query    :=  [ 'SELECT' var+ 'WHERE' ] pattern ( ';' pattern )* [ 'LIMIT' int ]
    pattern  :=  term term term
    term     :=  '?name'                 (variable)
              |  'phrase with spaces'    (text token, single quotes)
              |  "literal value"         (literal, double quotes)
              |  bareword                (KG resource)
    rule     :=  pattern ( ';' pattern )* '=>' pattern ( ';' pattern )* [ '@' weight ]

Examples::

    ?x bornIn Germany
    SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague
    AlbertEinstein 'won nobel for' ?x LIMIT 5
    ?x affiliation ?y => ?x 'lectured at' ?y @ 0.7
"""

from __future__ import annotations

from repro.core.query import Query
from repro.core.terms import Term, Variable, term_from_text
from repro.core.triples import TriplePattern
from repro.errors import ParseError


def _lex(text: str) -> list[str]:
    """Split query text into tokens, keeping quoted phrases intact.

    ``;`` and ``.`` act as pattern separators and are emitted as their own
    tokens even when glued to a term.
    """
    tokens: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c.isspace():
            i += 1
            continue
        if c in ";.":
            # A '.' inside a bareword (e.g. a decimal weight) is handled by
            # the caller; at the top level '.' only appears as a separator.
            tokens.append(";")
            i += 1
            continue
        if c in "'\"":
            end = text.find(c, i + 1)
            if end == -1:
                raise ParseError(f"Unterminated quote starting at offset {i}", text, i)
            tokens.append(text[i : end + 1])
            i = end + 1
            continue
        j = i
        while j < n and not text[j].isspace() and text[j] not in ";":
            j += 1
        tokens.append(text[i:j])
        i = j
    return tokens


def _parse_patterns(tokens: list[str], source: str) -> list[TriplePattern]:
    """Parse a ';'-separated sequence of 3-term patterns."""
    patterns: list[TriplePattern] = []
    group: list[Term] = []
    for tok in tokens:
        if tok == ";":
            if group:
                patterns.append(_close_pattern(group, source))
                group = []
            continue
        try:
            group.append(term_from_text(tok))
        except Exception as exc:  # TermError carries the detail
            raise ParseError(f"Bad term {tok!r}: {exc}", source) from exc
        if len(group) == 3:
            # Patterns may also be separated by just starting the next triple.
            pass
    if group:
        patterns.append(_close_pattern(group, source))
    if not patterns:
        raise ParseError("No triple patterns found", source)
    return patterns


def _close_pattern(group: list[Term], source: str) -> TriplePattern:
    if len(group) != 3:
        rendered = " ".join(t.n3() for t in group)
        raise ParseError(
            f"Triple pattern needs exactly 3 terms, got {len(group)}: {rendered!r}",
            source,
        )
    return TriplePattern(group[0], group[1], group[2])


def parse_pattern(text: str) -> TriplePattern:
    """Parse a single triple pattern.

    >>> parse_pattern("?x bornIn Germany")
    TriplePattern(s=Variable('x'), p=Resource('bornIn'), o=Resource('Germany'))
    """
    tokens = _lex(text)
    patterns = _parse_patterns(tokens, text)
    if len(patterns) != 1:
        raise ParseError(f"Expected one pattern, found {len(patterns)}", text)
    return patterns[0]


def parse_query(text: str, default_limit: int = 10) -> Query:
    """Parse the full query syntax (see module docstring).

    >>> q = parse_query("SELECT ?x WHERE AlbertEinstein affiliation ?x ; "
    ...                 "?x member IvyLeague LIMIT 3")
    >>> len(q.patterns), q.limit
    (2, 3)
    """
    if not text or not text.strip():
        raise ParseError("Empty query", text)
    tokens = _lex(text)

    limit = default_limit
    if len(tokens) >= 2 and tokens[-2] == "LIMIT":
        try:
            limit = int(tokens[-1])
        except ValueError as exc:
            raise ParseError(f"Bad LIMIT value {tokens[-1]!r}", text) from exc
        tokens = tokens[:-2]

    projection: list[Variable] = []
    if tokens and tokens[0] == "SELECT":
        try:
            where = tokens.index("WHERE")
        except ValueError as exc:
            raise ParseError("SELECT without WHERE", text) from exc
        for tok in tokens[1:where]:
            term = term_from_text(tok)
            if not isinstance(term, Variable):
                raise ParseError(f"SELECT clause admits only variables, got {tok!r}", text)
            projection.append(term)
        if not projection:
            raise ParseError("Empty SELECT clause", text)
        tokens = tokens[where + 1 :]

    patterns = _parse_patterns(tokens, text)
    return Query(patterns, projection, limit)


def parse_rule(text: str):
    """Parse a relaxation rule: ``lhs => rhs [@ weight]``.

    Returns a :class:`repro.relax.rules.RelaxationRule`.  Declared here so
    rules can be written in the same surface syntax as queries::

        ?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0
        ?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y @ 0.8
    """
    from repro.relax.rules import RelaxationRule  # deferred: avoids cycle

    if "=>" not in text:
        raise ParseError("A rule needs '=>' between original and replacement", text)
    lhs_text, rhs_text = text.split("=>", 1)
    weight = 1.0
    if "@" in rhs_text:
        rhs_text, weight_text = rhs_text.rsplit("@", 1)
        try:
            weight = float(weight_text.strip())
        except ValueError as exc:
            raise ParseError(f"Bad rule weight {weight_text.strip()!r}", text) from exc
    lhs = _parse_patterns(_lex(lhs_text), text)
    rhs = _parse_patterns(_lex(rhs_text), text)
    return RelaxationRule(tuple(lhs), tuple(rhs), weight, origin="manual")
