"""Answer explanations (Section 5, "Answer Explanation").

An explanation shows the three pieces of information the paper names:

(i)   the curated-KG triples that contributed to the answer,
(ii)  the XKG extension triples that contributed, with their provenance
      (source document, extraction sentence, extractor),
(iii) the relaxation rules invoked to obtain the answer — both query-level
      rewritings and pattern-level relaxations, plus fuzzy token matches.

Everything is reconstructed from the answer's recorded best derivation; no
re-execution is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import Query
from repro.core.results import Answer
from repro.storage.store import StoredTriple


@dataclass(frozen=True)
class Explanation:
    """Structured explanation of one answer."""

    answer: Answer
    kg_triples: tuple[StoredTriple, ...]
    xkg_triples: tuple[StoredTriple, ...]
    rule_lines: tuple[str, ...]
    token_lines: tuple[str, ...]
    query: Query | None = None

    @property
    def used_relaxation(self) -> bool:
        return bool(self.rule_lines)

    @property
    def used_xkg(self) -> bool:
        return bool(self.xkg_triples)

    def render(self) -> str:
        """Multi-line plain-text rendering (the Figure 6 analogue)."""
        lines: list[str] = []
        binding = ", ".join(
            f"{var.n3()} = {term.n3()}" for var, term in self.answer.binding
        )
        lines.append(f"Answer: {binding}")
        lines.append(f"Score:  {self.answer.score:.4f}")
        if self.query is not None:
            lines.append(f"Query:  {self.query.n3()}")
        if self.answer.num_derivations > 1:
            lines.append(
                f"Derivations: {self.answer.num_derivations} "
                "(score is the maximum over all of them)"
            )
        lines.append("")
        lines.append("KG triples contributing:")
        if self.kg_triples:
            for record in self.kg_triples:
                lines.append(f"  {record.triple.n3()}")
        else:
            lines.append("  (none)")
        lines.append("XKG triples contributing:")
        if self.xkg_triples:
            for record in self.xkg_triples:
                lines.append(f"  {record.triple.n3()}  [x{record.count}]")
                for provenance in record.provenances[:2]:
                    lines.append(f"    - {provenance.describe()}")
        else:
            lines.append("  (none)")
        lines.append("Relaxation rules invoked:")
        if self.rule_lines:
            for line in self.rule_lines:
                lines.append(f"  {line}")
        else:
            lines.append("  (none — exact match)")
        if self.token_lines:
            lines.append("Token matches:")
            for line in self.token_lines:
                lines.append(f"  {line}")
        return "\n".join(lines)


def explain_answer(answer: Answer, query: Query | None = None) -> Explanation:
    """Build the :class:`Explanation` for ``answer`` from its derivation."""
    derivation = answer.derivation
    kg_triples: list[StoredTriple] = []
    xkg_triples: list[StoredTriple] = []
    for record in derivation.triples_used():
        is_extension = record.triple.is_token_triple or any(
            p.is_extraction for p in record.provenances
        )
        target = xkg_triples if is_extension else kg_triples
        if record not in target:
            target.append(record)

    rule_lines: list[str] = []
    for application in derivation.rewriting:
        rule_lines.append(f"[query rewrite] {application.describe()}")
    for match in derivation.matches:
        if match.rule is not None:
            rule_lines.append(
                f"[pattern relax] {match.rule.describe()} "
                f"→ matched {match.pattern.n3()}"
            )

    token_lines: list[str] = []
    for match in derivation.matches:
        for token_match in match.token_matches:
            if token_match.similarity < 1.0:
                token_lines.append(
                    f"matched {token_match.token.n3()} with similarity "
                    f"{token_match.similarity:.2f}"
                )

    return Explanation(
        answer=answer,
        kg_triples=tuple(kg_triples),
        xkg_triples=tuple(xkg_triples),
        rule_lines=tuple(rule_lines),
        token_lines=tuple(token_lines),
        query=query,
    )
