"""The TriniT engine facade — the library's primary public entry point.

Wires together storage, statistics, rule mining (through the relaxation
operator registry), scoring, top-k processing, explanation and suggestion::

    from repro import TriniT, Triple, Resource

    engine = TriniT.from_triples(kg_triples, extension_triples)
    answers = engine.ask("SELECT ?x WHERE AlbertEinstein affiliation ?x", k=5)
    print(answers.render_table())
    print(engine.explain(answers.top()).render())
    for suggestion in engine.suggest("?x 'born in' Germany"):
        print(suggestion.text)

Session lifecycle and streaming — the interactive surface::

    with TriniT.open("xkg.snap") as engine:            # mmap-loaded snapshot
        stream = engine.stream("?x 'works at' ?y")
        first = stream.next_k(10)                       # time-to-first-answer
        more = stream.next_k(10)                        # resumes, no recompute
        batch = engine.ask_many(["?x bornIn ?y", "?x type city"], k=5)
    # exit released the snapshot mapping; the stream is now closed too
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from concurrent.futures import (
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.explanation import Explanation, explain_answer
from repro.core.parser import parse_query, parse_rule
from repro.core.query import Query
from repro.core.results import Answer, AnswerSet, AnswerStream
from repro.core.suggestion import QuerySuggester, Suggestion
from repro.core.triples import Provenance, Triple
from repro.errors import TrinitError
from repro.relax.amie import mine_amie_rules
from repro.relax.esa import esa_rules
from repro.relax.mining import mine_arg_overlap_rules, mine_chain_expansion_rules
from repro.relax.operators import OperatorContext, OperatorRegistry
from repro.relax.rules import RelaxationRule, RuleSet
from repro.relax.structural import inversion_rules
from repro.scoring.language_model import PatternScorer, ScoringConfig
from repro.storage.compaction import compact_store
from repro.storage.procpool import process_context
from repro.storage.statistics import StoreStatistics
from repro.storage.store import TripleStore
from repro.storage.text_index import TokenMatcher
from repro.topk.kernels import HotBlockCache
from repro.topk.processor import ProcessorConfig, TopKProcessor


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level configuration.

    Attributes
    ----------
    processor:
        Top-k processing knobs (budgets, ablation switches) — including
        ``execution`` ("idspace" hot path vs "termspace" reference).
    scoring:
        Language-model smoothing.
    storage_backend:
        Storage backend the engine's store should use ("columnar", "dict",
        or any registered name).  ``None`` keeps whatever backend the given
        store was built with; a concrete name converts the store at engine
        construction if it differs.
    parallelism:
        Worker count of the engine-owned executors that are shared by
        everything concurrent in one engine: ``ask_many`` query fan-out,
        per-segment posting prefetch inside one query (the sharded
        backend's merged pulls), and posting-cursor priming.  ``None``
        (default) sizes them to the machine (``os.cpu_count()``); ``0`` or
        ``1`` disables the executors entirely — every pull happens serially
        on the consuming thread, the byte-identical reference mode.  The
        executors are shut down by :meth:`TriniT.close`.
    executor_kind:
        Where per-segment batch preparation runs: ``"thread"`` (default —
        the shared thread pool, prefetch overlaps the consumer but stays
        GIL-bound), ``"process"`` (a ProcessPoolExecutor whose workers
        re-open the store's **directory snapshot** and serve posting heads
        from their own copy-on-write mappings — true multi-core), or
        ``"serial"`` (no executors at all, the reference mode).  The
        default honours the ``TRINIT_EXECUTOR_KIND`` environment variable
        so whole test suites can be re-run under another kind.
        ``"process"`` falls back to threads — gracefully, see
        :attr:`TriniT.executor_kind` — when the store was not loaded from
        a directory snapshot or the platform cannot start worker
        processes.  Answers are byte-identical across all three kinds.
    merge_batch:
        Posting heads pulled per segment per batch by the sharded
        backend's k-way merge (and the granularity of the id-space
        cursors' batched sorted access).  ``None`` (default) sizes batches
        **adaptively** per query: each posting merge starts small and
        doubles its pull as the consumer keeps draining, so probe-only
        lookups stay cheap and deep drains amortise (bounded by
        ``ADAPTIVE_MAX_BATCH``).  ``1`` degenerates to item-at-a-time
        pulls — the serial reference the property suite pins parallel
        execution against.
    block_size:
        Posting-block granularity of the id-space execution kernels: how
        many posting heads the cursors decode, filter and score per
        :func:`repro.topk.kernels.score_block` call.  ``None`` (default)
        adapts — cursors over merged segment postings score exactly what
        each batched pull materialised (so ``merge_batch`` governs both),
        monolithic posting views use the kernels' default block.  ``1``
        selects the original per-item scoring path, the byte-identical
        reference the property suite pins the block kernels against.
    compaction_threshold:
        Live-ingestion compaction trigger: once :meth:`TriniT.ingest` has
        grown the store's mutable delta segment past this many statements,
        the engine folds it into frozen storage — a new snapshot
        *generation* for directory-backed stores (hardlinked segments, an
        atomically swapped ``CURRENT`` pointer), an in-memory rebuild
        otherwise.  Folding runs in the background on the shared executor
        when one exists (queries keep answering from the delta meanwhile)
        and inline under ``parallelism<=1``/``"serial"``.  ``None``
        (default) never compacts automatically; :meth:`TriniT.compact`
        stays available explicitly.
    mine_arg_overlap, mine_chains, mine_inversions:
        Default rule-mining operators to register and run at startup.
    mine_amie, mine_esa:
        Optional heavier miners (off by default; AMIE-style mining and ESA
        relatedness are alternatives evaluated in the ablation benches).
    mining_min_support, mining_min_weight:
        Shared thresholds for the default miners.
    suggestion_min_overlap:
        Threshold for token→resource suggestions.
    """

    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    scoring: ScoringConfig = field(default_factory=ScoringConfig)
    storage_backend: str | None = None
    parallelism: int | None = None
    executor_kind: str = field(
        default_factory=lambda: os.environ.get("TRINIT_EXECUTOR_KIND", "thread")
    )
    merge_batch: int | None = None
    block_size: int | None = None
    compaction_threshold: int | None = None
    mine_arg_overlap: bool = True
    mine_chains: bool = True
    mine_inversions: bool = True
    mine_amie: bool = False
    mine_esa: bool = False
    mining_min_support: int = 2
    mining_min_weight: float = 0.1
    suggestion_min_overlap: float = 0.25


class _EpochState:
    """Swap synchronisation shared by an engine and its :meth:`variant`\\ s.

    ``active`` counts queries currently dispatching against the engine's
    *current* store epoch; a compaction swap waits on the condition until
    it drains before retiring the old store.  The condition's RLock also
    serialises pin bookkeeping for streams that outlive a swap.
    """

    __slots__ = ("cond", "active")

    def __init__(self):
        self.cond = threading.Condition(threading.RLock())
        self.active = 0


class TriniT:
    """Exploratory querying over an extended knowledge graph.

    Parameters
    ----------
    store:
        The XKG triple store (frozen, or it will be frozen here).
    config:
        See :class:`EngineConfig`.
    rules:
        Extra relaxation rules to start from (e.g. hand-written ones).
    registry:
        A custom operator registry; defaults to the standard miners selected
        by the config flags.  Administrators can pre-register their own
        operators before constructing the engine.
    """

    def __init__(
        self,
        store: TripleStore,
        *,
        config: EngineConfig | None = None,
        rules: Iterable[RelaxationRule] = (),
        registry: OperatorRegistry | None = None,
    ):
        self.config = config if config is not None else EngineConfig()
        if (
            self.config.storage_backend is not None
            and store.backend_name != self.config.storage_backend
        ):
            store = store.convert(self.config.storage_backend)
        if not store.is_frozen:
            store.freeze()
        self.store = store
        kind = self.config.executor_kind
        if kind not in ("thread", "process", "serial"):
            raise TrinitError(
                f"Unknown executor_kind {kind!r} — expected 'thread', "
                "'process' or 'serial'"
            )
        # Engine-owned worker pools.  The thread pool is shared by ask_many
        # fan-out, cursor priming and (kind="thread") segment posting
        # prefetch; threads spawn on first use, so unqueried engines never
        # start one.  kind="process" adds a process pool whose workers
        # re-open the store's directory snapshot and prepare posting heads
        # off the GIL — only possible when the store knows its source
        # directory and the platform can start workers; otherwise the
        # thread pool serves prefetch too (self.executor_kind reports what
        # actually happened).  close() shuts both down.
        workers = self.config.parallelism
        if workers is None:
            workers = os.cpu_count() or 4
        if kind == "serial" or workers <= 1:
            workers = 0
        self._executor = (
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix="trinit")
            if workers
            else None
        )
        self._process_executor = None
        if kind == "process" and workers:
            source_dir = getattr(store.backend, "source_dir", None)
            context = process_context() if source_dir is not None else None
            if context is not None:
                try:
                    self._process_executor = ProcessPoolExecutor(
                        max_workers=workers, mp_context=context
                    )
                except (OSError, ValueError, NotImplementedError):
                    self._process_executor = None
        if not workers:
            self.executor_kind = "serial"
        elif self._process_executor is not None:
            self.executor_kind = "process"
        else:
            self.executor_kind = "thread"
        configure = getattr(store.backend, "configure_prefetch", None)
        if configure is not None:  # optional protocol surface (see close())
            configure(
                self._process_executor
                if self._process_executor is not None
                else self._executor,
                self.config.merge_batch,
            )
        store.configure_blocks(self.config.block_size)
        # One bounded hot-block cache per engine, shared across queries and
        # snapshot generations (keys carry the snapshot identity, so stale
        # generations simply stop being hit; swaps clear it outright).
        self._block_cache = HotBlockCache()
        configure_cache = getattr(store.backend, "configure_block_cache", None)
        if configure_cache is not None:
            configure_cache(self._block_cache)
        self.statistics = StoreStatistics(store)
        self.matcher = TokenMatcher(store)
        self.scorer = PatternScorer(store, self.config.scoring)
        self.rules = RuleSet(rules)
        self.registry = registry if registry is not None else OperatorRegistry()
        self._register_default_operators()
        context = OperatorContext(self.store, self.statistics)
        self.registry.run(context, into=self.rules)
        self.processor = TopKProcessor(
            store,
            rules=self.rules,
            scorer=self.scorer,
            matcher=self.matcher,
            config=self.config.processor,
            executor=self._executor,
        )
        self.suggester = QuerySuggester(
            self.statistics,
            self.matcher,
            min_overlap=self.config.suggestion_min_overlap,
        )
        # Live-ingestion state: ingest/compact serialisation, the query
        # epoch (swap barrier), refcounted pins of retired stores that
        # open streams still read from, and the visible generation number.
        self._ingest_lock = threading.RLock()
        self._epoch = _EpochState()
        self._pins: dict[int, list] = {}
        self._compact_scheduled = False
        self._swap_listeners: list = []
        self.generation = getattr(store.backend, "generation", 0) or 0
        self._closed = False

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def open(cls, path: "str | Path", **kwargs) -> "TriniT":
        """Open an engine over a persisted store (binary snapshot or JSONL).

        The format is sniffed from the file's magic bytes; snapshots are
        ``mmap``-loaded (zero-copy posting views over the mapped pages).
        The engine *owns* the loaded resources — use it as a context
        manager, or call :meth:`close`, to release them::

            with TriniT.open("xkg.snap") as engine:
                print(engine.ask("?x bornIn Germany").render_table())

        Keyword arguments are forwarded to the constructor (``config``,
        ``rules``, ``registry``).
        """
        from repro.storage.persistence import load_store

        return cls(load_store(path), **kwargs)

    @classmethod
    def from_triples(
        cls,
        kg_triples: Sequence[Triple],
        extension_triples: Sequence[tuple[Triple, Provenance, float]] = (),
        **kwargs,
    ) -> "TriniT":
        """Build an engine from curated triples plus scored extractions.

        ``extension_triples`` entries are (triple, provenance, confidence);
        repeated statements accumulate observation counts.  Extractions
        sharing provenance and confidence are loaded in bulk via
        :meth:`TripleStore.add_all`.
        """
        store = TripleStore()
        store.add_all(kg_triples)
        for (provenance, confidence), group in itertools.groupby(
            extension_triples, key=lambda entry: (entry[1], entry[2])
        ):
            store.add_all(
                [triple for triple, _p, _c in group],
                provenance,
                confidence=confidence,
            )
        return cls(store.freeze(), **kwargs)

    def _register_default_operators(self) -> None:
        cfg = self.config

        if cfg.mine_arg_overlap and "arg-overlap" not in self.registry:
            self.registry.register(
                "arg-overlap",
                lambda ctx: mine_arg_overlap_rules(
                    ctx.statistics,
                    min_support=cfg.mining_min_support,
                    min_weight=cfg.mining_min_weight,
                ),
                description="XKG arg-overlap predicate rewrites (paper §3)",
            )
        if cfg.mine_chains and "chain-expansion" not in self.registry:
            self.registry.register(
                "chain-expansion",
                lambda ctx: mine_chain_expansion_rules(
                    ctx.statistics,
                    min_support=cfg.mining_min_support,
                ),
                description="two-hop chain expansions (Figure 4 rule 3 shape)",
            )
        if cfg.mine_inversions and "inversions" not in self.registry:
            self.registry.register(
                "inversions",
                lambda ctx: inversion_rules(
                    ctx.statistics, min_support=cfg.mining_min_support
                ),
                description="inverse-predicate rules (Figure 4 rule 2 shape)",
            )
        if cfg.mine_amie and "amie" not in self.registry:
            self.registry.register(
                "amie",
                lambda ctx: mine_amie_rules(
                    ctx.statistics, min_support=cfg.mining_min_support
                ),
                description="AMIE-style Horn rules with PCA confidence",
            )
        if cfg.mine_esa and "esa" not in self.registry:
            self.registry.register(
                "esa",
                lambda ctx: esa_rules(ctx.statistics),
                description="ESA relatedness predicate rewrites",
            )

    # -- live ingestion ------------------------------------------------------------

    def ingest(
        self,
        triples: Sequence[Triple],
        provenance: Provenance | None = None,
        *,
        confidence: float = 1.0,
        count: int = 1,
    ) -> list[int]:
        """Absorb new statements while the engine keeps answering queries.

        New distinct statements land in the store's mutable **delta
        segment** — the posting merge treats it as one more segment head,
        so they are immediately visible to ``ask``/``stream`` (and show up
        in :attr:`~repro.core.results.QueryStats.delta_hits`).  Duplicate
        statements accumulate evidence on their existing records.  Derived
        structures (statistics, the token matcher, the scorer's collection
        mass) refresh so relaxation and suggestion see the grown store.

        Once the delta outgrows ``EngineConfig.compaction_threshold`` the
        engine folds it into frozen storage (see :meth:`compact`) — in the
        background when it has an executor, inline otherwise.  Returns the
        triple ids, in input order.
        """
        if self._closed:
            raise TrinitError("Engine is closed")
        with self._ingest_lock:
            ids = self.store.add_all(
                triples, provenance, confidence=confidence, count=count
            )
            self.statistics.invalidate()
            self.matcher.invalidate()
            self.scorer.refresh()
            self._maybe_compact()
        return ids

    def compact(self) -> int:
        """Synchronously fold the live delta into frozen storage.

        Directory-backed stores get a new snapshot **generation** (old
        segment files hardlinked, the delta frozen as one new segment, the
        root's ``CURRENT`` pointer swapped atomically); in-memory stores
        rebuild onto a fresh backend of the same class.  The engine then
        swaps onto the compacted store once in-flight queries drain; open
        :class:`~repro.core.results.AnswerStream`\\ s keep the store they
        started on (it closes when the last of them is collected), so
        their remaining ``next_k`` calls stay byte-identical.  Returns the
        engine's generation number (unchanged when there was no delta).
        """
        if self._closed:
            raise TrinitError("Engine is closed")
        with self._ingest_lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        store = self.store
        if not store.has_delta:
            return self.generation
        self._adopt_store(compact_store(store))
        return self.generation

    def _maybe_compact(self) -> None:
        threshold = self.config.compaction_threshold
        if threshold is None or self.store.delta_size < threshold:
            return
        if self._executor is None:
            self._compact_locked()
            return
        with self._epoch.cond:
            if self._compact_scheduled:
                return
            self._compact_scheduled = True
        self._executor.submit(self._background_compact)

    def _background_compact(self) -> None:
        try:
            with self._ingest_lock:
                if self._closed:
                    return
                threshold = self.config.compaction_threshold
                if (
                    threshold is not None
                    and self.store.delta_size >= threshold
                ):
                    self._compact_locked()
        finally:
            with self._epoch.cond:
                self._compact_scheduled = False

    def on_store_swap(self, callback) -> None:
        """Register ``callback(engine)`` to run after each store adoption.

        The quiet-point hook for everything that caches against a specific
        store epoch (the query service's result cache, most prominently):
        the callback fires right after :meth:`_adopt_store` finished
        swapping — the new store, generation number and
        :meth:`snapshot_identity` are already visible, the epoch barrier
        has been released — so subscribers invalidate exactly once per
        swap, never against a half-adopted engine.  Callbacks run on the
        compacting thread outside the swap barrier (they may query the
        engine); exceptions propagate to the compaction caller.  Listeners
        are shared with :meth:`variant` clones.
        """
        self._swap_listeners.append(callback)

    def _adopt_store(self, store: TripleStore) -> None:
        """Swap the engine onto ``store`` once in-flight queries drain.

        The replacement read surfaces (statistics, matcher, scorer,
        processor, suggester) are built *before* the swap barrier, so the
        window with queries blocked covers only attribute assignment.
        Mined rules carry over — compaction changes the statements'
        storage, not the statements.
        """
        statistics = StoreStatistics(store)
        matcher = TokenMatcher(store)
        scorer = PatternScorer(store, self.config.scoring)
        processor = TopKProcessor(
            store,
            rules=self.rules,
            scorer=scorer,
            matcher=matcher,
            config=self.config.processor,
            executor=self._executor,
        )
        suggester = QuerySuggester(
            statistics,
            matcher,
            min_overlap=self.config.suggestion_min_overlap,
        )
        configure = getattr(store.backend, "configure_prefetch", None)
        if configure is not None:
            configure(
                self._process_executor
                if self._process_executor is not None
                else self._executor,
                self.config.merge_batch,
            )
        store.configure_blocks(self.config.block_size)
        configure_cache = getattr(store.backend, "configure_block_cache", None)
        if configure_cache is not None:
            configure_cache(self._block_cache)
        epoch = self._epoch
        with epoch.cond:
            while epoch.active:
                epoch.cond.wait()
            old = self.store
            self.store = store
            self.statistics = statistics
            self.matcher = matcher
            self.scorer = scorer
            self.processor = processor
            self.suggester = suggester
            backend_generation = getattr(store.backend, "generation", 0) or 0
            self.generation = (
                backend_generation
                if backend_generation > self.generation
                else self.generation + 1
            )
            self._retire(old)
        # Quiet point: in-flight queries drained at the barrier above, so
        # no cursor is mid-consume against a cached block of the retired
        # store — drop every cached block in one sweep.
        self._block_cache.clear()
        for callback in list(self._swap_listeners):
            callback(self)

    def _retire(self, old: TripleStore) -> None:
        # Close the outgoing store now, or — when open streams still pin
        # it — when the last pin is collected.  Callers already hold the
        # epoch lock; it is an RLock, so re-taking it here costs nothing
        # and keeps the pin table guarded even for future callers.
        with self._epoch.cond:
            entry = self._pins.get(id(old))
            if entry is None or entry[1] <= 0:
                self._pins.pop(id(old), None)
                old.close()
            else:
                entry[2] = True

    def _pin_store(self, store: TripleStore, owner: object) -> None:
        with self._epoch.cond:
            entry = self._pins.get(id(store))
            if entry is None:
                entry = self._pins[id(store)] = [store, 0, False]
            entry[1] += 1
        weakref.finalize(owner, self._unpin, id(store))

    def _unpin(self, key: int) -> None:
        with self._epoch.cond:
            entry = self._pins.get(key)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] <= 0:
                del self._pins[key]
                if entry[2]:
                    entry[0].close()

    @contextmanager
    def _query_guard(self):
        """Hold the current store epoch across one query dispatch.

        While any guard is held a compaction swap waits; conversely a
        swap in progress (holding the epoch lock) delays entry, so a
        dispatch never reads half-swapped engine attributes.
        """
        epoch = self._epoch
        with epoch.cond:
            epoch.active += 1
        try:
            yield
        finally:
            with epoch.cond:
                epoch.active -= 1
                if not epoch.active:
                    epoch.cond.notify_all()

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Release the engine's resources (worker pool, mmap buffers, columns).

        The shared executor drains first (queued prefetch batches and
        queued ``ask_many`` queries are cancelled — an in-flight
        ``ask_many`` call surfaces that as :class:`TrinitError` — while
        running tasks finish against the still-open store), then
        the store's backing storage is released.  Streams obtained from
        :meth:`stream` become unusable (their ``next_k`` raises
        :class:`~repro.errors.StorageError`); answers already materialised
        stay valid.  Idempotent.
        """
        if not self._closed:
            self._closed = True
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
            if self._process_executor is not None:
                self._process_executor.shutdown(wait=True, cancel_futures=True)
            with self._epoch.cond:
                pinned = [entry[0] for entry in self._pins.values()]
                self._pins.clear()
            for store in pinned:
                store.close()
            self.store.close()
            self._block_cache.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def snapshot_identity(self) -> str:
        """A token naming exactly the data this engine is serving.

        Directory-backed stores yield ``<snapshot root>@gen<K>+delta<V>``
        — the persistent address plus the active generation plus the
        monotonic version of the live delta segment; purely in-memory
        stores get a process-local ``mem:`` token with the same
        generation/delta structure.  Two engine states with equal tokens
        serve byte-identical answers, and any visible data change (a
        live ingest, a compaction, a generation swap) changes the token —
        which is what makes it a sound result-cache key component and a
        precise ``/healthz`` data fingerprint.  The token is cheap to
        compute (no store traversal).
        """
        store = self.store
        backend = store.backend
        root = getattr(backend, "snapshot_root", None) or getattr(
            backend, "source_dir", None
        )
        base = str(root) if root else f"mem:{id(store):x}"
        return f"{base}@gen{self.generation}+delta{store.delta_version}"

    def __enter__(self) -> "TriniT":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- querying -----------------------------------------------------------------

    def parse(self, text: str) -> Query:
        """Parse the textual query syntax."""
        return parse_query(text)

    def ask(self, query: Query | str, k: int | None = None) -> AnswerSet:
        """Answer a query (textual or parsed) with top-k processing."""
        if isinstance(query, str):
            query = parse_query(query)
        with self._query_guard():
            return self.processor.query(query, k)

    def stream(self, query: Query | str) -> AnswerStream:
        """An :class:`AnswerStream` over ``query`` — the anytime surface.

        ``stream(q).next_k(n)`` emits the next ``n`` answers in score
        order, *resuming* the suspended top-k computation instead of
        recomputing it; the concatenation of all batches is byte-identical
        to the eager ``ask(q, k=total)`` list.  Per-call and cumulative
        :class:`~repro.core.results.QueryStats` ride along.
        """
        if isinstance(query, str):
            query = parse_query(query)
        with self._query_guard():
            stream = AnswerStream(self.processor.driver(query))
            # The stream keeps the store it opened on across compactions:
            # the pin defers the retired store's close until the stream is
            # collected, so later next_k calls resume byte-identically.
            self._pin_store(self.store, stream)
            return stream

    def ask_many(
        self,
        queries: Sequence[Query | str],
        k: int | None = None,
        *,
        max_workers: int | None = None,
    ) -> list[AnswerSet]:
        """Answer independent queries on a thread pool; results in input order.

        The frozen store, scorer and rule set are shared read-only across
        the pool (the caches they warm are idempotent under the GIL), and
        every query is evaluated in isolation — results are bit-identical
        to sequential ``ask`` calls.  Note the evaluation itself is pure
        Python, so on GIL-bound interpreters the pool bounds *latency
        interleaving*, not aggregate throughput; the API seam is what a
        free-threaded build or a per-segment process executor (see
        ROADMAP) will exploit.

        Queries run on the *engine-owned* executor (``EngineConfig.
        parallelism``) — the same pool that prefetches segment posting
        batches — so repeated batch calls reuse warm threads instead of
        paying pool startup per call.  ``max_workers=1`` forces sequential
        evaluation; other explicit values bound how many of the batch are
        in flight at once (sliced submission to the shared pool); an
        engine configured with ``parallelism<=1`` has no pool and always
        evaluates sequentially.
        """
        parsed = [
            parse_query(query) if isinstance(query, str) else query
            for query in queries
        ]
        if not parsed:
            return []
        pool = self._executor
        with self._query_guard():
            processor = self.processor
            if (
                pool is None
                or len(parsed) == 1
                or (max_workers is not None and max_workers <= 1)
            ):
                return [processor.query(query, k) for query in parsed]
            # Build the shared lazily-initialised structures once, up front,
            # rather than racing the first queries into them.
            processor._single_rule_index()
            try:
                if max_workers is not None and max_workers < len(parsed):
                    # Honor an explicit concurrency cap without a throwaway
                    # pool: feed the shared executor in slices, so at most
                    # max_workers queries are in flight at once.
                    results: list[AnswerSet] = []
                    run = lambda query: processor.query(query, k)  # noqa: E731
                    for start in range(0, len(parsed), max_workers):
                        results.extend(
                            pool.map(run, parsed[start : start + max_workers])
                        )
                    return results
                return list(
                    pool.map(lambda query: processor.query(query, k), parsed)
                )
            except (RuntimeError, CancelledError):
                # CancelledError: close() cancelled our queued query futures.
                if not self._closed:
                    raise
                raise TrinitError("Engine is closed") from None

    def explain(self, answer: Answer, query: Query | None = None) -> Explanation:
        """Explanation of an answer's provenance and relaxations."""
        if answer is None:
            raise TrinitError("Cannot explain None (empty answer set?)")
        return explain_answer(answer, query)

    def suggest(
        self, query: Query | str, answers: AnswerSet | None = None
    ) -> list[Suggestion]:
        """Suggestions for better-aligned future queries."""
        if isinstance(query, str):
            query = parse_query(query)
        with self._query_guard():
            return self.suggester.suggest(query, answers)

    # -- rule management ------------------------------------------------------------

    def add_rule(self, rule: RelaxationRule | str) -> RelaxationRule:
        """Add one relaxation rule (object or textual ``lhs => rhs @ w``)."""
        if isinstance(rule, str):
            rule = parse_rule(rule)
        self.processor.add_rules([rule])
        return rule

    def add_rules(self, rules: Iterable[RelaxationRule | str]) -> int:
        parsed = [parse_rule(r) if isinstance(r, str) else r for r in rules]
        return self.processor.add_rules(parsed)

    # -- ablation variants ------------------------------------------------------------

    def variant(self, **processor_overrides) -> "TriniT":
        """A shallow engine sharing data/rules with different processor knobs.

        Used by the evaluation harness for ablations, e.g.
        ``engine.variant(use_relaxation=False)``.
        """
        clone = object.__new__(TriniT)
        clone.config = replace(
            self.config,
            processor=replace(self.config.processor, **processor_overrides),
        )
        clone.store = self.store
        clone.statistics = self.statistics
        clone.matcher = self.matcher
        clone.scorer = self.scorer
        clone.rules = self.rules
        clone.registry = self.registry
        clone._executor = self._executor
        clone._process_executor = self._process_executor
        clone.executor_kind = self.executor_kind
        clone._block_cache = self._block_cache
        # Live-ingestion state is shared with the parent: a compaction in
        # either must drain and retire the same epoch and pin set.  Copy
        # the references under the epoch lock so the clone never observes
        # a pin table from mid-swap.
        with self._epoch.cond:
            clone._ingest_lock = self._ingest_lock
            clone._epoch = self._epoch
            clone._pins = self._pins
            clone._swap_listeners = self._swap_listeners
        clone._compact_scheduled = False
        clone.generation = self.generation
        clone.processor = TopKProcessor(
            self.store,
            rules=self.rules,
            scorer=self.scorer,
            matcher=self.matcher,
            config=clone.config.processor,
            executor=self._executor,
        )
        clone.suggester = self.suggester
        clone._closed = self._closed
        return clone
