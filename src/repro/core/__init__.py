"""Core data model and engine facade for TriniT.

The submodules here define the RDF-style data model (terms, triples,
patterns), the extended query language and its parser, answer objects with
provenance-based explanations, query suggestion, and the :class:`TriniT`
engine facade that ties storage, relaxation, scoring and top-k processing
together.
"""

from repro.core.terms import Literal, Resource, Term, TextToken, Variable, term_from_text
from repro.core.triples import Provenance, Triple, TriplePattern
from repro.core.query import Query
from repro.core.parser import parse_query, parse_pattern, parse_rule
from repro.core.results import Answer, AnswerSet, AnswerStream, Derivation, QueryStats
from repro.core.explanation import Explanation, explain_answer
from repro.core.suggestion import QuerySuggester, Suggestion
from repro.core.engine import TriniT, EngineConfig

__all__ = [
    "Term",
    "Resource",
    "Literal",
    "TextToken",
    "Variable",
    "term_from_text",
    "Triple",
    "TriplePattern",
    "Provenance",
    "Query",
    "parse_query",
    "parse_pattern",
    "parse_rule",
    "Answer",
    "AnswerSet",
    "AnswerStream",
    "QueryStats",
    "Derivation",
    "Explanation",
    "explain_answer",
    "QuerySuggester",
    "Suggestion",
    "TriniT",
    "EngineConfig",
]
