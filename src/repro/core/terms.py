"""RDF-style terms for the extended knowledge graph.

The paper's data model distinguishes four kinds of term:

* :class:`Resource` — a canonical KG node or edge label
  (``AlbertEinstein``, ``bornIn``, ``city``).  Resources are what a curated
  KG like Yago2s contains.
* :class:`Literal` — a typed value (``'1879-03-14'``, ``42``, a plain
  string).  Literals appear only in the object slot of curated facts.
* :class:`TextToken` — a free-text phrase produced by Open IE
  (``'won a Nobel for'``).  The XKG extension allows tokens in *any* of the
  S, P, O slots; the extended query language does too.
* :class:`Variable` — a query variable (``?x``); never stored in data.

Terms are immutable, hashable, and totally ordered (by kind then lexical
value) so index layouts and result orders are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Union

from repro.errors import TermError
from repro.util.text import match_key, normalize_phrase

# Sort rank per term kind: resources < literals < tokens < variables.
_KIND_RANK = {"resource": 0, "literal": 1, "token": 2, "variable": 3}


@dataclass(frozen=True, slots=True)
class Term:
    """Abstract base for all term kinds.  Do not instantiate directly."""

    def sort_key(self) -> tuple[int, str]:
        """Total order over heterogeneous terms: kind rank, then lexical value."""
        return (_KIND_RANK[self.kind], self.lexical())

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def lexical(self) -> str:
        """The term's lexical value, without kind markers."""
        raise NotImplementedError

    def n3(self) -> str:
        """Render in the textual syntax understood by the query parser."""
        raise NotImplementedError

    @property
    def is_variable(self) -> bool:
        return self.kind == "variable"

    @property
    def is_constant(self) -> bool:
        return self.kind != "variable"

    @property
    def is_token(self) -> bool:
        return self.kind == "token"

    @property
    def is_resource(self) -> bool:
        return self.kind == "resource"

    @property
    def is_literal(self) -> bool:
        return self.kind == "literal"

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()


@dataclass(frozen=True, slots=True)
class Resource(Term):
    """A canonical KG resource: entity, class, or predicate.

    Names follow the Yago convention of CamelCase identifiers without
    whitespace (``AlbertEinstein``, ``bornIn``).  A name must be non-empty
    and free of whitespace and quote characters.
    """

    name: str

    def __post_init__(self):
        if not self.name:
            raise TermError("Resource name must be non-empty")
        if any(c.isspace() for c in self.name):
            raise TermError(f"Resource name may not contain whitespace: {self.name!r}")
        if "'" in self.name or '"' in self.name:
            raise TermError(f"Resource name may not contain quotes: {self.name!r}")

    @property
    def kind(self) -> str:
        return "resource"

    def lexical(self) -> str:
        return self.name

    def n3(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Resource({self.name!r})"


@dataclass(frozen=True, slots=True)
class Literal(Term):
    """A typed literal value: string, int, float, or ISO date.

    Values are stored in canonical form; the datatype is derived from the
    Python type rather than carried separately, mirroring how RDF literals
    in the paper's examples are simple quoted values (``'1879-03-14'``).
    """

    value: Union[str, int, float, date]

    def __post_init__(self):
        if not isinstance(self.value, (str, int, float, date)):
            raise TermError(f"Unsupported literal type: {type(self.value).__name__}")
        if isinstance(self.value, bool):
            raise TermError("Boolean literals are not part of the data model")

    @property
    def kind(self) -> str:
        return "literal"

    @property
    def datatype(self) -> str:
        """One of 'string', 'integer', 'double', 'date'."""
        if isinstance(self.value, str):
            return "string"
        if isinstance(self.value, int):
            return "integer"
        if isinstance(self.value, float):
            return "double"
        return "date"

    def lexical(self) -> str:
        if isinstance(self.value, date):
            return self.value.isoformat()
        return str(self.value)

    def n3(self) -> str:
        return f'"{self.lexical()}"'

    def __str__(self) -> str:
        return self.n3()

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


@dataclass(frozen=True, slots=True)
class TextToken(Term):
    """A free-text phrase from Open IE, usable in any S/P/O slot.

    The surface form is normalised on construction (whitespace collapsed,
    lower-cased, punctuation stripped) so that two extractions of the same
    phrase are the same term.  ``match_key(predicate=...)`` exposes the
    stemmed content-token key used for fuzzy phrase matching.
    """

    text: str
    # The normalised form is the identity; computed eagerly in __post_init__.
    norm: str = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if not self.text or not self.text.strip():
            raise TermError("TextToken must contain at least one character")
        object.__setattr__(self, "norm", normalize_phrase(self.text))
        if not self.norm:
            raise TermError(f"TextToken normalises to nothing: {self.text!r}")

    # Identity is the normalised form, not the raw surface string.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TextToken):
            return NotImplemented
        return self.norm == other.norm

    def __hash__(self) -> int:
        return hash(("token", self.norm))

    @property
    def kind(self) -> str:
        return "token"

    def lexical(self) -> str:
        return self.norm

    def match_key(self, *, predicate: bool = False) -> tuple[str, ...]:
        """Stemmed content-token key for fuzzy matching (see util.text)."""
        return match_key(self.norm, predicate=predicate)

    def n3(self) -> str:
        return f"'{self.norm}'"

    def __str__(self) -> str:
        return self.n3()

    def __repr__(self) -> str:
        return f"TextToken({self.norm!r})"


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A query variable such as ``?x``.  Only valid inside patterns."""

    name: str

    def __post_init__(self):
        if not self.name:
            raise TermError("Variable name must be non-empty")
        if not all(c.isalnum() or c == "_" for c in self.name):
            raise TermError(f"Variable name must be alphanumeric: {self.name!r}")

    @property
    def kind(self) -> str:
        return "variable"

    def lexical(self) -> str:
        return self.name

    def n3(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:
        return f"?{self.name}"

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


def term_from_text(text: str) -> Term:
    """Parse a single term from its textual syntax.

    * ``?x`` → :class:`Variable`
    * ``'phrase here'`` → :class:`TextToken`
    * ``"value"`` → :class:`Literal` (string; digits/dates auto-typed)
    * anything else → :class:`Resource`

    >>> term_from_text("?x")
    Variable('x')
    >>> term_from_text("'won nobel for'")
    TextToken('won nobel for')
    >>> term_from_text("AlbertEinstein")
    Resource('AlbertEinstein')
    """
    text = text.strip()
    if not text:
        raise TermError("Empty term text")
    if text.startswith("?"):
        return Variable(text[1:])
    if len(text) >= 2 and text[0] == "'" and text[-1] == "'":
        return TextToken(text[1:-1])
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return Literal(_auto_type(text[1:-1]))
    return Resource(text)


def _auto_type(raw: str) -> Union[str, int, float, date]:
    """Best-effort typing of a quoted literal: date, int, float, else string."""
    try:
        return date.fromisoformat(raw)
    except ValueError:
        pass
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw
