"""Triples, triple patterns, and provenance records.

A :class:`Triple` is an immutable SPO statement over constant terms.  Facts
from the curated KG carry confidence 1.0 and a ``Provenance`` naming the KG;
token triples from Open IE carry the extractor's confidence and the source
document.  A :class:`TriplePattern` is an SPO statement in which any slot may
be a :class:`Variable`; it is the unit the query language, relaxation rules
and index access all operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.core.terms import Term, TextToken, Variable
from repro.errors import PatternError, TermError

#: Provenance origin for curated-KG facts.
ORIGIN_KG = "kg"
#: Provenance origin for Open IE extractions.
ORIGIN_OPENIE = "openie"


@dataclass(frozen=True, slots=True)
class Provenance:
    """Where a triple came from.

    Attributes
    ----------
    origin:
        ``"kg"`` for curated facts, ``"openie"`` for extractions.
    source:
        Identifier of the concrete source: the KG name, or a document id.
    sentence:
        For extractions, the sentence the triple was extracted from.
    extractor:
        Name of the extraction tool ("reverb"), empty for KG facts.
    """

    origin: str = ORIGIN_KG
    source: str = ""
    sentence: str = ""
    extractor: str = ""

    @property
    def is_kg(self) -> bool:
        return self.origin == ORIGIN_KG

    @property
    def is_extraction(self) -> bool:
        return self.origin == ORIGIN_OPENIE

    def describe(self) -> str:
        """One-line human-readable description used by answer explanations."""
        if self.is_kg:
            return f"curated KG fact ({self.source or 'KG'})"
        where = self.source or "unknown document"
        how = f" by {self.extractor}" if self.extractor else ""
        line = f"extracted{how} from {where}"
        if self.sentence:
            line += f': "{self.sentence}"'
        return line


#: Shared provenance instance for plain KG facts.
KG_PROVENANCE = Provenance(origin=ORIGIN_KG, source="KG")


@dataclass(frozen=True, slots=True)
class Triple:
    """An SPO fact.  All three slots must be constant terms.

    Equality and hashing consider only (s, p, o) — *not* provenance or
    confidence — so the same statement extracted from two documents is one
    distinct triple, as in the paper's "440 million distinct triples".
    The store aggregates observation counts separately.
    """

    s: Term
    p: Term
    o: Term

    def __post_init__(self):
        for slot, term in (("subject", self.s), ("predicate", self.p), ("object", self.o)):
            if not isinstance(term, Term):
                raise TermError(f"Triple {slot} must be a Term, got {type(term).__name__}")
            if term.is_variable:
                raise TermError(f"Triple {slot} may not be a variable: {term}")

    @property
    def is_token_triple(self) -> bool:
        """True when any slot is a free-text token (an XKG extension triple)."""
        return self.s.is_token or self.p.is_token or self.o.is_token

    def terms(self) -> tuple[Term, Term, Term]:
        return (self.s, self.p, self.o)

    def n3(self) -> str:
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()}"

    def __str__(self) -> str:
        return self.n3()

    def sort_key(self):
        return (self.s.sort_key(), self.p.sort_key(), self.o.sort_key())


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """An SPO pattern whose slots are constants or variables.

    At least one slot must be constant *or* the pattern must contain a
    variable — i.e. a pattern of three constants is allowed (an assertion
    check) and a pattern of three variables is allowed only explicitly via
    ``allow_unconstrained`` because it scans the whole store.
    """

    s: Term
    p: Term
    o: Term

    def __post_init__(self):
        for slot, term in (("subject", self.s), ("predicate", self.p), ("object", self.o)):
            if not isinstance(term, Term):
                raise PatternError(
                    f"Pattern {slot} must be a Term, got {type(term).__name__}"
                )

    # -- variable handling ---------------------------------------------------

    def variables(self) -> tuple[Variable, ...]:
        """The distinct variables of the pattern, in S, P, O order."""
        seen: dict[Variable, None] = {}
        for term in (self.s, self.p, self.o):
            if isinstance(term, Variable):
                seen.setdefault(term, None)
        return tuple(seen)

    @property
    def is_fully_bound(self) -> bool:
        return not self.variables()

    @property
    def is_unconstrained(self) -> bool:
        """True when all three slots are variables (a full scan)."""
        return all(t.is_variable for t in (self.s, self.p, self.o))

    @property
    def has_token(self) -> bool:
        """True when any constant slot is a text token."""
        return any(t.is_token for t in (self.s, self.p, self.o))

    def terms(self) -> tuple[Term, Term, Term]:
        return (self.s, self.p, self.o)

    def constants(self) -> tuple[Term, ...]:
        return tuple(t for t in self.terms() if t.is_constant)

    # -- matching / substitution ----------------------------------------------

    def matches(self, triple: Triple) -> bool:
        """Exact match: every constant slot equals the triple's slot.

        Token slots compare by normalised form (TextToken equality); fuzzy
        token matching is the text index's job, not the pattern's.
        """
        return all(
            pat.is_variable or pat == val
            for pat, val in zip(self.terms(), triple.terms())
        )

    def bind(self, triple: Triple) -> dict[Variable, Term] | None:
        """Return the variable binding matching ``triple``, or None.

        A repeated variable must bind consistently: ``?x knows ?x`` only
        matches triples whose subject equals their object.
        """
        binding: dict[Variable, Term] = {}
        for pat, val in zip(self.terms(), triple.terms()):
            if isinstance(pat, Variable):
                bound = binding.get(pat)
                if bound is None:
                    binding[pat] = val
                elif bound != val:
                    return None
            elif pat != val:
                return None
        return binding

    def substitute(self, binding: Mapping[Variable, Term]) -> "TriplePattern":
        """Replace variables present in ``binding``; others stay variables."""

        def sub(term: Term) -> Term:
            if isinstance(term, Variable) and term in binding:
                return binding[term]
            return term

        return TriplePattern(sub(self.s), sub(self.p), sub(self.o))

    def rename_variables(self, mapping: Mapping[str, str]) -> "TriplePattern":
        """Rename variables by name; used when instantiating relaxation rules."""

        def ren(term: Term) -> Term:
            if isinstance(term, Variable) and term.name in mapping:
                return Variable(mapping[term.name])
            return term

        return TriplePattern(ren(self.s), ren(self.p), ren(self.o))

    def n3(self) -> str:
        return f"{self.s.n3()} {self.p.n3()} {self.o.n3()}"

    def __str__(self) -> str:
        return self.n3()

    def __iter__(self) -> Iterator[Term]:
        return iter(self.terms())

    def signature(self) -> str:
        """Bound-slot signature, e.g. 's_o' for S and O bound: index selection key."""
        parts = [
            name
            for name, term in zip("spo", self.terms())
            if term.is_constant
        ]
        return "_".join(parts) if parts else "scan"


def pattern_from_terms(s: Term, p: Term, o: Term) -> TriplePattern:
    """Convenience constructor mirroring :class:`TriplePattern`."""
    return TriplePattern(s, p, o)
