"""Conjunctive extended-triple-pattern queries.

A :class:`Query` is a set of conjunctively combined triple patterns plus a
projection list, exactly as in the paper: occurrences of the same variable in
multiple patterns denote joins; answers are bindings of the projection
variables.  The extended language allows text tokens in any slot of any
pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.terms import Term, Variable
from repro.core.triples import TriplePattern
from repro.errors import QueryError


@dataclass(frozen=True)
class Query:
    """An immutable conjunctive query.

    Parameters
    ----------
    patterns:
        The triple patterns, evaluated as a conjunction.
    projection:
        Variables whose bindings constitute an answer.  Empty projection
        defaults to *all* variables of the query, in first-appearance order.
    limit:
        Requested number of answers (the ``k`` of top-k); engines may be
        asked for a different k at call time, this is the query's default.
    """

    patterns: tuple[TriplePattern, ...]
    projection: tuple[Variable, ...] = ()
    limit: int = 10

    def __init__(
        self,
        patterns: Iterable[TriplePattern],
        projection: Sequence[Variable] = (),
        limit: int = 10,
    ):
        patterns = tuple(patterns)
        if not patterns:
            raise QueryError("A query needs at least one triple pattern")
        if limit < 1:
            raise QueryError(f"Query limit must be >= 1, got {limit}")
        all_vars = _variables_in_order(patterns)
        projection = tuple(projection) if projection else all_vars
        unknown = [v for v in projection if v not in all_vars]
        if unknown:
            names = ", ".join(str(v) for v in unknown)
            raise QueryError(f"Projection variables not used in any pattern: {names}")
        if len(set(projection)) != len(projection):
            raise QueryError("Duplicate projection variable")
        if not _is_connected(patterns) and len(patterns) > 1:
            raise QueryError(
                "Query patterns must be connected via shared variables "
                "(a cartesian product is almost never intended)"
            )
        object.__setattr__(self, "patterns", patterns)
        object.__setattr__(self, "projection", projection)
        object.__setattr__(self, "limit", limit)

    # -- structure -------------------------------------------------------------

    def variables(self) -> tuple[Variable, ...]:
        """All distinct variables in first-appearance order."""
        return _variables_in_order(self.patterns)

    @property
    def has_token(self) -> bool:
        """True when any pattern carries a text token (extended-language query)."""
        return any(p.has_token for p in self.patterns)

    def join_variables(self) -> tuple[Variable, ...]:
        """Variables occurring in more than one pattern (the join keys)."""
        counts: dict[Variable, int] = {}
        for pattern in self.patterns:
            for var in pattern.variables():
                counts[var] = counts.get(var, 0) + 1
        return tuple(v for v in _variables_in_order(self.patterns) if counts[v] > 1)

    # -- rewriting ---------------------------------------------------------------

    def replace_patterns(
        self,
        old: Sequence[TriplePattern],
        new: Sequence[TriplePattern],
    ) -> "Query":
        """Return a new query with ``old`` patterns swapped for ``new``.

        This is the primitive a relaxation-rule application uses.  Pattern
        order is preserved: the first replaced position receives the new
        patterns, later replaced positions are dropped.
        """
        old_set = list(old)
        for pattern in old_set:
            if pattern not in self.patterns:
                raise QueryError(f"Pattern not in query: {pattern}")
        result: list[TriplePattern] = []
        inserted = False
        for pattern in self.patterns:
            if pattern in old_set:
                old_set.remove(pattern)
                if not inserted:
                    result.extend(new)
                    inserted = True
                continue
            result.append(pattern)
        projection = tuple(
            v for v in self.projection if any(v in p.variables() for p in result)
        )
        if not projection:
            raise QueryError("Rewriting removed all projection variables")
        return Query(result, projection, self.limit)

    def substitute(self, binding: Mapping[Variable, Term]) -> "Query":
        """Substitute constants for variables across all patterns."""
        new_patterns = [p.substitute(binding) for p in self.patterns]
        projection = tuple(v for v in self.projection if v not in binding)
        if not projection:
            projection = _variables_in_order(tuple(new_patterns))
        if not projection:
            raise QueryError("Substitution left no variables to project")
        return Query(new_patterns, projection, self.limit)

    # -- rendering ---------------------------------------------------------------

    def n3(self) -> str:
        """Render in the parser's textual syntax."""
        body = " ; ".join(p.n3() for p in self.patterns)
        proj = " ".join(v.n3() for v in self.projection)
        return f"SELECT {proj} WHERE {body}"

    def __str__(self) -> str:
        return self.n3()

    def __len__(self) -> int:
        return len(self.patterns)


def _variables_in_order(patterns: tuple[TriplePattern, ...]) -> tuple[Variable, ...]:
    seen: dict[Variable, None] = {}
    for pattern in patterns:
        for var in pattern.variables():
            seen.setdefault(var, None)
    return tuple(seen)


def _is_connected(patterns: tuple[TriplePattern, ...]) -> bool:
    """True when the patterns form one connected component via shared variables.

    Patterns without variables (fully bound assertions) attach to any
    component, so they never break connectivity.
    """
    with_vars = [p for p in patterns if p.variables()]
    if len(with_vars) <= 1:
        return True
    remaining = list(range(1, len(with_vars)))
    component_vars = set(with_vars[0].variables())
    grew = True
    while grew and remaining:
        grew = False
        for idx in list(remaining):
            pattern_vars = set(with_vars[idx].variables())
            if pattern_vars & component_vars:
                component_vars |= pattern_vars
                remaining.remove(idx)
                grew = True
    return not remaining
