"""Answers, derivations, and answer sets.

An :class:`Answer` is a binding of the query's projection variables, scored
by the maximum over all of its derivations.  A :class:`Derivation` records
*how* one way of obtaining the answer matched the (possibly rewritten) query:
which stored triples matched which patterns, which query-level rule
applications rewrote the query, which pattern-level rules and token
expansions were used.  Explanations (Section 5) are rendered from this
record, so every answer is explainable without re-running the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.core.query import Query
from repro.core.terms import Term, Variable
from repro.core.triples import TriplePattern
from repro.relax.rules import RelaxationRule, RuleApplication
from repro.storage.store import StoredTriple
from repro.storage.text_index import TokenMatch

#: A hashable binding: ((variable, term), ...) sorted by variable name.
BindingKey = tuple[tuple[Variable, Term], ...]


def binding_key(binding: Mapping[Variable, Term]) -> BindingKey:
    """Canonical hashable form of a variable binding."""
    return tuple(sorted(binding.items(), key=lambda kv: kv[0].name))


@dataclass(frozen=True)
class PatternMatchInfo:
    """How a single evaluated pattern was matched.

    Attributes
    ----------
    pattern:
        The pattern as evaluated against the store (after rewriting, token
        expansion, and pattern-level relaxation).
    records:
        The stored triple(s) that matched — one for a plain pattern, several
        when a pattern-level rule expanded the pattern into a sub-join.
    score:
        The per-pattern score including all multipliers.
    rule:
        Pattern-level relaxation rule used, if any.
    token_matches:
        Token expansions applied (query phrase → stored phrase).
    """

    pattern: TriplePattern
    records: tuple[StoredTriple, ...]
    score: float
    rule: RelaxationRule | None = None
    token_matches: tuple[TokenMatch, ...] = ()


@dataclass(frozen=True)
class Derivation:
    """One complete way an answer was obtained."""

    matches: tuple[PatternMatchInfo, ...]
    rewriting: tuple[RuleApplication, ...] = ()
    rewriting_weight: float = 1.0

    def rules_used(self) -> list[RelaxationRule]:
        """Every distinct rule involved, query-level first."""
        rules: list[RelaxationRule] = []
        for app in self.rewriting:
            if app.rule not in rules:
                rules.append(app.rule)
        for match in self.matches:
            if match.rule is not None and match.rule not in rules:
                rules.append(match.rule)
        return rules

    def triples_used(self) -> list[StoredTriple]:
        """Every stored triple contributing, in pattern order."""
        return [record for match in self.matches for record in match.records]

    def token_matches_used(self) -> list[TokenMatch]:
        return [tm for match in self.matches for tm in match.token_matches]

    @property
    def uses_relaxation(self) -> bool:
        return bool(self.rewriting) or any(m.rule is not None for m in self.matches)

    @property
    def uses_xkg(self) -> bool:
        """True when any contributing triple is an Open IE extension triple."""
        return any(
            record.triple.is_token_triple or
            any(p.is_extraction for p in record.provenances)
            for record in self.triples_used()
        )


@dataclass(frozen=True)
class Answer:
    """A scored projection-variable binding with its best derivation."""

    binding: BindingKey
    score: float
    derivation: Derivation
    num_derivations: int = 1

    def value(self, variable: Variable | str) -> Term:
        """The term bound to ``variable`` (by Variable or bare name)."""
        name = variable.name if isinstance(variable, Variable) else variable
        for var, term in self.binding:
            if var.name == name:
                return term
        raise KeyError(f"No binding for variable ?{name}")

    def as_dict(self) -> dict[Variable, Term]:
        return dict(self.binding)

    def render(self) -> str:
        parts = ", ".join(f"{var.n3()}={term.n3()}" for var, term in self.binding)
        return f"{parts}  (score {self.score:.4f})"


@dataclass
class QueryStats:
    """Work counters filled in by the top-k processor (efficiency bench)."""

    sorted_accesses: int = 0
    cursors_opened: int = 0
    relaxations_considered: int = 0
    relaxations_invoked: int = 0
    rewritings_enumerated: int = 0
    rewritings_processed: int = 0
    candidates_formed: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class AnswerSet:
    """Ranked answers for one query, plus processing statistics."""

    query: Query
    answers: list[Answer] = field(default_factory=list)
    k: int = 10
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[Answer]:
        return iter(self.answers)

    def __getitem__(self, index: int) -> Answer:
        return self.answers[index]

    @property
    def is_empty(self) -> bool:
        return not self.answers

    def top(self) -> Answer | None:
        return self.answers[0] if self.answers else None

    def bindings(self) -> list[dict[Variable, Term]]:
        return [answer.as_dict() for answer in self.answers]

    def terms_for(self, variable: Variable | str) -> list[Term]:
        """The ranked terms bound to one projection variable."""
        return [answer.value(variable) for answer in self.answers]

    def render_table(self) -> str:
        """Plain-text result table (used by the demo interface)."""
        if not self.answers:
            return "(no answers)"
        headers = [var.n3() for var, _t in self.answers[0].binding] + ["score"]
        rows = [
            [term.n3() for _v, term in answer.binding] + [f"{answer.score:.4f}"]
            for answer in self.answers
        ]
        widths = [
            max(len(headers[col]), *(len(row[col]) for row in rows))
            for col in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)
