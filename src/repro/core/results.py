"""Answers, derivations, and answer sets.

An :class:`Answer` is a binding of the query's projection variables, scored
by the maximum over all of its derivations.  A :class:`Derivation` records
*how* one way of obtaining the answer matched the (possibly rewritten) query:
which stored triples matched which patterns, which query-level rule
applications rewrote the query, which pattern-level rules and token
expansions were used.  Explanations (Section 5) are rendered from this
record, so every answer is explainable without re-running the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.core.query import Query
from repro.core.terms import Term, Variable
from repro.core.triples import TriplePattern
from repro.errors import StorageError, TopKError
from repro.relax.rules import RelaxationRule, RuleApplication
from repro.storage.store import StoredTriple
from repro.storage.text_index import TokenMatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (driver imports us)
    from repro.topk.driver import TopKDriver

#: A hashable binding: ((variable, term), ...) sorted by variable name.
BindingKey = tuple[tuple[Variable, Term], ...]


def binding_key(binding: Mapping[Variable, Term]) -> BindingKey:
    """Canonical hashable form of a variable binding."""
    return tuple(sorted(binding.items(), key=lambda kv: kv[0].name))


@dataclass(frozen=True)
class PatternMatchInfo:
    """How a single evaluated pattern was matched.

    Attributes
    ----------
    pattern:
        The pattern as evaluated against the store (after rewriting, token
        expansion, and pattern-level relaxation).
    records:
        The stored triple(s) that matched — one for a plain pattern, several
        when a pattern-level rule expanded the pattern into a sub-join.
    score:
        The per-pattern score including all multipliers.
    rule:
        Pattern-level relaxation rule used, if any.
    token_matches:
        Token expansions applied (query phrase → stored phrase).
    """

    pattern: TriplePattern
    records: tuple[StoredTriple, ...]
    score: float
    rule: RelaxationRule | None = None
    token_matches: tuple[TokenMatch, ...] = ()


@dataclass(frozen=True)
class Derivation:
    """One complete way an answer was obtained."""

    matches: tuple[PatternMatchInfo, ...]
    rewriting: tuple[RuleApplication, ...] = ()
    rewriting_weight: float = 1.0

    def rules_used(self) -> list[RelaxationRule]:
        """Every distinct rule involved, query-level first."""
        rules: list[RelaxationRule] = []
        for app in self.rewriting:
            if app.rule not in rules:
                rules.append(app.rule)
        for match in self.matches:
            if match.rule is not None and match.rule not in rules:
                rules.append(match.rule)
        return rules

    def triples_used(self) -> list[StoredTriple]:
        """Every stored triple contributing, in pattern order."""
        return [record for match in self.matches for record in match.records]

    def token_matches_used(self) -> list[TokenMatch]:
        return [tm for match in self.matches for tm in match.token_matches]

    @property
    def uses_relaxation(self) -> bool:
        return bool(self.rewriting) or any(m.rule is not None for m in self.matches)

    @property
    def uses_xkg(self) -> bool:
        """True when any contributing triple is an Open IE extension triple."""
        return any(
            record.triple.is_token_triple or
            any(p.is_extraction for p in record.provenances)
            for record in self.triples_used()
        )


@dataclass(frozen=True)
class Answer:
    """A scored projection-variable binding with its best derivation."""

    binding: BindingKey
    score: float
    derivation: Derivation
    num_derivations: int = 1

    def value(self, variable: Variable | str) -> Term:
        """The term bound to ``variable`` (by Variable or bare name)."""
        name = variable.name if isinstance(variable, Variable) else variable
        for var, term in self.binding:
            if var.name == name:
                return term
        raise KeyError(f"No binding for variable ?{name}")

    def as_dict(self) -> dict[Variable, Term]:
        return dict(self.binding)

    def render(self) -> str:
        parts = ", ".join(f"{var.n3()}={term.n3()}" for var, term in self.binding)
        return f"{parts}  (score {self.score:.4f})"


@dataclass
class QueryStats:
    """Work counters filled in by the top-k processor (efficiency bench).

    ``answers_emitted`` and ``resumes`` are the streaming counters: how many
    answers an :class:`AnswerStream` has handed out, and how many times a
    suspended driver was continued.  An eager :meth:`TopKProcessor.query`
    run leaves both at zero.

    ``segments_touched``, ``postings_materialized`` and ``posting_pulls``
    are the segment-parallel counters: how many physical storage segments
    the query's posting cursors fanned out over, how many merged posting
    heads the batched pulls actually materialised, and how many batched
    ``pull`` calls did that materialising (fed from
    ``MergedPostings.materialized`` — only segmented backends report them;
    monolithic posting lists are zero-copy views with nothing to pull).
    The ratio ``postings_materialized / posting_pulls`` is the observed
    per-query posting-drain depth the adaptive merge batching responds to.

    ``delta_hits`` counts materialised posting heads that came from the
    store's mutable delta segment (live ingestion) rather than a frozen
    segment — the observable share of a query answered by not-yet-
    compacted data.

    ``blocks_decoded`` and ``block_cache_hits`` are the block-kernel
    counters (:mod:`repro.topk.kernels`): how many posting blocks the
    query's cursors decoded and scored in one kernel call each, and how
    many prepared head blocks were served from the engine's hot-block
    cache instead of being re-translated from segment postings.
    """

    sorted_accesses: int = 0
    cursors_opened: int = 0
    relaxations_considered: int = 0
    relaxations_invoked: int = 0
    rewritings_enumerated: int = 0
    rewritings_processed: int = 0
    candidates_formed: int = 0
    elapsed_seconds: float = 0.0
    answers_emitted: int = 0
    resumes: int = 0
    segments_touched: int = 0
    postings_materialized: int = 0
    posting_pulls: int = 0
    delta_hits: int = 0
    blocks_decoded: int = 0
    block_cache_hits: int = 0

    def copy(self) -> "QueryStats":
        return replace(self)

    def merge(self, *others: "QueryStats") -> "QueryStats":
        """Field-wise sum with ``others``, as a new :class:`QueryStats`.

        This is what makes cumulative statistics across ``next_k`` calls
        well-defined: merging every per-call delta reproduces the stream's
        cumulative counters exactly.
        """
        merged = self.copy()
        for other in others:
            for spec in fields(self):
                setattr(
                    merged,
                    spec.name,
                    getattr(merged, spec.name) + getattr(other, spec.name),
                )
        return merged

    def diff(self, before: "QueryStats") -> "QueryStats":
        """Counters accumulated since ``before`` was :meth:`copy`-ed.

        The per-call statistics of a ``next_k`` call are the diff between
        the cumulative stats after and before it; ``before.merge(diff)``
        round-trips back to the cumulative values.
        """
        delta = QueryStats()
        for spec in fields(self):
            setattr(
                delta,
                spec.name,
                getattr(self, spec.name) - getattr(before, spec.name),
            )
        return delta


@dataclass
class AnswerSet:
    """Ranked answers for one query, plus processing statistics."""

    query: Query
    answers: list[Answer] = field(default_factory=list)
    k: int = 10
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[Answer]:
        return iter(self.answers)

    def __getitem__(self, index: int) -> Answer:
        return self.answers[index]

    @property
    def is_empty(self) -> bool:
        return not self.answers

    def top(self) -> Answer | None:
        return self.answers[0] if self.answers else None

    def bindings(self) -> list[dict[Variable, Term]]:
        return [answer.as_dict() for answer in self.answers]

    def terms_for(self, variable: Variable | str) -> list[Term]:
        """The ranked terms bound to one projection variable."""
        return [answer.value(variable) for answer in self.answers]

    def render_table(self) -> str:
        """Plain-text result table (used by the demo interface)."""
        if not self.answers:
            return "(no answers)"
        return _render_answer_table(self.answers)


def _render_answer_table(answers: Sequence[Answer]) -> str:
    headers = [var.n3() for var, _t in answers[0].binding] + ["score"]
    rows = [
        [term.n3() for _v, term in answer.binding] + [f"{answer.score:.4f}"]
        for answer in answers
    ]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


class AnswerStream:
    """Resumable, score-ordered answers for one query.

    Obtained from :meth:`TriniT.stream`; each :meth:`next_k` call *continues*
    the suspended top-k computation — cursors, rank-join state and the
    rewriting frontier all persist between calls, so asking for ten more
    answers costs only the additional work, never a recomputation.

    Emitted answers are final: the driver settles a rank prefix before
    handing it out (every combination that could still tie into it has been
    formed), so the concatenation of all ``next_k`` batches is byte-identical
    to the eager ``ask(k=total)`` answer list — bindings, scores and order.

    Statistics come in two flavours: :attr:`stats` accumulates over the
    stream's whole life, :attr:`last_stats` holds the delta of the most
    recent :meth:`next_k` call (``QueryStats.merge`` over all per-call
    deltas reproduces the cumulative values).
    """

    def __init__(self, driver: "TopKDriver") -> None:
        self._driver = driver
        self._emitted: list[Answer] = []
        self._requested = 0
        self._exhausted = False
        self._last_stats = QueryStats()

    # -- introspection ------------------------------------------------------

    @property
    def query(self) -> Query:
        return self._driver.query

    @property
    def exhausted(self) -> bool:
        """True once the stream can never produce another answer."""
        return self._exhausted

    @property
    def stats(self) -> QueryStats:
        """Cumulative statistics over every ``next_k`` call so far."""
        return self._driver.stats

    @property
    def last_stats(self) -> QueryStats:
        """Per-call statistics of the most recent ``next_k``."""
        return self._last_stats

    def __len__(self) -> int:
        """Number of answers emitted so far."""
        return len(self._emitted)

    # -- pagination ---------------------------------------------------------

    def next_k(self, n: int) -> list[Answer]:
        """The next ``n`` answers in score order (fewer when exhausted).

        Returns ``[]`` once the stream is exhausted.  Raises
        :class:`~repro.errors.StorageError` when the engine's store has been
        closed under the stream.
        """
        if n < 1:
            raise TopKError(f"n must be >= 1, got {n}")
        if self._driver.store.closed:
            raise StorageError("Cannot continue a stream over a closed store")
        if self._exhausted:
            self._last_stats = QueryStats()
            return []
        before = self._driver.stats.copy()
        emitted = len(self._emitted)
        target = emitted + n
        self._requested = max(self._requested, target)
        self._driver.advance(target)
        batch = self._driver.ranked_window(emitted, target)
        self._emitted.extend(batch)
        if len(batch) < n:
            self._exhausted = True
        self._driver.stats.answers_emitted += len(batch)
        self._last_stats = self._driver.stats.diff(before)
        return batch

    def collected(self) -> AnswerSet:
        """Everything emitted so far as an :class:`AnswerSet`.

        ``k`` is the cumulative number of answers requested; ``stats`` are
        a snapshot of the stream's cumulative statistics (later ``next_k``
        calls do not mutate an already-collected set's counters).
        """
        return AnswerSet(
            query=self._driver.query,
            answers=list(self._emitted),
            k=max(self._requested, 1),
            stats=self._driver.stats.copy(),
        )

    def __iter__(self) -> Iterator[Answer]:
        """Iterate answers, fetching lazily; re-iteration replays from rank 1."""
        index = 0
        while True:
            while index >= len(self._emitted):
                if self._exhausted:
                    return
                self.next_k(1)
            yield self._emitted[index]
            index += 1
