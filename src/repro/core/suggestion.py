"""Query suggestion (Section 5, "Query Suggestion").

Two kinds of suggestion are produced:

* **Token → resource**: when matches for a text token overlap significantly
  with the matches of a canonical KG resource, the resource is suggested for
  future queries ("you wrote ``'born in'`` — the KG predicate is
  ``bornIn``").  Overlap is measured between *context-pair sets*: the set of
  (S, O) pairs a token predicate connects vs. a resource predicate's
  ``args(p)``, and analogously for subject/object slots.
* **Reformulation / rule notification**: when a structural relaxation rule
  contributed to the answers, the user is told, and the corresponding
  rewritten query is suggested as a better-aligned formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Query
from repro.core.results import AnswerSet
from repro.core.terms import Resource, TextToken
from repro.storage.statistics import StoreStatistics
from repro.storage.text_index import TokenMatcher
from repro.util.text import overlap_coefficient

#: Suggestion kinds.
KIND_RESOURCE = "resource"
KIND_REFORMULATION = "reformulation"
KIND_RULE_NOTE = "rule-note"


@dataclass(frozen=True)
class Suggestion:
    """One suggestion with a confidence score in (0, 1]."""

    kind: str
    text: str
    score: float
    replacement: str = ""

    def sort_key(self):
        return (-self.score, self.kind, self.text)


class QuerySuggester:
    """Generates suggestions from store statistics and answer derivations."""

    def __init__(
        self,
        statistics: StoreStatistics,
        matcher: TokenMatcher,
        *,
        min_overlap: float = 0.25,
        max_suggestions_per_token: int = 3,
    ):
        self.statistics = statistics
        self.matcher = matcher
        self.min_overlap = min_overlap
        self.max_suggestions_per_token = max_suggestions_per_token

    # -- token → resource ------------------------------------------------------

    def resource_suggestions(self, query: Query) -> list[Suggestion]:
        """Suggest canonical resources for each text token in the query."""
        suggestions: list[Suggestion] = []
        seen: set[tuple[str, int]] = set()
        for pattern in query.patterns:
            for slot, term in enumerate(pattern.terms()):
                if not isinstance(term, TextToken):
                    continue
                if (term.norm, slot) in seen:
                    continue
                seen.add((term.norm, slot))
                suggestions.extend(self._suggest_for_token(term, slot))
        suggestions.sort(key=Suggestion.sort_key)
        return suggestions

    def _suggest_for_token(self, token: TextToken, slot: int) -> list[Suggestion]:
        # Union the context pairs of every stored phrase the token matches —
        # weighting each phrase's contribution by the match similarity would
        # be possible, but plain union is what "matches for these tokens"
        # denotes in the paper.
        token_context: set[tuple[int, int]] = set()
        surface_similarity: dict[Resource, float] = {}
        for match in self.matcher.matches(token, slot):
            if isinstance(match.token, TextToken):
                token_context |= self.statistics.context_pairs(match.token, slot)
            elif isinstance(match.token, Resource):
                # The matcher already found resources whose surface form
                # resembles the token; keep them as direct candidates.
                surface_similarity[match.token] = match.similarity
        if not token_context and not surface_similarity:
            return []
        scored: list[tuple[float, Resource]] = []
        for resource in self.statistics.terms_in_slot(slot, kind="resource"):
            resource_context = self.statistics.context_pairs(resource, slot)
            overlap = overlap_coefficient(token_context, set(resource_context))
            score = max(overlap, surface_similarity.get(resource, 0.0))
            if score >= self.min_overlap:
                scored.append((score, resource))
        scored.sort(key=lambda item: (-item[0], item[1].sort_key()))
        slot_name = ("subject", "predicate", "object")[slot]
        return [
            Suggestion(
                kind=KIND_RESOURCE,
                text=(
                    f"token '{token.norm}' in the {slot_name} slot closely "
                    f"matches KG resource {resource.n3()} "
                    f"(match overlap {overlap:.2f})"
                ),
                score=min(1.0, overlap),
                replacement=resource.n3(),
            )
            for overlap, resource in scored[: self.max_suggestions_per_token]
        ]

    # -- rule notifications / reformulations ----------------------------------

    def rule_suggestions(self, answers: AnswerSet) -> list[Suggestion]:
        """Notify about relaxations that actually contributed to answers.

        For each distinct rule used by some answer's best derivation, the
        highest answer score using it becomes the suggestion score, and the
        rewritten query of the top-most such answer is offered as a
        reformulation.
        """
        by_rule: dict[str, Suggestion] = {}
        for answer in answers:
            derivation = answer.derivation
            for application in derivation.rewriting:
                description = application.rule.describe()
                if description not in by_rule:
                    by_rule[description] = Suggestion(
                        kind=KIND_REFORMULATION,
                        text=(
                            f"answers used rule {application.rule.n3()}; "
                            "a better-aligned query would be: "
                            f"{application.query.n3()}"
                        ),
                        score=min(1.0, answer.score + (1.0 - answer.score) * 0.5),
                        replacement=application.query.n3(),
                    )
            for match in derivation.matches:
                if match.rule is None:
                    continue
                description = match.rule.describe()
                if description not in by_rule:
                    by_rule[description] = Suggestion(
                        kind=KIND_RULE_NOTE,
                        text=(
                            f"the relaxation {match.rule.n3()} "
                            f"({match.rule.origin}) contributed answers"
                        ),
                        score=min(1.0, match.rule.weight),
                    )
        return sorted(by_rule.values(), key=Suggestion.sort_key)

    def suggest(self, query: Query, answers: AnswerSet | None = None) -> list[Suggestion]:
        """All suggestions for a query (and optionally its answers)."""
        suggestions = self.resource_suggestions(query)
        if answers is not None:
            suggestions.extend(self.rule_suggestions(answers))
        suggestions.sort(key=Suggestion.sort_key)
        return suggestions
