"""Exception hierarchy for the TriniT reproduction.

All library-specific errors derive from :class:`TrinitError` so callers can
catch one base class.  Subclasses exist per subsystem so tests and
applications can discriminate failure modes precisely.
"""

from __future__ import annotations


class TrinitError(Exception):
    """Base class for all errors raised by this library."""


class TermError(TrinitError):
    """An RDF-style term was constructed or combined incorrectly."""


class PatternError(TrinitError):
    """A triple pattern is malformed (e.g. no variable and no constant)."""


class QueryError(TrinitError):
    """A query is malformed (empty, disconnected projection, ...)."""


class ParseError(QueryError):
    """The textual query syntax could not be parsed.

    Attributes
    ----------
    text:
        The offending input fragment.
    position:
        Character offset of the error within the full input, if known.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position


class StorageError(TrinitError):
    """The triple store was used inconsistently (unknown id, frozen store...)."""


class DictionaryError(StorageError):
    """Term dictionary lookup failed for an unknown id or term."""


class PersistenceError(StorageError):
    """Saving or loading a store failed or the on-disk format is invalid."""


class RelaxationError(TrinitError):
    """A relaxation rule or operator is invalid."""


class OperatorError(RelaxationError):
    """A relaxation operator was registered or invoked incorrectly."""


class ScoringError(TrinitError):
    """Scoring parameters are invalid (e.g. smoothing weight out of range)."""


class TopKError(TrinitError):
    """Top-k processing was configured incorrectly (k < 1, bad budget...)."""


class ExtractionError(TrinitError):
    """Open IE extraction failed on malformed input."""


class EvaluationError(TrinitError):
    """The evaluation harness was configured incorrectly."""
