"""Building the extended knowledge graph.

Section 2 of the paper: run Open IE over the corpus, link S/O phrases to KG
entities where NED is confident, keep everything else as text tokens, and
pour curated facts plus extractions into one store.  Every extraction keeps
its provenance (document, sentence, extractor) and confidence; duplicate
statements accumulate observation counts, which become the tf-like evidence
in answer scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.terms import Resource, Term, TextToken
from repro.core.triples import Provenance, Triple
from repro.errors import ExtractionError
from repro.openie.corpus import Document
from repro.openie.ned import EntityLinker
from repro.openie.reverb import Extraction, ReverbExtractor
from repro.storage.store import TripleStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine uses storage)
    from repro.core.engine import TriniT


@dataclass
class XkgBuildReport:
    """What happened during XKG construction (the §5 statistics)."""

    documents: int = 0
    sentences: int = 0
    extractions: int = 0
    extractions_kept: int = 0
    arguments_linked: int = 0
    arguments_unlinked: int = 0
    kg_triples: int = 0
    extension_triples: int = 0
    distinct_triples: int = 0

    @property
    def extension_ratio(self) -> float:
        """Extension : KG distinct-triple ratio (the paper's 390M : 50M)."""
        if not self.kg_triples:
            return 0.0
        return self.extension_triples / self.kg_triples

    def summary(self) -> str:
        return (
            f"{self.distinct_triples} distinct triples: "
            f"{self.kg_triples} curated + {self.extension_triples} extracted "
            f"(ratio 1:{self.extension_ratio:.1f}); "
            f"{self.extractions} raw extractions from {self.documents} documents, "
            f"{self.arguments_linked} arguments entity-linked"
        )


class XkgBuilder:
    """Builds an XKG store from curated triples and a document corpus.

    Parameters
    ----------
    extractor:
        The Open IE engine (default: :class:`ReverbExtractor`).
    linker:
        NED for S/O argument phrases; None keeps all arguments as tokens.
    min_confidence:
        Extractions below this confidence are dropped before storage.
    """

    def __init__(
        self,
        extractor: ReverbExtractor | None = None,
        linker: EntityLinker | None = None,
        min_confidence: float = 0.35,
        backend: str | None = None,
    ):
        self.extractor = extractor if extractor is not None else ReverbExtractor()
        self.linker = linker
        self.min_confidence = min_confidence
        self.backend = backend

    def _argument_term(self, phrase: str, context: str, report: XkgBuildReport) -> Term:
        """Resolve an argument phrase: linked resource or text token."""
        if self.linker is not None:
            result = self.linker.link(phrase, context)
            if result.linked:
                report.arguments_linked += 1
                return Resource(result.entity_id)
        report.arguments_unlinked += 1
        return TextToken(phrase)

    def _extracted_statements(
        self, document: Document, report: XkgBuildReport
    ) -> Iterable[tuple[Triple, Provenance, float]]:
        """Kept extractions from one document as storable statements."""
        for sentence in document.sentences:
            report.sentences += 1
            try:
                extractions = self.extractor.extract(sentence.text)
            except Exception as exc:  # pragma: no cover - defensive
                raise ExtractionError(
                    f"Extraction failed on {document.doc_id}: {sentence.text!r}"
                ) from exc
            for extraction in extractions:
                report.extractions += 1
                if extraction.confidence < self.min_confidence:
                    continue
                subject = self._argument_term(
                    extraction.subject, sentence.text, report
                )
                obj = self._argument_term(
                    extraction.object, sentence.text, report
                )
                predicate = TextToken(extraction.relation)
                provenance = Provenance(
                    origin="openie",
                    source=document.doc_id,
                    sentence=sentence.text,
                    extractor="reverb",
                )
                report.extractions_kept += 1
                yield Triple(subject, predicate, obj), provenance, extraction.confidence

    def build(
        self,
        kg_triples: Sequence[Triple],
        documents: Iterable[Document],
        store_name: str = "XKG",
        freeze: bool = True,
    ) -> tuple[TripleStore, XkgBuildReport]:
        """Construct the XKG store.  Returns (store, report)."""
        report = XkgBuildReport()
        store = TripleStore(store_name, backend=self.backend)
        kg_provenance = Provenance(origin="kg", source="KG")
        store.add_all(kg_triples, kg_provenance)
        report.kg_triples = len(store)

        for document in documents:
            report.documents += 1
            for triple, provenance, confidence in self._extracted_statements(
                document, report
            ):
                store.add(triple, provenance, confidence=confidence)

        report.distinct_triples = len(store)
        report.extension_triples = report.distinct_triples - report.kg_triples
        if freeze:
            store.freeze()
        return store, report

    def extend(
        self,
        engine: "TriniT",
        documents: Iterable[Document],
        report: XkgBuildReport | None = None,
    ) -> XkgBuildReport:
        """Stream extractions from *documents* into a live engine.

        The live-ingestion counterpart of :meth:`build`: instead of
        constructing and freezing a store up front, every kept extraction
        is fed through :meth:`TriniT.ingest`, landing in the engine's
        mutable delta segment where the very next query already sees it.
        The engine compacts in the background once its configured
        threshold is crossed, so the corpus can keep flowing while
        queries run.

        Documents are consumed incrementally (one at a time), so the
        iterable may be an unbounded feed.  Pass a *report* to accumulate
        statistics across several calls; ``kg_triples`` is pinned to the
        engine's pre-existing size on a fresh report so the extension
        ratio stays meaningful.
        """
        if report is None:
            report = XkgBuildReport()
            report.kg_triples = len(engine.store)
        before = len(engine.store)
        for document in documents:
            report.documents += 1
            for triple, provenance, confidence in self._extracted_statements(
                document, report
            ):
                engine.ingest([triple], provenance, confidence=confidence)
        report.distinct_triples = len(engine.store)
        report.extension_triples += len(engine.store) - before
        return report


def build_xkg(
    kg_triples: Sequence[Triple],
    documents: Iterable[Document],
    *,
    linker: EntityLinker | None = None,
    min_confidence: float = 0.35,
    store_name: str = "XKG",
    backend: str | None = None,
) -> tuple[TripleStore, XkgBuildReport]:
    """Convenience wrapper around :class:`XkgBuilder`."""
    builder = XkgBuilder(
        linker=linker, min_confidence=min_confidence, backend=backend
    )
    return builder.build(kg_triples, documents, store_name=store_name)
