"""XKG construction: KG + Open IE extractions → one extended store."""

from repro.xkg.builder import XkgBuilder, XkgBuildReport, build_xkg

__all__ = ["XkgBuilder", "XkgBuildReport", "build_xkg"]
