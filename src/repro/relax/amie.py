"""AMIE-style association rule mining over the curated KG.

The paper lists "rule mining on the KG (e.g. AMIE [5])" as one source of
relaxation rules.  AMIE mines closed Horn rules under incomplete evidence,
scoring them with *PCA confidence*: the denominator counts only
counter-examples where the head's subject is known to have *some* value for
the head predicate (partial-completeness assumption) — which matters
precisely because KGs are incomplete.

We mine the three rule shapes useful for relaxation:

* ``q(x, y) ⇒ p(x, y)``  — synonymy       → relax ``?x p ?y`` to ``?x q ?y``
* ``q(y, x) ⇒ p(x, y)``  — inversion      → relax ``?x p ?y`` to ``?y q ?x``
* ``q(x, z) ∧ r(z, y) ⇒ p(x, y)`` — chain → relax ``?x p ?y`` to the 2-hop path

The relaxation weight is the rule's PCA confidence.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.core.terms import Term, Variable
from repro.core.triples import TriplePattern
from repro.relax.rules import ORIGIN_AMIE, RelaxationRule
from repro.storage.statistics import StoreStatistics

_X, _Y, _Z = Variable("x"), Variable("y"), Variable("z")


def _pca_confidence(
    body_pairs: set[tuple[int, int]],
    head_pairs: frozenset[tuple[int, int]],
    head_subjects: set[int],
) -> tuple[int, float]:
    """Return (support, PCA confidence) for body ⇒ head.

    Support: |body ∩ head|.  PCA denominator: body pairs whose subject has at
    least one head fact — pairs with unknown subjects are not counted as
    counter-examples.
    """
    support = len(body_pairs & head_pairs)
    pca_body = sum(1 for s, _o in body_pairs if s in head_subjects)
    if pca_body == 0:
        return support, 0.0
    return support, support / pca_body


def mine_amie_rules(
    statistics: StoreStatistics,
    *,
    predicates: Iterable[Term] | None = None,
    min_support: int = 2,
    min_confidence: float = 0.2,
    mine_chains: bool = True,
    max_rules_per_predicate: int = 15,
    max_compose_size: int = 200_000,
) -> list[RelaxationRule]:
    """Mine AMIE-style rules; emit one relaxation rule per mined Horn rule.

    ``predicates`` restricts the *head* predicate p (the one a query would
    mention); default is every canonical (resource) predicate in the store —
    AMIE operates on the curated KG, not on token phrases.
    """
    if predicates is None:
        heads = [p for p in statistics.predicates() if p.is_resource]
    else:
        heads = list(predicates)
    bodies = [p for p in statistics.predicates() if p.is_resource]

    args: dict[Term, frozenset[tuple[int, int]]] = {
        p: statistics.args(p) for p in set(heads) | set(bodies)
    }
    head_subjects: dict[Term, set[int]] = {
        p: {s for s, _o in pairs} for p, pairs in args.items()
    }
    adjacency: dict[Term, dict[int, set[int]]] = {}
    for p in bodies:
        adj: dict[int, set[int]] = defaultdict(set)
        for s, o in args[p]:
            adj[s].add(o)
        adjacency[p] = adj

    rules: list[RelaxationRule] = []
    for p in heads:
        head_pairs = args[p]
        if not head_pairs:
            continue
        subjects = head_subjects[p]
        candidates: list[tuple[float, int, str, tuple[Term, ...]]] = []

        for q in bodies:
            if q == p:
                continue
            body_pairs = set(args[q])
            if not body_pairs:
                continue
            support, conf = _pca_confidence(body_pairs, head_pairs, subjects)
            if support >= min_support and conf >= min_confidence:
                candidates.append((conf, support, "syn", (q,)))
            inv_pairs = {(o, s) for s, o in body_pairs}
            support, conf = _pca_confidence(inv_pairs, head_pairs, subjects)
            if support >= min_support and conf >= min_confidence:
                candidates.append((conf, support, "inv", (q,)))

        if mine_chains:
            for q in bodies:
                q_adj = adjacency[q]
                for r in bodies:
                    if q == p and r == p:
                        continue
                    r_adj = adjacency[r]
                    composed: set[tuple[int, int]] = set()
                    overflow = False
                    for x, z_values in q_adj.items():
                        for z in z_values:
                            for y in r_adj.get(z, ()):
                                composed.add((x, y))
                                if len(composed) > max_compose_size:
                                    overflow = True
                                    break
                            if overflow:
                                break
                        if overflow:
                            break
                    if overflow or not composed:
                        continue
                    support, conf = _pca_confidence(composed, head_pairs, subjects)
                    if support >= min_support and conf >= min_confidence:
                        candidates.append((conf, support, "chain", (q, r)))

        candidates.sort(
            key=lambda c: (-c[0], -c[1], c[2], tuple(t.sort_key() for t in c[3]))
        )
        for conf, support, shape, body in candidates[:max_rules_per_predicate]:
            if shape == "syn":
                replacement = (TriplePattern(_X, body[0], _Y),)
            elif shape == "inv":
                replacement = (TriplePattern(_Y, body[0], _X),)
            else:
                replacement = (
                    TriplePattern(_X, body[0], _Z),
                    TriplePattern(_Z, body[1], _Y),
                )
            rules.append(
                RelaxationRule(
                    original=(TriplePattern(_X, p, _Y),),
                    replacement=replacement,
                    weight=min(1.0, conf),
                    origin=ORIGIN_AMIE,
                    label=f"amie-{shape} support={support}",
                )
            )
    return rules
