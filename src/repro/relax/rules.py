"""Relaxation rules and their application to queries.

A :class:`RelaxationRule` rewrites a *set* of triple patterns into another
set (Figure 4 of the paper shows four examples, from simple predicate
substitution to granularity repair that splits one pattern into two).  Rule
variables are scoped to the rule; applying a rule unifies its original
patterns with query patterns, substitutes the unifier into the replacement,
and renames replacement-only variables so they never capture query variables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.query import Query
from repro.core.terms import Term, Variable
from repro.core.triples import TriplePattern
from repro.errors import QueryError, RelaxationError

#: Well-known rule origins; free-form strings are allowed too.
ORIGIN_MANUAL = "manual"
ORIGIN_MINED_XKG = "mined-xkg"
ORIGIN_AMIE = "amie"
ORIGIN_PARAPHRASE = "paraphrase"
ORIGIN_STRUCTURAL = "structural"
ORIGIN_ESA = "esa"


@dataclass(frozen=True)
class RelaxationRule:
    """A weighted rewrite: ``original patterns → replacement patterns @ w``.

    Attributes
    ----------
    original:
        Patterns to be removed from the query (matched by unification).
    replacement:
        Patterns inserted instead; may introduce fresh variables.
    weight:
        Semantic similarity in [0, 1]; multiplies into answer scores.
    origin:
        Which generator produced the rule (manual, mined-xkg, amie, ...).
    label:
        Optional human-readable note shown in explanations.
    """

    original: tuple[TriplePattern, ...]
    replacement: tuple[TriplePattern, ...]
    weight: float
    origin: str = ORIGIN_MANUAL
    label: str = ""

    def __post_init__(self):
        if not self.original:
            raise RelaxationError("Rule needs at least one original pattern")
        if not self.replacement:
            raise RelaxationError("Rule needs at least one replacement pattern")
        if not 0.0 < self.weight <= 1.0:
            raise RelaxationError(f"Rule weight must be in (0, 1], got {self.weight}")
        original_vars = _pattern_vars(self.original)
        replacement_vars = _pattern_vars(self.replacement)
        if original_vars and not original_vars & replacement_vars:
            raise RelaxationError(
                "Replacement must share at least one variable with the original "
                "(otherwise answers cannot be related back to the query)"
            )

    # -- structure ------------------------------------------------------------

    @property
    def is_single_pattern(self) -> bool:
        """True for rules whose original is one pattern.

        Single-pattern rules are eligible for pattern-level incremental
        merging inside top-k processing; multi-pattern rules are applied at
        the query-rewriting level.
        """
        return len(self.original) == 1

    @property
    def expands(self) -> bool:
        """True when the replacement has more patterns than the original."""
        return len(self.replacement) > len(self.original)

    def fresh_variables(self) -> tuple[Variable, ...]:
        """Replacement variables that do not occur in the original."""
        original_vars = _pattern_vars(self.original)
        ordered: dict[Variable, None] = {}
        for pattern in self.replacement:
            for var in pattern.variables():
                if var not in original_vars:
                    ordered.setdefault(var, None)
        return tuple(ordered)

    def n3(self) -> str:
        lhs = " ; ".join(p.n3() for p in self.original)
        rhs = " ; ".join(p.n3() for p in self.replacement)
        return f"{lhs} => {rhs} @ {self.weight:g}"

    def __str__(self) -> str:
        return self.n3()

    def describe(self) -> str:
        """Human-readable description used in answer explanations."""
        note = f" [{self.label}]" if self.label else ""
        return f"{self.n3()} ({self.origin}){note}"

    # -- application ------------------------------------------------------------

    def unify(
        self, query_patterns: Sequence[TriplePattern]
    ) -> Iterator[tuple[tuple[int, ...], dict[Variable, Term]]]:
        """Yield every way this rule's original *fully* matches the query.

        Each result is ``(positions, theta)``: the distinct query-pattern
        positions consumed (one per original pattern, order-aligned) and the
        substitution mapping rule variables to query terms.  Constants in the
        original must match query constants exactly; rule variables bind
        consistently across all original patterns.
        """
        n = len(query_patterns)
        for positions in itertools.permutations(range(n), len(self.original)):
            theta: dict[Variable, Term] = {}
            ok = True
            for rule_pattern, pos in zip(self.original, positions):
                if not _unify_pattern(rule_pattern, query_patterns[pos], theta):
                    ok = False
                    break
            if ok:
                yield positions, dict(theta)

    def _unify_flexible(
        self,
        query_patterns: Sequence[TriplePattern],
        condition_checker: Callable[[TriplePattern], bool] | None,
    ) -> Iterator[tuple[tuple[int, ...], dict[Variable, Term], tuple[TriplePattern, ...]]]:
        """Unification where unmatched original patterns may become conditions.

        Figure 4 rule 1 has original ``?x bornIn ?y ; ?y type country`` but a
        user writes just ``?x bornIn Germany`` — the type pattern is then a
        *condition* to verify against the KG (``Germany type country``), not
        a query pattern to consume.  Each yielded result is
        ``(matched positions, theta, checked conditions)``; at least one
        original pattern must match a query pattern, and every deferred
        pattern must be fully bound under theta and accepted by
        ``condition_checker``.
        """
        n = len(query_patterns)

        def search(
            index: int,
            used: frozenset[int],
            theta: dict[Variable, Term],
            matched: tuple[int, ...],
            deferred: tuple[TriplePattern, ...],
        ):
            if index == len(self.original):
                if not matched:
                    return
                conditions = []
                for pattern in deferred:
                    grounded = pattern.substitute(theta)
                    if grounded.variables():
                        return  # unverifiable condition
                    if not condition_checker(grounded):
                        return
                    conditions.append(grounded)
                yield matched, dict(theta), tuple(conditions)
                return
            rule_pattern = self.original[index]
            for pos in range(n):
                if pos in used:
                    continue
                extended = dict(theta)
                if _unify_pattern(rule_pattern, query_patterns[pos], extended):
                    yield from search(
                        index + 1, used | {pos}, extended, matched + (pos,), deferred
                    )
            if condition_checker is not None and len(self.original) > 1:
                yield from search(
                    index + 1, used, theta, matched, deferred + (rule_pattern,)
                )

        yield from search(0, frozenset(), {}, (), ())

    def apply(
        self,
        query: Query,
        fresh_names: Iterator[str],
        condition_checker: Callable[[TriplePattern], bool] | None = None,
    ) -> list["RuleApplication"]:
        """All applications of this rule to ``query``.

        ``fresh_names`` supplies variable names for replacement-only
        variables; the caller owns the counter so names never collide across
        rules.  ``condition_checker`` (typically "does this fact hold in the
        store?") enables partial matching where leftover original patterns
        become verified conditions.  Applications that would remove every
        projection variable are skipped.
        """
        applications: list[RuleApplication] = []
        seen_keys: set[tuple] = set()
        for positions, theta, conditions in self._unify_flexible(
            query.patterns, condition_checker
        ):
            rename = {
                var.name: next(fresh_names) for var in self.fresh_variables()
            }
            new_patterns = tuple(
                p.rename_variables(rename).substitute(theta) for p in self.replacement
            )
            removed = tuple(query.patterns[i] for i in positions)
            key = (tuple(sorted(positions)), new_patterns)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            try:
                rewritten = query.replace_patterns(removed, new_patterns)
            except QueryError:
                continue
            if set(rewritten.patterns) == set(query.patterns):
                continue  # no-op application
            applications.append(
                RuleApplication(
                    rule=self,
                    removed=removed,
                    added=new_patterns,
                    query=rewritten,
                    conditions=conditions,
                )
            )
        return applications


def _pattern_vars(patterns: Iterable[TriplePattern]) -> set[Variable]:
    return {v for p in patterns for v in p.variables()}


def _unify_pattern(
    rule_pattern: TriplePattern,
    query_pattern: TriplePattern,
    theta: dict[Variable, Term],
) -> bool:
    """Extend ``theta`` so that ``theta(rule_pattern) == query_pattern``.

    Mutates ``theta`` in place; on failure the caller discards it.  Rule
    variables may bind to query variables or constants; rule constants must
    equal the query term.
    """
    for rule_term, query_term in zip(rule_pattern.terms(), query_pattern.terms()):
        if isinstance(rule_term, Variable):
            bound = theta.get(rule_term)
            if bound is None:
                theta[rule_term] = query_term
            elif bound != query_term:
                return False
        elif rule_term != query_term:
            return False
    return True


@dataclass(frozen=True)
class RuleApplication:
    """One concrete application of a rule to a query.

    ``conditions`` are grounded original patterns that were verified against
    the store instead of being matched against query patterns (the "?y is in
    fact a country" guard of Figure 4 rule 1).
    """

    rule: RelaxationRule
    removed: tuple[TriplePattern, ...]
    added: tuple[TriplePattern, ...]
    query: Query
    conditions: tuple[TriplePattern, ...] = ()

    def describe(self) -> str:
        lhs = " ; ".join(p.n3() for p in self.removed)
        rhs = " ; ".join(p.n3() for p in self.added)
        line = f"relaxed [{lhs}] to [{rhs}] (w={self.rule.weight:g}, {self.rule.origin})"
        if self.conditions:
            checked = " ; ".join(p.n3() for p in self.conditions)
            line += f" given [{checked}]"
        return line


class RuleSet:
    """A deduplicated, deterministic collection of relaxation rules.

    Rules are kept in insertion order after dedup; iteration and
    :meth:`best_first` are stable.  Dedup key: (original, replacement) —
    re-adding keeps the *higher* weight, so specific generators can refine
    weights produced by generic ones.
    """

    def __init__(self, rules: Iterable[RelaxationRule] = ()):
        self._rules: dict[tuple, RelaxationRule] = {}
        for rule in rules:
            self.add(rule)

    @staticmethod
    def _key(rule: RelaxationRule) -> tuple:
        return (rule.original, rule.replacement)

    def add(self, rule: RelaxationRule) -> bool:
        """Add ``rule``; returns True when it was new or improved a weight."""
        key = self._key(rule)
        existing = self._rules.get(key)
        if existing is None:
            self._rules[key] = rule
            return True
        if rule.weight > existing.weight:
            self._rules[key] = rule
            return True
        return False

    def extend(self, rules: Iterable[RelaxationRule]) -> int:
        """Add many rules; returns how many were new or improved."""
        return sum(1 for rule in rules if self.add(rule))

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[RelaxationRule]:
        return iter(self._rules.values())

    def __contains__(self, rule: RelaxationRule) -> bool:
        return self._key(rule) in self._rules

    def best_first(self) -> list[RelaxationRule]:
        """Rules by descending weight (ties: insertion order)."""
        return sorted(self._rules.values(), key=lambda r: -r.weight)

    def filtered(self, min_weight: float) -> "RuleSet":
        """A new RuleSet keeping only rules with weight >= ``min_weight``."""
        return RuleSet(r for r in self if r.weight >= min_weight)

    def single_pattern_rules(self) -> list[RelaxationRule]:
        """Rules eligible for pattern-level incremental merging."""
        return [r for r in self if r.is_single_pattern]

    def multi_pattern_rules(self) -> list[RelaxationRule]:
        """Rules applied at the query-rewriting level."""
        return [r for r in self if not r.is_single_pattern]

    def by_origin(self, origin: str) -> list[RelaxationRule]:
        return [r for r in self if r.origin == origin]
