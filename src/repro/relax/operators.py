"""The pluggable relaxation-operator API.

The paper: "TriniT has an API for relaxation operators, which administrators
and advanced users can use to plug in their code for generating relaxation
rules and their weights."  An operator is any callable taking the storage
context and returning an iterable of :class:`RelaxationRule`.  Operators are
registered (optionally via the :func:`operator` decorator) in an
:class:`OperatorRegistry`; the engine runs every enabled operator at setup
time and pools the rules into one :class:`RuleSet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Protocol

from repro.errors import OperatorError
from repro.relax.rules import RelaxationRule, RuleSet
from repro.storage.statistics import StoreStatistics
from repro.storage.store import TripleStore


@dataclass
class OperatorContext:
    """Everything a rule generator may consult.

    Attributes
    ----------
    store:
        The frozen XKG triple store.
    statistics:
        Pre-computed :class:`StoreStatistics` over the store.
    params:
        Free-form configuration for the operator (thresholds, caps...).
    """

    store: TripleStore
    statistics: StoreStatistics
    params: dict = field(default_factory=dict)


class RelaxationOperator(Protocol):
    """An operator: context in, rules out."""

    def __call__(self, context: OperatorContext) -> Iterable[RelaxationRule]: ...


@dataclass
class _Registration:
    name: str
    func: RelaxationOperator
    enabled: bool = True
    description: str = ""


class OperatorRegistry:
    """Named registry of relaxation operators with enable/disable switches."""

    def __init__(self):
        self._operators: dict[str, _Registration] = {}

    def register(
        self,
        name: str,
        func: RelaxationOperator,
        *,
        enabled: bool = True,
        description: str = "",
    ) -> None:
        """Register ``func`` under ``name``; names must be unique."""
        if not name:
            raise OperatorError("Operator name must be non-empty")
        if name in self._operators:
            raise OperatorError(f"Operator already registered: {name!r}")
        if not callable(func):
            raise OperatorError(f"Operator {name!r} is not callable")
        self._operators[name] = _Registration(
            name, func, enabled, description or (func.__doc__ or "").strip()
        )

    def unregister(self, name: str) -> None:
        if name not in self._operators:
            raise OperatorError(f"No such operator: {name!r}")
        del self._operators[name]

    def enable(self, name: str, enabled: bool = True) -> None:
        if name not in self._operators:
            raise OperatorError(f"No such operator: {name!r}")
        self._operators[name].enabled = enabled

    def names(self) -> list[str]:
        return list(self._operators)

    def enabled_names(self) -> list[str]:
        return [n for n, reg in self._operators.items() if reg.enabled]

    def describe(self) -> list[tuple[str, bool, str]]:
        """(name, enabled, description) for every registered operator."""
        return [
            (reg.name, reg.enabled, reg.description)
            for reg in self._operators.values()
        ]

    def __len__(self) -> int:
        return len(self._operators)

    def __contains__(self, name: str) -> bool:
        return name in self._operators

    def run(self, context: OperatorContext, into: RuleSet | None = None) -> RuleSet:
        """Run every enabled operator; pool the rules (dedup keeps max weight).

        A misbehaving operator (returning non-rules) raises
        :class:`OperatorError` naming the operator, so plug-in authors get a
        precise failure.
        """
        rules = into if into is not None else RuleSet()
        for reg in self._operators.values():
            if not reg.enabled:
                continue
            produced = reg.func(context)
            if produced is None:
                continue
            for item in produced:
                if not isinstance(item, RelaxationRule):
                    raise OperatorError(
                        f"Operator {reg.name!r} produced a "
                        f"{type(item).__name__}, expected RelaxationRule"
                    )
                rules.add(item)
        return rules


def operator(
    registry: OperatorRegistry, name: str, *, enabled: bool = True, description: str = ""
) -> Callable[[RelaxationOperator], RelaxationOperator]:
    """Decorator form of :meth:`OperatorRegistry.register`.

    >>> registry = OperatorRegistry()
    >>> @operator(registry, "noop")
    ... def no_rules(context):
    ...     return []
    >>> "noop" in registry
    True
    """

    def decorate(func: RelaxationOperator) -> RelaxationOperator:
        registry.register(name, func, enabled=enabled, description=description)
        return func

    return decorate
