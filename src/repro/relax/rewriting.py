"""Bounded enumeration of weighted query rewritings.

A derivation is a sequence of rule applications; its weight is the product of
the applied rules' weights.  The space of rewritings grows exponentially, so
the :class:`RewriteEngine` enumerates best-first (highest weight first) under
three budgets: maximum derivation depth, maximum number of rewritings, and a
minimum weight.  Deduplication is by the *canonical form* of the rewritten
query (its pattern multiset modulo variable renaming), keeping the
highest-weight derivation — which implements the paper's "the score of an
answer is the maximal one obtained through any sequence of relaxations" at
the rewriting level.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.query import Query
from repro.core.terms import Variable
from repro.core.triples import TriplePattern
from repro.relax.rules import RelaxationRule, RuleApplication, RuleSet


@dataclass(frozen=True)
class RewrittenQuery:
    """A query rewriting with its derivation and cumulative weight."""

    query: Query
    weight: float
    applications: tuple[RuleApplication, ...] = ()

    @property
    def depth(self) -> int:
        return len(self.applications)

    @property
    def is_original(self) -> bool:
        return not self.applications

    def describe(self) -> str:
        if self.is_original:
            return f"original query (w=1)"
        steps = "; ".join(app.describe() for app in self.applications)
        return f"w={self.weight:.3f}: {steps}"


def canonical_form(query: Query) -> tuple:
    """A rewriting-dedup key: patterns with variables renamed canonically.

    Variables are numbered in order of first appearance across the sorted
    pattern renderings, so two rewritings differing only in fresh-variable
    names collapse to one key.
    """
    # Sort patterns by a rendering that ignores variable names, then number
    # variables by first appearance in that order.
    def skeleton(pattern: TriplePattern) -> tuple:
        return tuple(
            ("var",) if t.is_variable else (t.kind, t.lexical()) for t in pattern.terms()
        )

    ordered = sorted(query.patterns, key=skeleton)
    numbering: dict[Variable, int] = {}
    key_parts: list[tuple] = []
    for pattern in ordered:
        part: list[tuple] = []
        for term in pattern.terms():
            if isinstance(term, Variable):
                index = numbering.setdefault(term, len(numbering))
                part.append(("var", index))
            else:
                part.append((term.kind, term.lexical()))
        key_parts.append(tuple(part))
    return tuple(sorted(key_parts))


class RewriteEngine:
    """Best-first rewrite-space enumeration under budgets.

    Parameters
    ----------
    rules:
        The rule pool.  ``rule_filter`` can restrict which rules this engine
        applies (the top-k processor uses this to route single-pattern rules
        to pattern-level incremental merging instead).
    max_depth:
        Maximum number of rule applications per derivation.
    max_rewrites:
        Maximum number of distinct rewritings returned (including the
        original query).
    min_weight:
        Rewritings lighter than this are pruned.
    """

    def __init__(
        self,
        rules: RuleSet,
        *,
        max_depth: int = 2,
        max_rewrites: int = 200,
        min_weight: float = 0.05,
        rule_filter: Callable[[RelaxationRule], bool] | None = None,
        condition_checker: Callable[[TriplePattern], bool] | None = None,
    ):
        self.rules = rules
        self.max_depth = max_depth
        self.max_rewrites = max_rewrites
        self.min_weight = min_weight
        self.rule_filter = rule_filter
        self.condition_checker = condition_checker

    def _active_rules(self) -> list[RelaxationRule]:
        active = list(self.rules.best_first())
        if self.rule_filter is not None:
            active = [r for r in active if self.rule_filter(r)]
        return active

    def rewrites(self, query: Query) -> list[RewrittenQuery]:
        """Enumerate rewritings, highest weight first.

        The original query is always first (weight 1.0).  Enumeration is
        exact best-first: a max-heap keyed by weight, so the ``max_rewrites``
        budget keeps the globally best rewritings, not an arbitrary subset.
        """
        return list(self.iter_rewrites(query))

    def iter_rewrites(self, query: Query) -> Iterator[RewrittenQuery]:
        """Lazy best-first enumeration — the top-k processor consumes this
        incrementally and stops pulling once rewriting upper bounds fall
        below the current answer threshold ("invoking a relaxation only when
        it can contribute to the top-k answers")."""
        active_rules = self._active_rules()
        counter = itertools.count()
        fresh_names = (f"fv{i}" for i in itertools.count())
        heap: list[tuple[float, int, RewrittenQuery]] = []
        root = RewrittenQuery(query, 1.0, ())
        heapq.heappush(heap, (-1.0, next(counter), root))
        emitted: set[tuple] = set()
        produced = 0
        while heap and produced < self.max_rewrites:
            neg_weight, _order, item = heapq.heappop(heap)
            weight = -neg_weight
            key = canonical_form(item.query)
            if key in emitted:
                continue
            emitted.add(key)
            yield item
            produced += 1
            if item.depth >= self.max_depth:
                continue
            for rule in active_rules:
                child_weight = weight * rule.weight
                if child_weight < self.min_weight:
                    continue  # rules are weight-sorted per rule, not combined
                for application in rule.apply(
                    item.query, fresh_names, self.condition_checker
                ):
                    child_key = canonical_form(application.query)
                    if child_key in emitted:
                        continue
                    child = RewrittenQuery(
                        application.query,
                        child_weight,
                        item.applications + (application,),
                    )
                    heapq.heappush(heap, (-child_weight, next(counter), child))
