"""ESA-style semantic relatedness between predicates.

The paper cites Explicit Semantic Analysis (Gabrilovich & Markovitch) as a
source of relatedness-based relaxation weights.  Real ESA represents a term
as a TF-IDF vector over Wikipedia concepts; here each predicate is
represented as a TF-IDF vector over the *pseudo-document* formed from its
surface words and the surface words of the entities it connects — the
distributional footprint the predicate leaves in the XKG.  Relatedness is
cosine similarity, and :func:`esa_rules` emits predicate-rewrite rules
weighted by it.

The crucial difference from arg-overlap mining: ESA can relate predicates
that share *vocabulary* even when they share no subject-object pairs at all,
so it recovers synonymy the overlap statistics miss on sparse data.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Iterable

from repro.core.terms import Term, Variable
from repro.core.triples import TriplePattern
from repro.relax.rules import ORIGIN_ESA, RelaxationRule
from repro.storage.statistics import StoreStatistics
from repro.util.text import camel_to_words, stem, tokenize_phrase

_X, _Y = Variable("x"), Variable("y")

#: Cap on how many argument entities contribute words per predicate; the
#: most frequent arguments dominate a predicate's footprint anyway.
MAX_ARG_SAMPLES = 50


def _surface_words(term: Term) -> list[str]:
    """Stemmed content words of a term's surface form."""
    if term.is_resource:
        text = camel_to_words(term.lexical())
    else:
        text = term.lexical()
    return [stem(tok) for tok in tokenize_phrase(text) if len(tok) > 1]


class EsaModel:
    """TF-IDF concept vectors for a set of keys (predicates here).

    Construction takes ``{key: bag_of_words}``; :meth:`similarity` returns
    the cosine between two keys' vectors (0.0 for unknown keys).
    """

    def __init__(self, documents: dict[Term, Counter]):
        self._vectors: dict[Term, dict[str, float]] = {}
        self._norms: dict[Term, float] = {}
        if not documents:
            return
        document_frequency: Counter = Counter()
        for bag in documents.values():
            document_frequency.update(set(bag))
        n_docs = len(documents)
        idf = {
            word: math.log((1 + n_docs) / (1 + df)) + 1.0
            for word, df in document_frequency.items()
        }
        for key, bag in documents.items():
            total = sum(bag.values())
            if total == 0:
                continue
            vector = {
                word: (count / total) * idf[word] for word, count in bag.items()
            }
            norm = math.sqrt(sum(v * v for v in vector.values()))
            if norm > 0:
                self._vectors[key] = vector
                self._norms[key] = norm

    def __contains__(self, key: Term) -> bool:
        return key in self._vectors

    def keys(self) -> list[Term]:
        return sorted(self._vectors, key=lambda t: t.sort_key())

    def similarity(self, a: Term, b: Term) -> float:
        """Cosine similarity of the two keys' vectors; 0.0 if either unknown."""
        va, vb = self._vectors.get(a), self._vectors.get(b)
        if va is None or vb is None:
            return 0.0
        if len(vb) < len(va):
            va, vb = vb, va
            na, nb = self._norms[b], self._norms[a]
        else:
            na, nb = self._norms[a], self._norms[b]
        dot = sum(weight * vb.get(word, 0.0) for word, weight in va.items())
        return dot / (na * nb)

    @classmethod
    def for_predicates(cls, statistics: StoreStatistics) -> "EsaModel":
        """Build predicate vectors from surface + argument words."""
        decode = statistics.store.dictionary.decode
        documents: dict[Term, Counter] = {}
        for predicate in statistics.predicates():
            bag: Counter = Counter()
            # The predicate's own words count triple so synonymy of the
            # phrase itself dominates over shared arguments.
            for word in _surface_words(predicate):
                bag[word] += 3
            pairs = sorted(statistics.args(predicate))[:MAX_ARG_SAMPLES]
            for s_id, o_id in pairs:
                for word in _surface_words(decode(s_id)):
                    bag[word] += 1
                for word in _surface_words(decode(o_id)):
                    bag[word] += 1
            if bag:
                documents[predicate] = bag
        return cls(documents)


def esa_rules(
    statistics: StoreStatistics,
    *,
    model: EsaModel | None = None,
    min_similarity: float = 0.35,
    max_rules_per_predicate: int = 10,
    predicates: Iterable[Term] | None = None,
) -> list[RelaxationRule]:
    """Emit ``?x p1 ?y → ?x p2 ?y`` rules weighted by ESA cosine similarity."""
    model = model if model is not None else EsaModel.for_predicates(statistics)
    sources = list(predicates) if predicates is not None else statistics.predicates()
    targets = model.keys()
    rules: list[RelaxationRule] = []
    for p1 in sources:
        if p1 not in model:
            continue
        scored: list[tuple[float, Term]] = []
        for p2 in targets:
            if p2 == p1:
                continue
            sim = model.similarity(p1, p2)
            if sim >= min_similarity:
                scored.append((sim, p2))
        scored.sort(key=lambda item: (-item[0], item[1].sort_key()))
        for sim, p2 in scored[:max_rules_per_predicate]:
            weight = min(1.0, round(sim, 4))
            if weight <= 0.0:
                continue  # a zero weight is not a rule
            rules.append(
                RelaxationRule(
                    original=(TriplePattern(_X, p1, _Y),),
                    replacement=(TriplePattern(_X, p2, _Y),),
                    weight=weight,
                    origin=ORIGIN_ESA,
                    label=f"esa cos={sim:.2f}",
                )
            )
    return rules
