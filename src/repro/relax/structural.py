"""Structural relaxation rules: inversions, granularity repair, KG↔token bridges.

These are the rules of Figure 4 that are not plain predicate synonymy:

* rule 2 — *predicate inversion*: ``?x hasAdvisor ?y → ?y hasStudent ?x``;
  detected from data when ``args(p)`` flipped coincides with ``args(q)``.
* rule 1 — *granularity repair*: ``?x bornIn ?y ; ?y type country →
  ?x bornIn ?z ; ?z type city ; ?z locatedIn ?y``; generated for predicates
  whose objects are fine-grained instances contained in coarse-grained ones.
* rules 3/4 — *KG→token bridges* are produced by the miners in
  :mod:`repro.relax.mining`; :func:`kg_to_token_bridge_rules` is a
  convenience wrapper restricting them to (KG predicate → token phrase).
"""

from __future__ import annotations

from repro.core.terms import Resource, Term, Variable
from repro.core.triples import TriplePattern
from repro.relax.mining import mine_arg_overlap_rules, mine_chain_expansion_rules
from repro.relax.rules import ORIGIN_STRUCTURAL, RelaxationRule
from repro.storage.statistics import StoreStatistics

_X, _Y, _Z = Variable("x"), Variable("y"), Variable("z")


def inversion_rules(
    statistics: StoreStatistics,
    *,
    min_support: int = 2,
    min_weight: float = 0.5,
) -> list[RelaxationRule]:
    """Detect inverse predicate pairs and emit inversion rules.

    For predicates p, q the candidate weight is
    ``|args(p) ∩ inv(args(q))| / |args(q)|`` — the fraction of q-pairs
    explained as flipped p-pairs.  True inverses in a consistent KG score
    1.0, which matches the weight of Figure 4 rule 2.
    """
    rules: list[RelaxationRule] = []
    predicates = statistics.predicates()
    inverted_cache = {q: statistics.args_inverted(q) for q in predicates}
    for p in predicates:
        p_args = statistics.args(p)
        if not p_args:
            continue
        for q in predicates:
            if q == p:
                continue
            q_inv = inverted_cache[q]
            if not q_inv:
                continue
            support = len(p_args & q_inv)
            if support < min_support:
                continue
            weight = support / len(q_inv)
            if weight < min_weight:
                continue
            rules.append(
                RelaxationRule(
                    original=(TriplePattern(_X, p, _Y),),
                    replacement=(TriplePattern(_Y, q, _X),),
                    weight=min(1.0, weight),
                    origin=ORIGIN_STRUCTURAL,
                    label=f"inversion support={support}",
                )
            )
    rules.sort(key=lambda r: (-r.weight, r.n3()))
    return rules


def granularity_rules(
    statistics: StoreStatistics,
    *,
    type_predicate: Term,
    containment_predicate: Term,
    fine_class: Term,
    coarse_class: Term,
    min_fine_fraction: float = 0.3,
    weight: float = 1.0,
) -> list[RelaxationRule]:
    """Emit Figure-4-rule-1-style granularity repairs.

    For every predicate ``p`` whose objects are predominantly instances of
    ``fine_class`` (e.g. city) while a user might constrain them to
    ``coarse_class`` (e.g. country), generate::

        ?x p ?y ; ?y type coarse  →  ?x p ?z ; ?z type fine ; ?z containment ?y

    The weight defaults to 1.0 — the rewrite is semantically exact whenever
    the containment predicate is transitive over the two classes, which is
    how the paper assigns rule 1 its weight.

    ``min_fine_fraction`` guards against generating the rule for predicates
    that rarely point at fine-class instances at all.
    """
    store = statistics.store
    fine_instances = {
        store.dictionary.require_id(entity)
        for entity in statistics.type_instances(fine_class, type_predicate)
    }
    if not fine_instances:
        return []
    rules: list[RelaxationRule] = []
    skip = {type_predicate, containment_predicate}
    for p in statistics.predicates():
        if p in skip:
            continue
        pairs = statistics.args(p)
        if not pairs:
            continue
        fine_objects = sum(1 for _s, o in pairs if o in fine_instances)
        if fine_objects / len(pairs) < min_fine_fraction:
            continue
        rules.append(
            RelaxationRule(
                original=(
                    TriplePattern(_X, p, _Y),
                    TriplePattern(_Y, type_predicate, coarse_class),
                ),
                replacement=(
                    TriplePattern(_X, p, _Z),
                    TriplePattern(_Z, type_predicate, fine_class),
                    TriplePattern(_Z, containment_predicate, _Y),
                ),
                weight=weight,
                origin=ORIGIN_STRUCTURAL,
                label=(
                    f"granularity {fine_class.lexical()}"
                    f"→{coarse_class.lexical()}"
                ),
            )
        )
    rules.sort(key=lambda r: r.n3())
    return rules


def kg_to_token_bridge_rules(
    statistics: StoreStatistics,
    *,
    min_support: int = 2,
    min_weight: float = 0.15,
    max_rules_per_predicate: int = 10,
) -> list[RelaxationRule]:
    """Mine rules that move query processing from the KG into the XKG.

    Combines (a) predicate rewrites whose target is a token phrase (Figure 4
    rule 4: ``affiliation → 'lectured at'``) and (b) chain expansions whose
    hop is a token phrase (rule 3: ``affiliation → affiliation ∘ 'housed
    in'``).  Sources are restricted to canonical (resource) predicates and
    targets to token predicates.
    """
    kg_predicates = [p for p in statistics.predicates() if isinstance(p, Resource)]
    token_predicates = [p for p in statistics.predicates() if p.is_token]
    if not kg_predicates or not token_predicates:
        return []

    rewrites = mine_arg_overlap_rules(
        statistics,
        min_support=min_support,
        min_weight=min_weight,
        max_rules_per_predicate=max_rules_per_predicate,
        predicates=kg_predicates,
    )
    rewrites = [
        r
        for r in rewrites
        if any(term.is_token for pat in r.replacement for term in pat.terms())
    ]
    chains = mine_chain_expansion_rules(
        statistics,
        source_predicates=kg_predicates,
        hop_predicates=token_predicates,
        min_support=min_support,
        min_weight=min_weight,
        max_rules_per_predicate=max_rules_per_predicate,
    )
    return rewrites + chains
