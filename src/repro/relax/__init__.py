"""Query relaxation: rules, rule generators, and rewrite-space enumeration.

A relaxation rule replaces a set of triple patterns in a query with another
set, attenuating answer scores by its weight w ∈ [0, 1] (Section 3 of the
paper).  This package provides:

* :mod:`rules` — the rule model and :class:`RuleSet` container,
* :mod:`operators` — the pluggable operator API administrators use to
  register custom rule generators,
* :mod:`mining` — arg-overlap rule mining from the XKG itself,
* :mod:`structural` — predicate inversion and type/granularity rules,
* :mod:`amie` — AMIE-style horn-rule mining over the curated KG,
* :mod:`paraphrase` — rules from a paraphrase repository,
* :mod:`esa` — explicit-semantic-analysis relatedness rules,
* :mod:`rewriting` — bounded enumeration of weighted query rewritings.
"""

from repro.relax.rules import RelaxationRule, RuleApplication, RuleSet
from repro.relax.operators import RelaxationOperator, OperatorRegistry, operator
from repro.relax.rewriting import RewriteEngine, RewrittenQuery
from repro.relax.mining import mine_arg_overlap_rules
from repro.relax.structural import (
    inversion_rules,
    granularity_rules,
    kg_to_token_bridge_rules,
)
from repro.relax.amie import mine_amie_rules
from repro.relax.paraphrase import ParaphraseRepository, paraphrase_rules
from repro.relax.esa import EsaModel, esa_rules

__all__ = [
    "RelaxationRule",
    "RuleApplication",
    "RuleSet",
    "RelaxationOperator",
    "OperatorRegistry",
    "operator",
    "RewriteEngine",
    "RewrittenQuery",
    "mine_arg_overlap_rules",
    "inversion_rules",
    "granularity_rules",
    "kg_to_token_bridge_rules",
    "mine_amie_rules",
    "ParaphraseRepository",
    "paraphrase_rules",
    "EsaModel",
    "esa_rules",
]
