"""Relaxation rules from a paraphrase repository.

The paper lists "paraphrase repositories (e.g. PATTY, Biperpedia)" as a rule
source: curated collections pairing KG predicates with the textual patterns
that express them.  A :class:`ParaphraseRepository` holds scored
(predicate, phrase) alignments; :func:`paraphrase_rules` turns each alignment
into two rules — one rewriting the canonical predicate to the phrase (so KG
queries can tap XKG evidence), one rewriting the phrase to the predicate (so
token queries can tap curated facts).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import TriplePattern
from repro.errors import RelaxationError
from repro.relax.rules import ORIGIN_PARAPHRASE, RelaxationRule

_X, _Y = Variable("x"), Variable("y")


@dataclass(frozen=True)
class Paraphrase:
    """One alignment: ``predicate`` is expressed by ``phrase`` with ``score``.

    ``inverted=True`` means the phrase expresses the predicate with flipped
    arguments ('student of' expresses hasStudent(advisor, student) as
    phrase(student, advisor)).
    """

    predicate: Resource
    phrase: TextToken
    score: float
    inverted: bool = False

    def __post_init__(self):
        if not 0.0 < self.score <= 1.0:
            raise RelaxationError(f"Paraphrase score must be in (0, 1]: {self.score}")


class ParaphraseRepository:
    """A deduplicated collection of predicate–phrase alignments."""

    def __init__(self, entries: Iterable[Paraphrase] = ()):
        self._entries: dict[tuple[str, str, bool], Paraphrase] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: Paraphrase) -> None:
        """Add an alignment; duplicates keep the higher score."""
        key = (entry.predicate.name, entry.phrase.norm, entry.inverted)
        existing = self._entries.get(key)
        if existing is None or entry.score > existing.score:
            self._entries[key] = entry

    def add_alignment(
        self,
        predicate: str,
        phrase: str,
        score: float,
        inverted: bool = False,
    ) -> None:
        """Convenience: add from plain strings."""
        self.add(Paraphrase(Resource(predicate), TextToken(phrase), score, inverted))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Paraphrase]:
        return iter(self._entries.values())

    def phrases_for(self, predicate: Resource) -> list[Paraphrase]:
        """All alignments for a predicate, best first."""
        found = [e for e in self._entries.values() if e.predicate == predicate]
        found.sort(key=lambda e: (-e.score, e.phrase.norm))
        return found

    # -- persistence ------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the repository as a JSON array."""
        payload = [
            {
                "predicate": e.predicate.name,
                "phrase": e.phrase.norm,
                "score": e.score,
                "inverted": e.inverted,
            }
            for e in sorted(
                self._entries.values(),
                key=lambda e: (e.predicate.name, e.phrase.norm, e.inverted),
            )
        ]
        Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "ParaphraseRepository":
        """Load a repository saved by :meth:`save`."""
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        repo = cls()
        for item in raw:
            repo.add_alignment(
                item["predicate"],
                item["phrase"],
                float(item["score"]),
                bool(item.get("inverted", False)),
            )
        return repo


def paraphrase_rules(
    repository: ParaphraseRepository,
    *,
    min_score: float = 0.0,
    both_directions: bool = True,
) -> list[RelaxationRule]:
    """Turn repository alignments into relaxation rules.

    Each alignment yields ``?x pred ?y → ?x 'phrase' ?y`` (weight = score)
    and, when ``both_directions``, the reverse rule as well.  Inverted
    alignments flip the replacement's argument order.
    """
    rules: list[RelaxationRule] = []
    for entry in sorted(
        repository, key=lambda e: (e.predicate.name, e.phrase.norm, e.inverted)
    ):
        if entry.score < min_score:
            continue
        pred_pattern = TriplePattern(_X, entry.predicate, _Y)
        if entry.inverted:
            phrase_pattern = TriplePattern(_Y, entry.phrase, _X)
        else:
            phrase_pattern = TriplePattern(_X, entry.phrase, _Y)
        label = f"paraphrase {entry.predicate.name}≈'{entry.phrase.norm}'"
        rules.append(
            RelaxationRule(
                original=(pred_pattern,),
                replacement=(phrase_pattern,),
                weight=entry.score,
                origin=ORIGIN_PARAPHRASE,
                label=label,
            )
        )
        if both_directions:
            rules.append(
                RelaxationRule(
                    original=(phrase_pattern,),
                    replacement=(pred_pattern,),
                    weight=entry.score,
                    origin=ORIGIN_PARAPHRASE,
                    label=label,
                )
            )
    return rules


def predicate_alias_rules(
    aliases: Iterable[tuple[str, str, float, bool]],
) -> list[RelaxationRule]:
    """Rules translating user-vocabulary predicates into the KG's.

    Paraphrase repositories like PATTY and Biperpedia also record *predicate
    aliases* — names users plausibly guess for a relation (``hasAdvisor``,
    ``worksFor``) aligned with the canonical predicate, possibly with
    flipped arguments.  Each alias is ``(user_name, target, score,
    inverted)`` where ``target`` is a resource name or a quoted ``'phrase'``;
    Figure 4 rule 2 (``?x hasAdvisor ?y → ?y hasStudent ?x @ 1.0``) is an
    alias of this shape.

    >>> rules = predicate_alias_rules([("hasAdvisor", "hasStudent", 1.0, True)])
    >>> print(rules[0].n3())
    ?x hasAdvisor ?y => ?y hasStudent ?x @ 1
    """
    from repro.core.terms import term_from_text

    rules: list[RelaxationRule] = []
    for user_name, target, score, inverted in aliases:
        user_pattern = TriplePattern(_X, Resource(user_name), _Y)
        target_term = term_from_text(target)
        replacement = (
            TriplePattern(_Y, target_term, _X)
            if inverted
            else TriplePattern(_X, target_term, _Y)
        )
        rules.append(
            RelaxationRule(
                original=(user_pattern,),
                replacement=(replacement,),
                weight=score,
                origin=ORIGIN_PARAPHRASE,
                label=f"alias {user_name}≈{target}",
            )
        )
    return rules
