"""Rule mining from the XKG itself.

Section 3 of the paper: "We generate a rule rewriting the XKG predicate p1 to
the XKG predicate p2 and assign it the weight
``w(p1 → p2) = |args(p1) ∩ args(p2)| / |args(p2)|``, where args(p) is the set
of subject-object pairs connected by p in the XKG."

Two mining procedures live here:

* :func:`mine_arg_overlap_rules` — the formula above, for same-direction and
  (optionally) inverted-argument predicate pairs.  This is what turns the
  redundancy between curated predicates and Open IE phrases (``affiliation``
  vs. ``'works at'``) into weighted rewrite rules.
* :func:`mine_chain_expansion_rules` — rules in the shape of Figure 4 rule 3
  (``?x affiliation ?y → ?x affiliation ?z ; ?z 'housed in' ?y``): a
  predicate is approximated by composing it with a second hop.  The weight is
  the confidence that the composed path lands on pairs the predicate itself
  connects.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.core.terms import Term, Variable
from repro.core.triples import TriplePattern
from repro.relax.rules import ORIGIN_MINED_XKG, RelaxationRule
from repro.storage.statistics import StoreStatistics

_X, _Y, _Z = Variable("x"), Variable("y"), Variable("z")


def _pattern(p: Term, s: Variable = _X, o: Variable = _Y) -> TriplePattern:
    return TriplePattern(s, p, o)


def mine_arg_overlap_rules(
    statistics: StoreStatistics,
    *,
    min_support: int = 2,
    min_weight: float = 0.1,
    max_rules_per_predicate: int = 20,
    include_inversions: bool = True,
    predicates: Iterable[Term] | None = None,
) -> list[RelaxationRule]:
    """Mine predicate-rewrite rules weighted by argument overlap.

    Parameters
    ----------
    statistics:
        Store statistics exposing ``args(p)``.
    min_support:
        Minimum ``|args(p1) ∩ args(p2)|`` for a rule to be emitted.
        Singleton overlaps are almost always coincidence.
    min_weight:
        Minimum rule weight.
    max_rules_per_predicate:
        Per-p1 cap, keeping the highest-weight rules (deterministic ties).
    include_inversions:
        Also test flipped argument order, emitting ``?x p1 ?y → ?y p2 ?x``
        rules (Figure 4 rule 2 is of this shape).
    predicates:
        Restrict p1 to these predicates (default: all store predicates).

    Returns rules sorted by (p1, descending weight) — deterministic.
    """
    all_predicates = statistics.predicates()
    sources = list(predicates) if predicates is not None else all_predicates

    # Invert args: pair -> predicates connecting it.  This turns the naive
    # O(P^2) pair-set intersections into sparse co-occurrence counting.
    pair_to_preds: dict[tuple[int, int], list[Term]] = defaultdict(list)
    args_cache: dict[Term, frozenset[tuple[int, int]]] = {}
    for pred in all_predicates:
        pairs = statistics.args(pred)
        args_cache[pred] = pairs
        for pair in pairs:
            pair_to_preds[pair].append(pred)

    rules: list[RelaxationRule] = []
    for p1 in sources:
        p1_args = args_cache.get(p1, statistics.args(p1))
        if not p1_args:
            continue
        overlap: dict[Term, int] = defaultdict(int)
        overlap_inv: dict[Term, int] = defaultdict(int)
        for s, o in p1_args:
            for p2 in pair_to_preds.get((s, o), ()):
                if p2 != p1:
                    overlap[p2] += 1
            if include_inversions:
                for p2 in pair_to_preds.get((o, s), ()):
                    if p2 != p1:
                        overlap_inv[p2] += 1

        candidates: list[tuple[float, int, Term, bool]] = []
        for p2, support in overlap.items():
            if support < min_support:
                continue
            weight = support / len(args_cache[p2])
            if weight >= min_weight:
                candidates.append((weight, support, p2, False))
        for p2, support in overlap_inv.items():
            if support < min_support:
                continue
            weight = support / len(args_cache[p2])
            if weight >= min_weight:
                candidates.append((weight, support, p2, True))

        candidates.sort(key=lambda c: (-c[0], -c[1], c[2].sort_key(), c[3]))
        for weight, support, p2, inverted in candidates[:max_rules_per_predicate]:
            replacement = (
                _pattern(p2, _Y, _X) if inverted else _pattern(p2, _X, _Y)
            )
            rules.append(
                RelaxationRule(
                    original=(_pattern(p1),),
                    replacement=(replacement,),
                    weight=min(1.0, weight),
                    origin=ORIGIN_MINED_XKG,
                    label=f"arg-overlap support={support}"
                    + (" inverted" if inverted else ""),
                )
            )
    return rules


def mine_chain_expansion_rules(
    statistics: StoreStatistics,
    *,
    source_predicates: Iterable[Term] | None = None,
    hop_predicates: Iterable[Term] | None = None,
    min_support: int = 2,
    min_weight: float = 0.15,
    max_rules_per_predicate: int = 10,
    max_compose_size: int = 200_000,
) -> list[RelaxationRule]:
    """Mine ``?x p ?y → ?x p ?z ; ?z q ?y`` chain-expansion rules.

    For each source predicate ``p`` and hop predicate ``q``, the composition
    ``p∘q = {(x, y) : ∃z  p(x, z) ∧ q(z, y)}`` is computed; the rule weight is
    the confidence ``|p∘q ∩ args(p)| / |p∘q|`` that the two-hop path lands on
    pairs ``p`` itself connects.  This is how Figure 4 rule 3
    (affiliation → affiliation ∘ 'housed in') arises from data in which
    organisations are affiliated with institutes housed in universities.

    ``max_compose_size`` aborts pathological compositions (hub nodes) before
    they blow up quadratically.
    """
    store = statistics.store
    dictionary = store.dictionary
    all_predicates = statistics.predicates()
    sources = list(source_predicates) if source_predicates is not None else all_predicates
    hops = list(hop_predicates) if hop_predicates is not None else all_predicates

    # q's adjacency: subject id -> set of object ids.
    hop_adjacency: dict[Term, dict[int, set[int]]] = {}
    for q in hops:
        adjacency: dict[int, set[int]] = defaultdict(set)
        for s, o in statistics.args(q):
            adjacency[s].add(o)
        hop_adjacency[q] = adjacency

    rules: list[RelaxationRule] = []
    for p in sources:
        p_args = statistics.args(p)
        if not p_args:
            continue
        p_pairs = set(p_args)
        candidates: list[tuple[float, int, Term]] = []
        for q in hops:
            if q == p:
                continue
            adjacency = hop_adjacency[q]
            composed: set[tuple[int, int]] = set()
            overflow = False
            for x, z in p_args:
                for y in adjacency.get(z, ()):
                    composed.add((x, y))
                    if len(composed) > max_compose_size:
                        overflow = True
                        break
                if overflow:
                    break
            if overflow or not composed:
                continue
            support = len(composed & p_pairs)
            # Smoothed confidence: pure overlap underestimates weight when
            # the KG is incomplete (the whole reason relaxation exists), so
            # one pseudo-count is granted to the overlap.
            weight = (support + 1) / (len(composed) + 2)
            if support >= min_support and weight >= min_weight:
                candidates.append((weight, support, q))
        candidates.sort(key=lambda c: (-c[0], -c[1], c[2].sort_key()))
        for weight, support, q in candidates[:max_rules_per_predicate]:
            rules.append(
                RelaxationRule(
                    original=(_pattern(p, _X, _Y),),
                    replacement=(
                        _pattern(p, _X, _Z),
                        _pattern(q, _Z, _Y),
                    ),
                    weight=min(1.0, weight),
                    origin=ORIGIN_MINED_XKG,
                    label=f"chain-expansion support={support}",
                )
            )
    return rules
