"""tab-xkg-scale — Section 5's corpus statistics, scaled down.

"Our XKG consists of a total of 440 million distinct triples: about 50
million from Yago2s, our KG, and 390 million from the extractions from
ClueWeb."  — a 1:7.8 KG:extension ratio.

At laptop scale the corpus is ~1000× smaller; the *structure* to reproduce
is (a) the extension dwarfing the curated KG is corpus-size dependent — we
report the measured ratio per profile, (b) entity linking canonicalises a
large share of arguments, (c) extraction provenance/confidence populate
every extension triple.  Times the full XKG build on the small profile.
"""

from conftest import print_artifact

from repro.xkg.builder import XkgBuilder


def test_xkg_scale_table(benchmark, small_harness, medium_harness):
    kg_triples = small_harness.kg.triples
    documents = small_harness.documents
    linker = small_harness.linker

    def build():
        return XkgBuilder(linker=linker).build(kg_triples, documents)

    _store, _report = benchmark.pedantic(build, rounds=3, iterations=1)

    rows = [
        "profile  KG triples  extension  total    ratio   docs   linked-args",
        "-------  ----------  ---------  -----    -----   ----   -----------",
    ]
    for name, harness in (("small", small_harness), ("medium", medium_harness)):
        report = harness.xkg_report
        linked_share = report.arguments_linked / max(
            1, report.arguments_linked + report.arguments_unlinked
        )
        rows.append(
            f"{name:<7}  {report.kg_triples:>10}  {report.extension_triples:>9}  "
            f"{report.distinct_triples:>6}   1:{report.extension_ratio:.1f}  "
            f"{report.documents:>5}   {linked_share:.0%}"
        )
    rows.append("")
    rows.append("paper    50,000,000  390,000,000  440M   1:7.8   ClueWeb'09")
    print_artifact("Table (tab-xkg-scale): XKG composition", "\n".join(rows))

    for harness in (small_harness, medium_harness):
        report = harness.xkg_report
        assert report.extension_ratio > 1.0  # extensions dominate the KG
        assert report.arguments_linked > report.arguments_unlinked
