"""fig2 — Figure 2: the four user scenarios.

Regenerates the motivating table: each user's information need, their query
attempt, what strict KG evaluation returns (nothing), and what TriniT
returns.  Times the full four-query TriniT workload.
"""

from conftest import print_artifact

USERS = [
    ("A", "Who was born in Germany?", "?x bornIn Germany"),
    ("B", "Who was the advisor of Albert Einstein?", "AlbertEinstein hasAdvisor ?x"),
    (
        "C",
        "Ivy League university Einstein was affiliated with.",
        "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague",
    ),
    (
        "D",
        "What did Albert Einstein win a Nobel prize for?",
        "AlbertEinstein 'won nobel for' ?x",
    ),
]


def test_fig2_user_queries(benchmark, paper):
    strict = paper.variant(
        use_relaxation=False,
        use_token_expansion=False,
        unknown_resource_fallback=False,
    )

    def run_all():
        return [paper.ask(query, k=3) for _u, _need, query in USERS]

    results = benchmark(run_all)

    rows = ["user  strict-KG  TriniT answer (score)"]
    rows.append("----  ---------  ----------------------")
    for (user, _need, query), answers in zip(USERS, results):
        strict_answers = strict.ask(query, k=3)
        strict_cell = "(empty)" if strict_answers.is_empty else "answers"
        top = answers.top()
        trinit_cell = (
            f"{top.value(answers.query.projection[0].name).n3()} "
            f"({top.score:.3f})"
            if top
            else "(empty)"
        )
        rows.append(f"{user:<4}  {strict_cell:<9}  {trinit_cell}")
    print_artifact(
        "Figure 2: Questions and queries — strict KG vs TriniT", "\n".join(rows)
    )

    # The paper's claim: all four fail strictly (D is inexpressible on the
    # KG), all four are answered by TriniT.
    for (_u, _need, query), answers in zip(USERS[:3], results[:3]):
        assert strict.ask(query, k=3).is_empty
    for answers in results:
        assert not answers.is_empty
