"""tab-suggest — Section 5's query suggestion, quantified.

"When TriniT determines that matches for these tokens have a significant
overlap with matches for highly related KG resources, these resources are
suggested to the user for use in future queries."

Protocol: for each KG predicate that has token paraphrases in the corpus
(worksAt → 'works at'/'is affiliated with', ...), issue a query using the
*phrase*, collect suggestions, and check whether the canonical predicate is
suggested (and at which rank).  Reports suggestion precision@1 and hit rate.
"""

from conftest import print_artifact

from repro.core.parser import parse_query

#: (query phrase, canonical KG predicate expected as a suggestion)
PROBES = [
    ("works at", "affiliation"),
    ("is affiliated with", "affiliation"),
    ("was employed by", "affiliation"),
    ("graduated from", "graduatedFrom"),
    ("studied at", "graduatedFrom"),
    ("was born in", "bornIn"),
    ("died in", "diedIn"),
    ("is located in", "locatedIn"),
    ("married", "marriedTo"),
    ("is a member of", "member"),
]


def test_suggestion_quality_table(benchmark, small_harness):
    suggester = small_harness.engine.suggester

    def suggest_all():
        results = []
        for phrase, _expected in PROBES:
            query = parse_query(f"?x '{phrase}' ?y")
            results.append(suggester.resource_suggestions(query))
        return results

    all_suggestions = benchmark(suggest_all)

    rows = ["token phrase             expected        rank  top suggestion"]
    rows.append("------------             --------        ----  --------------")
    hits_at_1 = hits = 0
    for (phrase, expected), suggestions in zip(PROBES, all_suggestions):
        replacements = [s.replacement for s in suggestions]
        rank = replacements.index(expected) + 1 if expected in replacements else 0
        if rank == 1:
            hits_at_1 += 1
        if rank:
            hits += 1
        top = replacements[0] if replacements else "(none)"
        rows.append(
            f"'{phrase}'".ljust(25)
            + f"{expected:<15} {rank or '-':<5} {top}"
        )
    rows.append("")
    rows.append(
        f"hit rate: {hits}/{len(PROBES)}   precision@1: {hits_at_1}/{len(PROBES)}"
    )
    print_artifact(
        "Table (tab-suggest): token→resource suggestion quality", "\n".join(rows)
    )

    assert hits >= 0.7 * len(PROBES)
    assert hits_at_1 >= 0.5 * len(PROBES)
