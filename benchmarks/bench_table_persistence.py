"""tab-persistence — binary snapshot + sharded backend vs JSONL re-ingestion.

The paper served its XKG from a sharded ElasticSearch index; the persistence
PR gives the reproduction the same two properties behind the
StorageBackend seam:

* **snapshot**: the frozen columnar arrays written as one binary file and
  mmap-loaded back — no JSON parsing, no re-ingestion, no freeze-time
  re-sort, byte-identical postings and bit-exact weights; and
* **sharded**: triples hash-partitioned across columnar segments whose
  score-sorted postings are lazily k-way merged, with the id-space
  execution core unchanged.

This bench measures both on the scale-bench (medium-profile) KG:

1. store-load wall clock: JSONL reload vs snapshot mmap-load (the
   acceptance bar is a measurable speedup, SNAPSHOT_SPEEDUP_FLOOR, relaxed
   on noisy CI runners), verifying byte-identical postings and identical
   top-k answers after either load; and
2. top-k query latency over the same data on a single-segment (columnar)
   vs a partitioned (sharded) store, verifying identical answer sets.
"""

import os
import time

from conftest import print_artifact

from repro.core.parser import parse_query
from repro.storage.persistence import load_store, save_store
from repro.storage.snapshot import load_snapshot, save_snapshot
from repro.topk.processor import TopKProcessor


def _workload(harness):
    world = harness.world
    queries = [
        parse_query("?x affiliation ?y"),
        parse_query("?p 'works at' ?u . ?u locatedIn ?c"),
        parse_query("?p affiliation ?u . ?u locatedIn ?c"),
        parse_query(f"?x affiliation {world.universities[0].id}"),
    ]
    for person in world.people[:3]:
        queries.append(parse_query(f"{person.id} affiliation ?x"))
    return queries


def _fingerprint(answers):
    return [
        (
            answer.binding,
            answer.score,
            answer.num_derivations,
            tuple(record.triple.n3() for record in answer.derivation.triples_used()),
        )
        for answer in answers
    ]


def _best_of(action, reps=3):
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best


def test_persistence_table(medium_harness, tmp_path):
    store = medium_harness.xkg_store
    assert store.backend_name == "columnar"
    jsonl_path = tmp_path / "xkg.jsonl"
    snap_path = tmp_path / "xkg.snap"

    t_save_jsonl = _best_of(lambda: save_store(store, jsonl_path), reps=1)
    t_save_snap = _best_of(lambda: save_snapshot(store, snap_path), reps=1)
    t_load_jsonl = _best_of(lambda: load_store(jsonl_path))
    t_load_snap = _best_of(lambda: load_snapshot(snap_path))

    # Fidelity: the mmap-loaded snapshot store must be byte-identical on
    # postings and bit-exact on weights; the JSONL reload (now persisting
    # exact confidences) must agree on weights too.
    reloaded = load_store(jsonl_path)
    snapshotted = load_store(snap_path)  # format-sniffed -> mmap load
    assert list(reloaded.weights()) == list(store.weights())
    assert list(snapshotted.weights()) == list(store.weights())
    probe = parse_query("?x affiliation ?y").patterns[0]
    assert bytes(snapshotted.sorted_ids(probe)) == bytes(store.sorted_ids(probe))

    queries = _workload(medium_harness)
    rules = medium_harness.engine.rules
    processors = {
        "original": TopKProcessor(store, rules=rules),
        "jsonl-reload": TopKProcessor(reloaded, rules=rules),
        "snapshot-load": TopKProcessor(snapshotted, rules=rules),
        "sharded": TopKProcessor(store.convert("sharded"), rules=rules),
    }
    for query in queries:
        reference = _fingerprint(processors["original"].query(query, 10))
        for name, processor in processors.items():
            assert _fingerprint(processor.query(query, 10)) == reference, (
                name,
                query,
            )

    def latency(processor, k=10):
        return _best_of(
            lambda: [processor.query(query, k) for query in queries]
        )

    t_columnar = latency(processors["original"])
    t_sharded = latency(processors["sharded"])

    load_speedup = t_load_jsonl / t_load_snap if t_load_snap > 0 else float("inf")
    size_jsonl = jsonl_path.stat().st_size
    size_snap = snap_path.stat().st_size
    rows = [
        f"store: {len(store)} triples (medium scale-bench profile)",
        "",
        "operation            jsonl(ms)   snapshot(ms)",
        "------------------   ---------   ------------",
        f"save                 {t_save_jsonl * 1000:>9.1f}   {t_save_snap * 1000:>12.1f}",
        f"load                 {t_load_jsonl * 1000:>9.1f}   {t_load_snap * 1000:>12.1f}",
        f"file size (KiB)      {size_jsonl / 1024:>9.1f}   {size_snap / 1024:>12.1f}",
        "",
        f"snapshot load speedup vs JSONL reload: {load_speedup:.1f}x",
        "",
        "query latency (k=10, workload of "
        f"{len(queries)} queries): columnar {t_columnar * 1000:.1f} ms, "
        f"sharded ({processors['sharded'].store.backend.num_segments} segments) "
        f"{t_sharded * 1000:.1f} ms "
        f"({t_sharded / t_columnar:.2f}x columnar)",
        "",
        "identical answer sets verified across original, jsonl-reload,",
        "snapshot-load and sharded configurations",
    ]
    print_artifact(
        "Table (tab-persistence): snapshot mmap-load + sharded backend",
        "\n".join(rows),
    )

    # Measurably faster than re-ingestion; CI sets a looser floor because
    # shared runners have noisy clocks.
    floor = float(os.environ.get("SNAPSHOT_SPEEDUP_FLOOR", "2.0"))
    assert load_speedup >= floor, (
        f"snapshot load only {load_speedup:.2f}x faster (floor {floor}x)"
    )
