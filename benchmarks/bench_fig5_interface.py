"""fig5 — Figure 5: the query interface screen.

Regenerates the screenshot's content as a deterministic text screen: the
affiliation query with the user's two relaxation rules (Figure 4 rules 3 and
4), ranked answers, and relaxation markers.  Times query + rendering.
"""

from conftest import print_artifact

from repro.demo.interface import DemoSession
from repro.kg.paper_example import paper_engine


def test_fig5_query_interface(benchmark):
    def build_and_render():
        session = DemoSession(paper_engine(with_rules=False))
        session.add_user_rule(
            "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y @ 0.8"
        )
        session.add_user_rule("?x affiliation ?y => ?x 'lectured at' ?y @ 0.7")
        return session.render_query_screen(
            "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague",
            k=10,
        )

    screen = benchmark(build_and_render)
    print_artifact("Figure 5: TriniT query interface (text analogue)", screen)

    assert "Query Interface" in screen
    assert "housed in" in screen            # user rule shown
    assert "PrincetonUniversity" in screen  # the paper's answer
    assert "*" in screen                    # relaxation marker
