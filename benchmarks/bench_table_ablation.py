"""tab-ablation — isolating the XKG's and relaxation's contributions.

The demo paper's architecture implies two orthogonal capabilities: the XKG
extension (Section 2) and query relaxation (Section 3).  This bench runs the
70-query benchmark over TriniT variants with each capability removed:

* full TriniT,
* no relaxation (token matching only),
* no token matching (relaxation only),
* KG-only (relaxation, but no XKG data),
* strict (neither — exact matching on the XKG).

The shape to reproduce: every ablation hurts, and the two capabilities are
complementary (different classes collapse for different ablations).
"""

import pytest
from conftest import print_artifact

from repro.eval.runner import evaluate_systems


@pytest.fixture(scope="module")
def ablation_report(small_harness):
    return evaluate_systems(
        small_harness.ablation_systems(), small_harness.benchmark, k=10
    )


def test_ablation_table(benchmark, small_harness, ablation_report):
    no_relax = small_harness.ablation_systems()[1]
    queries = list(small_harness.benchmark)[:20]

    def run_variant():
        return [
            no_relax.rank(q.parse(), q.target_variable, 10) for q in queries
        ]

    benchmark(run_variant)

    body = ablation_report.render_table()
    body += "\n\nNDCG@5 per query class:\n" + ablation_report.render_class_breakdown()
    print_artifact("Table (tab-ablation): TriniT capability ablations", body)

    full = ablation_report.by_name("trinit").ndcg5
    for system in ablation_report.systems:
        if system.name != "trinit":
            assert full >= system.ndcg5 - 1e-9, system.name

    # Relaxation carries granularity/misnomer; tokens carry incomplete.
    by_class_no_relax = ablation_report.by_name(
        "trinit-no-relaxation"
    ).ndcg5_by_class()
    assert by_class_no_relax["granularity"] == 0.0
    by_class_kg_only = ablation_report.by_name("trinit-kg-only").ndcg5_by_class()
    full_by_class = ablation_report.by_name("trinit").ndcg5_by_class()
    assert full_by_class["incomplete"] > by_class_kg_only["incomplete"]
