"""bench-kernels — per-item vs block execution kernels on the hot path.

Microbenchmarks the execution kernels (:mod:`repro.topk.kernels`) against
the per-item loops they replaced, on the same columns a query actually
touches:

* **decode** — ``prepare_head_block`` (two parallel C-gathered columns)
  vs the per-head ``(-weights[g], g)`` tuple list of the old merge;
* **score** — ``score_block`` vs the scalar ``_score_weight`` loop;
* **end-to-end** — a query workload under ``block_size=1`` (per-item
  reference) vs the adaptive block default, byte-identity verified, with
  the answers/sec ratio asserted against a CI-tunable floor.

Reports blocks/sec for the kernel loops.  Acceptance: the block kernels
beat per-item by ``KERNEL_SPEEDUP_FLOOR`` (default 1.2x; the local bar is
comfortably higher, CI runners have noisy clocks).
"""

import os
import time
from array import array
from dataclasses import replace

from conftest import print_artifact

from repro.core.engine import TriniT
from repro.core.parser import parse_query
from repro.topk.kernels import prepare_head_block, score_block

N = 50_000
BLOCK = 256


def _columns():
    postings = array("i", range(N))
    globals_ = array("i", (i * 3 % N for i in range(N)))
    weights = array("d", (0.05 + (i % 97) / 100 for i in range(N)))
    return postings, globals_, weights


def _best_of(fn, reps=5):
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_kernel_microbench(benchmark):
    postings, globals_, weights = _columns()
    blocks = [(lo, min(lo + BLOCK, N)) for lo in range(0, N, BLOCK)]

    def decode_block():
        for lo, hi in blocks:
            prepare_head_block(postings, globals_, weights, lo, hi)

    def decode_per_item():
        for lo, hi in blocks:
            [
                (-weights[globals_[p]], globals_[p])
                for p in postings[lo:hi]
            ]

    # Identical output first: the kernel is only a faster spelling.
    for lo, hi in blocks[:4]:
        kw, kg = prepare_head_block(postings, globals_, weights, lo, hi)
        assert list(zip(kw, kg)) == [
            (-weights[globals_[p]], globals_[p]) for p in postings[lo:hi]
        ]

    lam, mass, cmass, multiplier = 0.2, 37.5, 512.25, 0.75
    weight_blocks = [list(weights[lo:hi]) for lo, hi in blocks]

    def scalar(w):
        foreground = w / mass if mass > 0 else 0.0
        if lam == 0.0:
            return multiplier * foreground
        background = w / cmass if cmass > 0 else 0.0
        return multiplier * ((1.0 - lam) * foreground + lam * background)

    def score_blocked():
        for ws in weight_blocks:
            score_block(ws, lam, mass, cmass, multiplier)

    def score_per_item():
        for ws in weight_blocks:
            [scalar(w) for w in ws]

    for ws in weight_blocks[:4]:
        assert score_block(ws, lam, mass, cmass, multiplier) == [
            scalar(w) for w in ws
        ]

    t_decode_block = _best_of(decode_block)
    t_decode_item = _best_of(decode_per_item)
    t_score_block = _best_of(score_blocked)
    t_score_item = _best_of(score_per_item)
    benchmark(decode_block)

    decode_speedup = t_decode_item / t_decode_block
    score_speedup = t_score_item / t_score_block
    rows = [
        "kernel  per-item(ms)  block(ms)  speedup  blocks/sec",
        "------  ------------  ---------  -------  ----------",
        f"decode  {t_decode_item * 1000:>12.2f}  {t_decode_block * 1000:>9.2f}"
        f"  {decode_speedup:>6.2f}x  {len(blocks) / t_decode_block:>10.0f}",
        f"score   {t_score_item * 1000:>12.2f}  {t_score_block * 1000:>9.2f}"
        f"  {score_speedup:>6.2f}x  {len(blocks) / t_score_block:>10.0f}",
        "",
        f"{N} postings, block={BLOCK} ({len(blocks)} blocks)",
    ]
    print_artifact(
        "Microbench (bench-kernels): per-item loops vs block kernels",
        "\n".join(rows),
    )

    floor = float(os.environ.get("KERNEL_SPEEDUP_FLOOR", "1.2"))
    assert decode_speedup >= floor, (
        f"decode: only {decode_speedup:.2f}x (floor {floor}x)"
    )
    assert score_speedup >= floor, (
        f"score: only {score_speedup:.2f}x (floor {floor}x)"
    )


def test_block_path_end_to_end(medium_harness):
    """Whole-query speedup of the block path over the per-item reference."""
    engine_block = medium_harness.engine  # adaptive block default
    per_item_config = replace(
        medium_harness.config.engine, block_size=1, merge_batch=1
    )
    engine_item = TriniT(medium_harness.xkg_store, config=per_item_config)
    engine_item.add_rules(engine_block.rules)
    queries = [
        parse_query("?x affiliation ?y"),
        parse_query("?p 'works at' ?u . ?u locatedIn ?c"),
        parse_query("?p type person . ?p affiliation ?u"),
        parse_query("?a 'works at' ?u . ?b 'works at' ?u"),
    ]

    def fingerprint(answers):
        return [(a.binding, a.score) for a in answers]

    for query in queries:
        assert fingerprint(engine_block.ask(query, k=25)) == fingerprint(
            engine_item.ask(query, k=25)
        )

    t_block = _best_of(lambda: [engine_block.ask(q, k=25) for q in queries])
    t_item = _best_of(lambda: [engine_item.ask(q, k=25) for q in queries])
    speedup = t_item / t_block
    print_artifact(
        "bench-kernels: end-to-end block path vs per-item reference",
        f"per-item {t_item * 1000:.1f} ms, block {t_block * 1000:.1f} ms "
        f"-> {speedup:.2f}x (answers byte-identical)",
    )
    floor = float(os.environ.get("KERNEL_E2E_FLOOR", "1.0"))
    assert speedup >= floor, f"only {speedup:.2f}x (floor {floor}x)"
