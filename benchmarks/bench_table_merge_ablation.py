"""tab-merge — ablation of pattern-level incremental merging.

DESIGN.md calls out the design choice: single-pattern relaxations can be
merged into per-pattern streams (the paper's incremental-merge extension of
Theobald et al.) or routed through query-level rewriting like every other
rule.  Both produce identical answers (tested continuously); this bench
measures what the merge *buys*: fewer rewritings to enumerate and process,
since a query with r relaxations per pattern and p patterns needs O(r·p)
rewritings without merging but only one join with merged streams.
"""

import time

from conftest import print_artifact

from repro.core.parser import parse_query


def _workload(harness):
    world = harness.world
    queries = [parse_query(f"{p.id} affiliation ?x") for p in world.people[:5]]
    queries.append(parse_query("?x affiliation ?y ; ?y locatedIn ?c"))
    return queries


def test_merge_ablation_table(benchmark, small_harness):
    merged = small_harness.engine  # pattern_level_merge=True (default)
    routed = small_harness.engine.variant(pattern_level_merge=False)
    queries = _workload(small_harness)

    def run_merged():
        return [merged.ask(q, k=5) for q in queries]

    benchmark(run_merged)

    rows = [
        "mode             rewritings-processed  sorted-acc  time(ms)",
        "----             --------------------  ----------  --------",
    ]
    stats = {}
    for mode, engine in (("merged", merged), ("rewrite-only", routed)):
        rewritings = accesses = 0
        started = time.perf_counter()
        for query in queries:
            answers = engine.ask(query, k=5)
            rewritings += answers.stats.rewritings_processed
            accesses += answers.stats.sorted_accesses
        elapsed = (time.perf_counter() - started) * 1000
        stats[mode] = (rewritings, accesses)
        rows.append(
            f"{mode:<16} {rewritings:>20}  {accesses:>10}  {elapsed:>8.1f}"
        )
    print_artifact(
        "Table (tab-merge): pattern-level incremental merge vs "
        "rewrite-level routing",
        "\n".join(rows),
    )

    # The merge must not process more rewritings than rewrite-only routing.
    assert stats["merged"][0] <= stats["rewrite-only"][0]

    # And answers agree (top binding and score) on every workload query.
    for query in queries:
        a = merged.ask(query, k=3)
        b = routed.ask(query, k=3)
        assert [x.binding for x in a] == [x.binding for x in b]
        for x, y in zip(a, b):
            assert abs(x.score - y.score) < 1e-9
