"""bench-stream — anytime streaming vs eager re-asking.

The paper's top-k processor is an *anytime* algorithm: answers surface in
score order long before the full top-k settles.  The session API exposes
that: ``engine.stream(q).next_k(n)`` resumes the suspended computation,
while the pre-streaming interaction pattern — "show 10 more" — had to
re-run ``ask`` with a larger k from scratch.  This bench measures, on the
small-profile XKG with mined rules:

1. **time-to-first-answer**: ``stream.next_k(1)`` vs a full eager
   ``ask(k=10)`` — how much sooner an interactive UI can paint its first
   row;
2. **pagination cost**: walking to rank 40 in pages of 10 via one resumed
   stream vs re-asking at k=10/20/30/40 — the amortized cost of "more".

The acceptance bar is on *work*, not clocks (sorted accesses are
deterministic): paginating must not exceed the re-ask sweep's accesses, and
the streamed answers must be byte-identical to the eager top-40 list.
"""

import time

from conftest import print_artifact

from repro.core.parser import parse_query


def _best_of(action, reps=5):
    best = float("inf")
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = action()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_stream_latency_table(small_harness):
    engine = small_harness.engine
    queries = [
        parse_query("?x affiliation ?y"),
        parse_query("?p 'works at' ?u"),
        parse_query("?p affiliation ?u ; ?u locatedIn ?c"),
    ]
    pages = [10, 10, 10, 10]
    total = sum(pages)

    rows = [
        f"store: {len(engine.store)} triples (small profile, mined rules)",
        "",
        "query                              first(ms)  ask10(ms)  "
        "pages(ms)  re-ask(ms)  acc-pages  acc-re-ask",
        "-" * 104,
    ]
    for query in queries:
        t_first, _ = _best_of(lambda: engine.stream(query).next_k(1))
        t_ask10, _ = _best_of(lambda: engine.ask(query, 10))

        def paginate():
            stream = engine.stream(query)
            for n in pages:
                stream.next_k(n)
            return stream

        def re_ask():
            return [engine.ask(query, k) for k in (10, 20, 30, 40)]

        t_pages, stream = _best_of(paginate)
        t_re_ask, asks = _best_of(re_ask)

        acc_pages = stream.stats.sorted_accesses
        acc_re_ask = sum(a.stats.sorted_accesses for a in asks)

        # Fidelity: the concatenated pages are the eager top-`total` list.
        eager = engine.ask(query, total)
        streamed = stream.collected().answers
        assert [(a.binding, a.score) for a in streamed] == [
            (a.binding, a.score) for a in eager.answers
        ]
        # Work bar: resuming never exceeds the re-ask sweep's accesses.
        assert acc_pages <= acc_re_ask, (query.n3(), acc_pages, acc_re_ask)

        label = query.n3()[:33]
        rows.append(
            f"{label:<33}  {t_first * 1000:>9.2f}  {t_ask10 * 1000:>9.2f}  "
            f"{t_pages * 1000:>9.2f}  {t_re_ask * 1000:>10.2f}  "
            f"{acc_pages:>9}  {acc_re_ask:>10}"
        )

    rows += [
        "",
        "first     = stream.next_k(1): time-to-first-answer",
        "pages     = one stream paged 10+10+10+10 (resumed, never recomputed)",
        "re-ask    = eager ask at k=10,20,30,40 (the pre-streaming pattern)",
        "acc-*     = cumulative sorted accesses (deterministic work measure)",
        "streamed pages verified byte-identical to the eager top-40 list",
    ]
    print_artifact(
        "Table (bench-stream): anytime streaming vs eager re-asking", "\n".join(rows)
    )


def test_stream_pagination_benchmark(benchmark, small_harness):
    """pytest-benchmark hook: one paged walk to rank 40 via a resumed stream."""
    engine = small_harness.engine
    query = parse_query("?p affiliation ?u ; ?u locatedIn ?c")

    def paginate():
        stream = engine.stream(query)
        for _ in range(4):
            stream.next_k(10)
        return len(stream)

    benchmark(paginate)
