"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one exhibit of the paper (see DESIGN.md's
experiment index).  Benches print their artifact — run with ``-s`` to see the
regenerated tables/screens — and time the core operation via
pytest-benchmark.  The expensive harness profiles are session-scoped.
"""

from __future__ import annotations

import pytest

from repro.eval.harness import EvalHarness
from repro.kg.paper_example import paper_engine


@pytest.fixture(scope="session")
def small_harness() -> EvalHarness:
    harness = EvalHarness("small")
    _ = harness.engine  # force the expensive build once
    return harness


@pytest.fixture(scope="session")
def medium_harness() -> EvalHarness:
    harness = EvalHarness("medium")
    _ = harness.xkg_store
    return harness


@pytest.fixture(scope="session")
def paper() :
    return paper_engine()


def print_artifact(title: str, body: str) -> None:
    """Uniform rendering of regenerated exhibits (visible with -s)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
