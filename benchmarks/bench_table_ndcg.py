"""tab-ndcg — the headline evaluation (Section 4's in-text numbers).

"On a challenging set of 70 entity-relationship queries, we achieve an
average NDCG at rank 5 of 0.775, with the next best state-of-the-art system
achieving 0.419."

Regenerates that comparison over the synthetic 70-query benchmark: TriniT
against the four baseline families (QaRS-style KG relaxation, SLQ-style
schemaless matching, LM entity search, strict SPARQL).  Asserts the *shape*:
TriniT in the paper's regime, a wide gap to the next-best system, and a win
in every query class.  Times TriniT's full 70-query run.
"""

import pytest
from conftest import print_artifact

from repro.eval.runner import evaluate_systems


@pytest.fixture(scope="module")
def report(small_harness):
    return evaluate_systems(
        small_harness.all_systems(), small_harness.benchmark, k=10
    )


def test_headline_ndcg_table(benchmark, small_harness, report):
    trinit = small_harness.trinit_system
    queries = list(small_harness.benchmark)

    def run_trinit_over_benchmark():
        return [
            trinit.rank(q.parse(), q.target_variable, 10) for q in queries
        ]

    benchmark(run_trinit_over_benchmark)

    body = report.render_table()
    body += "\n\nNDCG@5 per query class:\n" + report.render_class_breakdown()
    body += (
        "\n\npaper: TriniT 0.775 vs next-best 0.419 "
        f"(measured: {report.by_name('trinit').ndcg5:.3f} vs "
        f"{max(s.ndcg5 for s in report.systems if s.name != 'trinit'):.3f})"
    )
    print_artifact(
        "Table (tab-ndcg): 70 entity-relationship queries, NDCG@5", body
    )

    trinit_score = report.by_name("trinit").ndcg5
    next_best = max(s.ndcg5 for s in report.systems if s.name != "trinit")
    # Shape assertions, not absolute-number matching:
    assert trinit_score > 0.65            # paper: 0.775
    assert next_best < 0.55               # paper: 0.419
    assert trinit_score > 1.5 * next_best # the gap is wide
    by_class = report.by_name("trinit").ndcg5_by_class()
    for query_class, score in by_class.items():
        assert score > 0.0, query_class
