"""fig6 — Figure 6: the answer-explanation screen.

Regenerates the explanation for the PrincetonUniversity answer: (i) the KG
triples, (ii) the XKG triple with its extraction provenance, (iii) the
relaxation rule invoked.  Times query + explanation construction.
"""

from conftest import print_artifact

from repro.demo.interface import DemoSession


def test_fig6_answer_explanation(benchmark, paper):
    session = DemoSession(paper)
    query = "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague"

    def explain():
        answers = session.run(query)
        return session.render_explanation_screen(answers.top(), answers.query)

    screen = benchmark(explain)
    print_artifact("Figure 6: TriniT answer explanation (text analogue)", screen)

    # The three pieces of information Section 5 names:
    assert "AlbertEinstein affiliation IAS" in screen          # (i) KG
    assert "housed in" in screen and "extracted" in screen     # (ii) XKG+prov
    assert "relaxed" in screen or "pattern relax" in screen    # (iii) rules
    assert "PrincetonUniversity" in screen
