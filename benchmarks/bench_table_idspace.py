"""tab-idspace — id-space execution core vs the seed term-space path.

The refactor moved the whole hot path (cursors → incremental merge → rank
join → aggregation) onto dictionary-encoded integer ids over the columnar
storage backend, deferring Term decoding to answer materialisation.  This
bench runs a join-heavy top-k workload on the scale-bench (medium-profile)
KG twice over the *same data*:

* ``idspace``   — columnar backend + id-space execution (the default), and
* ``termspace`` — dict backend + the original Term-object cursors (the
  retained seed semantics),

verifies the answer sets are byte-identical (bindings, scores, derivation
triples and rules), and reports per-k latency.  The acceptance bar is a
>= 2x wall-clock speedup for the id-space/columnar configuration.
"""

import os
import time
from dataclasses import replace

from conftest import print_artifact

from repro.core.engine import TriniT
from repro.core.parser import parse_query


def _workload(harness):
    world = harness.world
    queries = [
        parse_query("?x affiliation ?y"),
        parse_query("?p 'works at' ?u . ?u locatedIn ?c"),
        parse_query("?p affiliation ?u . ?u locatedIn ?c"),
        parse_query("?p type person . ?p affiliation ?u"),
        parse_query(f"?x affiliation {world.universities[0].id} . ?x 'works on' ?f"),
        parse_query("?a 'works at' ?u . ?b 'works at' ?u"),
    ]
    for person in world.people[:4]:
        queries.append(parse_query(f"{person.id} affiliation ?x"))
    return queries


def _fingerprint(answers):
    """Every observable facet of an answer set, for byte-identity checks."""
    return [
        (
            answer.binding,
            answer.score,
            answer.num_derivations,
            tuple(record.triple.n3() for record in answer.derivation.triples_used()),
            tuple(rule.n3() for rule in answer.derivation.rules_used()),
        )
        for answer in answers
    ]


def _seed_termspace_engine(harness):
    """The seed configuration: dict-backend store + term-space execution."""
    config = replace(
        harness.config.engine,
        storage_backend="dict",
        processor=replace(harness.config.engine.processor, execution="termspace"),
    )
    engine = TriniT(harness.xkg_store, config=config)
    engine.add_rules(harness.engine.rules)
    return engine


def test_idspace_speedup_table(benchmark, medium_harness):
    engine_id = medium_harness.engine  # columnar + idspace defaults
    engine_term = _seed_termspace_engine(medium_harness)
    assert engine_id.store.backend_name == "columnar"
    assert engine_term.store.backend_name == "dict"
    queries = _workload(medium_harness)

    # Byte-identical answers across backends and execution cores, same run.
    for query in queries:
        for k in (1, 10, 25):
            id_answers = _fingerprint(engine_id.ask(query, k=k))
            term_answers = _fingerprint(engine_term.ask(query, k=k))
            assert id_answers == term_answers

    def run_idspace_k10():
        return [engine_id.ask(q, k=10) for q in queries]

    benchmark(run_idspace_k10)

    def best_of(engine, k, reps=3):
        best = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            for query in queries:
                engine.ask(query, k=k)
            best = min(best, time.perf_counter() - started)
        return best

    rows = [
        "k   idspace(ms)  termspace(ms)  speedup",
        "--  -----------  -------------  -------",
    ]
    speedups = {}
    for k in (10, 25, 50):
        t_id = best_of(engine_id, k)
        t_term = best_of(engine_term, k)
        speedups[k] = t_term / t_id
        rows.append(
            f"{k:<3} {t_id * 1000:>11.1f}  {t_term * 1000:>13.1f}  "
            f"{speedups[k]:>6.2f}x"
        )
    rows.append("")
    rows.append(
        f"store: {len(engine_id.store)} triples (medium scale-bench profile); "
        "identical answer sets verified above"
    )
    print_artifact(
        "Table (tab-idspace): id-space/columnar hot path vs seed term-space",
        "\n".join(rows),
    )

    # The acceptance bar is 2x on a quiet machine; CI sets a looser floor
    # (IDSPACE_SPEEDUP_FLOOR) because shared runners have noisy clocks —
    # the printed table still carries the measured ratios.
    floor = float(os.environ.get("IDSPACE_SPEEDUP_FLOOR", "2.0"))
    for k, speedup in speedups.items():
        assert speedup >= floor, f"k={k}: only {speedup:.2f}x (floor {floor}x)"
