"""fig3 — Figure 3: the sample XKG extension.

Regenerates the paper's token triples by actually running the Open IE
extractor on the sentences the paper quotes, and times extraction.
"""

from conftest import print_artifact

from repro.openie.reverb import ReverbExtractor

SENTENCES = [
    "Einstein won a Nobel for his discovery of the photoelectric effect",
    "The IAS institute is housed in Princeton University",
    "Einstein lectured at Princeton University",
    "Einstein met his teacher Prof Kleiner",
]


def test_fig3_extraction(benchmark):
    extractor = ReverbExtractor()

    def extract_all():
        return [extractor.extract(s) for s in SENTENCES]

    per_sentence = benchmark(extract_all)

    rows = ["Subject            Predicate            Object"]
    rows.append("-------            ---------            ------")
    flat = [e for extractions in per_sentence for e in extractions]
    for extraction in flat:
        rows.append(
            f"{extraction.subject:<18} '{extraction.relation}'"
            f"{'':<2} {extraction.object}  (conf {extraction.confidence:.2f})"
        )
    print_artifact(
        "Figure 3: Sample knowledge graph extension (ReVerb output)",
        "\n".join(rows),
    )

    tuples = {e.as_tuple() for e in flat}
    # The paper's headline extraction, recovered verbatim from the sentence.
    assert any(
        s == "Einstein" and "won a Nobel for" in r for s, r, _o in tuples
    )
    assert any("housed in" in r for _s, r, _o in tuples)
    assert any("lectured at" in r for _s, r, _o in tuples)
    assert any("met" in r for _s, r, _o in tuples)
