"""fig1 — Figure 1: the sample knowledge graph.

Regenerates the paper's six-triple example KG and times store construction
plus freezing (the load path every experiment depends on).
"""

from conftest import print_artifact

from repro.kg.paper_example import paper_kg
from repro.storage.store import TripleStore


def build_store():
    store = TripleStore("Figure1")
    for triple in paper_kg():
        store.add(triple)
    return store.freeze()


def test_fig1_sample_kg(benchmark):
    store = benchmark(build_store)

    assert len(store) == 6
    rows = ["Subject                Predicate    Object",
            "-------                ---------    ------"]
    for record in store.records():
        triple = record.triple
        rows.append(
            f"{triple.s.n3():<22} {triple.p.n3():<12} {triple.o.n3()}"
        )
    print_artifact("Figure 1: Sample knowledge graph", "\n".join(rows))

    rendered = {r.triple.n3() for r in store.records()}
    assert "AlbertEinstein bornIn Ulm" in rendered
    assert "PrincetonUniversity member IvyLeague" in rendered
