"""tab-traffic-replay — mixed interactive traffic, serial vs thread vs process.

The other benches measure one mechanism at a time; this one replays the
kind of traffic the paper's interactive frontend actually sees — a Zipfian
query mix (a few heavy-hitter queries, a long tail) interleaving eager
``ask`` calls, ``stream``/``next_k`` pagination and ``ask_many`` batches —
and reports *latency percentiles* and *answers/sec* for the three executor
kinds over the same v3 directory snapshot:

* **serial** — ``executor_kind="serial", merge_batch=1, block_size=1``:
  no pools, item-at-a-time posting pulls, per-item scoring (the
  byte-identical reference);
* **blocked** — the same single thread under the default adaptive config:
  block posting decode, batched scoring, and the hot-block cache
  (:mod:`repro.topk.kernels`) — the executor-free win;
* **thread** — 4 workers, adaptive merge batching: prefetch overlaps the
  consumer but every head preparation still shares the GIL;
* **process** — 4 worker processes serving posting heads from their own
  copy-on-write mappings of the segment files (the GIL escape), adaptive
  batching.

Every mode's per-operation answers are fingerprint-compared to the serial
reference — the speedup must come with byte-identical results.

``--profile large`` (or ``TRAFFIC_PROFILE=large``) additionally replays
against a generated ≥1M-triple KG snapshot instead of the medium eval
harness — production-scale posting lists instead of the test corpus.  It
is opt-in: generation plus replay takes minutes, not bench-smoke seconds.

The replay is deterministic (fixed seed), so the persisted
``BENCH_traffic.json`` at the repo root is comparable across commits — the
first point of the perf trajectory (the artifact records the host's CPU
count, since the executor comparison only means something relative to it).

The acceptance floor (``TRAFFIC_SPEEDUP_FLOOR``) defaults to 1.8× process
vs serial answers/sec on runners with ≥4 CPUs; a machine with fewer cores
cannot exhibit the GIL escape at all, so there the default degrades to a
no-worse-than guard (0.5×, i.e. the process executor's IPC overhead must
not halve throughput).  The env var overrides either default.
"""

import json
import os
import random
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

from conftest import print_artifact

from repro.core.engine import EngineConfig, TriniT
from repro.storage.snapshot import save_snapshot

WORKERS = 4
SEED = 20160901
OPS = 36
REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_traffic.json"

#: Rank-ordered query pool; op i draws rank r with probability ∝ 1/(r+1)
#: (Zipf s=1) — the head query dominates, the tail stays warm.
QUERY_POOL = [
    "?x ?p ?y",
    "?x affiliation ?y",
    "?p 'works at' ?u . ?u locatedIn ?c",
    "?p affiliation ?u . ?u locatedIn ?c",
    "?x locatedIn ?y",
]


def _workload(pool=None):
    """The replayed op sequence: (op, payload, k) tuples, fixed seed."""
    pool = QUERY_POOL if pool is None else pool
    rng = random.Random(SEED)
    weights = [1.0 / (rank + 1) for rank in range(len(pool))]
    ops = []
    for _ in range(OPS):
        roll = rng.random()
        if roll < 0.5:
            ops.append(("ask", rng.choices(pool, weights)[0], 80))
        elif roll < 0.8:
            ops.append(("stream", rng.choices(pool, weights)[0], (25, 50)))
        else:
            batch = [rng.choices(pool, weights)[0] for _ in range(3)]
            ops.append(("ask_many", batch, 40))
    return ops


def _replay(engine, ops):
    """Run the op sequence; per-op latencies, answer count, fingerprints."""
    latencies, answers, fingerprints = [], 0, []
    for op, payload, k in ops:
        started = time.perf_counter()
        if op == "ask":
            got = list(engine.ask(payload, k=k))
        elif op == "stream":
            stream = engine.stream(payload)
            got = list(stream.next_k(k[0]))
            got.extend(stream.next_k(k[1]))
        else:
            got = [a for result in engine.ask_many(payload, k=k) for a in result]
        latencies.append(time.perf_counter() - started)
        answers += len(got)
        fingerprints.append([(a.binding, a.score) for a in got])
    return latencies, answers, fingerprints


def _percentile(latencies, q):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _git_sha():
    """Short commit id of the benched tree, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _git_dirty():
    """True when the benched tree has uncommitted changes."""
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    return bool(out.stdout.strip()) if out.returncode == 0 else False


def _prior_trajectory():
    """Run entries accumulated by earlier bench runs (grown, never reset)."""
    try:
        prior = json.loads(ARTIFACT.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    trajectory = prior.get("trajectory") if isinstance(prior, dict) else None
    return trajectory if isinstance(trajectory, list) else []


def _extend_trajectory(trajectory, entry):
    """Append ``entry`` unless it would duplicate a dirty-tree point.

    The trajectory is one perf point per commit *and profile* (the
    server-mode entries carry no profile and form their own series).
    Re-running the same profile from an *uncommitted* tree whose HEAD
    already has an entry would stack meaningless duplicates under the
    same sha — those runs refresh the headline numbers but leave the
    trajectory alone.  A different profile at the same sha is a distinct
    perf point and always appends.
    """
    sha = entry.get("sha")
    profile = entry.get("profile")
    if (
        sha is not None
        and any(
            prior.get("sha") == sha and prior.get("profile") == profile
            for prior in trajectory
            if isinstance(prior, dict)
        )
        and _git_dirty()
    ):
        return trajectory
    trajectory.append(entry)
    return trajectory


MODES = {
    "serial": dict(executor_kind="serial", merge_batch=1, block_size=1),
    "blocked": dict(executor_kind="serial"),
    "thread": dict(executor_kind="thread", parallelism=WORKERS),
    "process": dict(executor_kind="process", parallelism=WORKERS),
}

#: Large-profile world: ~175k people yields just over 1M KG triples at the
#: generator's default coverage mix (measured 1,021,301).
LARGE_WORLD = dict(
    num_people=175_000,
    num_countries=90,
    num_universities=1200,
    num_institutes=600,
    num_companies=1500,
    num_fields=200,
    num_prizes=150,
    num_groups=2000,
)

#: The large profile replays over a raw generated KG (no corpus, no mined
#: rules), so its pool sticks to KG-vocabulary predicates.
LARGE_QUERY_POOL = [
    "?x affiliation ?y",
    "?p affiliation ?u . ?u locatedIn ?c",
    "?x locatedIn ?y",
    "?x bornIn ?y",
    "?a hasStudent ?b",
]


def _profile() -> str:
    return os.environ.get("TRAFFIC_PROFILE", "medium").strip().lower()


def _trajectory_entry(profile, results, speedups):
    """One compact per-run trajectory point (latency + throughput)."""
    return {
        "sha": _git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "cpus": os.cpu_count(),
        "profile": profile,
        "modes": {
            name: {
                key: row[key]
                for key in ("p50_ms", "p95_ms", "p99_ms", "answers_per_sec")
            }
            for name, row in results.items()
        },
        "speedup": speedups,
    }


def _run_modes(snapshot, ops):
    """Replay ``ops`` under every mode; per-mode rows, reference-checked."""
    results = {}
    reference = None
    for name, overrides in MODES.items():
        with TriniT.open(snapshot, config=EngineConfig(**overrides)) as engine:
            effective = engine.executor_kind
            _replay(engine, ops)  # warm caches/pools outside the timing
            started = time.perf_counter()
            latencies, answers, fingerprints = _replay(engine, ops)
            total = time.perf_counter() - started
        if reference is None:
            reference = fingerprints
        else:
            assert fingerprints == reference, (
                f"{name} answers diverged from the serial reference"
            )
        results[name] = {
            "executor_kind": effective,
            "p50_ms": _percentile(latencies, 0.50) * 1000,
            "p95_ms": _percentile(latencies, 0.95) * 1000,
            "p99_ms": _percentile(latencies, 0.99) * 1000,
            "total_s": total,
            "answers": answers,
            "answers_per_sec": answers / total,
        }
    return results


def _mode_table(results, serial_rate):
    rows = [
        "mode      p50(ms)   p95(ms)   p99(ms)   answers/s   vs serial",
        "-------   -------   -------   -------   ---------   ---------",
    ]
    for name, row in results.items():
        speedup = row["answers_per_sec"] / serial_rate
        rows.append(
            f"{name:<7}   {row['p50_ms']:>7.2f}   {row['p95_ms']:>7.2f}   "
            f"{row['p99_ms']:>7.2f}   {row['answers_per_sec']:>9.0f}   "
            f"{speedup:>8.2f}x"
        )
    return rows


def test_traffic_replay_table(medium_harness, tmp_path):
    store = medium_harness.xkg_store.convert("sharded")
    snapshot = tmp_path / "traffic.snapd"
    save_snapshot(store, snapshot)
    segments = store.backend.num_segments
    triples = len(store)
    store.close()

    ops = _workload()
    results = _run_modes(snapshot, ops)

    serial_rate = results["serial"]["answers_per_sec"]
    speedups = {
        f"{name}_vs_serial": results[name]["answers_per_sec"] / serial_rate
        for name in ("blocked", "thread", "process")
    }

    artifact = {
        "bench": "traffic_replay",
        "store": {"triples": triples, "segments": segments, "profile": "medium"},
        "workload": {
            "ops": len(ops),
            "seed": SEED,
            "mix": {
                op: sum(1 for o in ops if o[0] == op)
                for op in ("ask", "stream", "ask_many")
            },
            "query_pool": QUERY_POOL,
        },
        "workers": WORKERS,
        "cpus": os.cpu_count(),
        "modes": results,
        "speedup": speedups,
        "identical_answers": True,
    }
    # The artifact's headline numbers are the latest run; the trajectory
    # appends one compact entry per run so the file accumulates a perf
    # history across commits instead of overwriting it.
    trajectory = _prior_trajectory()
    _extend_trajectory(trajectory, _trajectory_entry("medium", results, speedups))
    artifact["trajectory"] = trajectory
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    rows = [
        f"store: {triples} triples, {segments} segments; {len(ops)} ops "
        f"(Zipf query mix, seed {SEED})",
        "",
    ]
    rows += _mode_table(results, serial_rate)
    rows += [
        "",
        f"effective kinds: "
        + ", ".join(f"{n}={r['executor_kind']}" for n, r in results.items()),
        "answers byte-identical across all modes",
        f"persisted: {ARTIFACT.name}",
    ]
    print_artifact(
        "Table (tab-traffic-replay): mixed-workload executor comparison",
        "\n".join(rows),
    )

    default_floor = "1.8" if (os.cpu_count() or 1) >= 4 else "0.5"
    floor = float(os.environ.get("TRAFFIC_SPEEDUP_FLOOR", default_floor))
    assert speedups["process_vs_serial"] >= floor, (
        f"process executor only {speedups['process_vs_serial']:.2f}x the "
        f"serial answers/sec (floor {floor}x)"
    )
    blocked_floor = float(os.environ.get("TRAFFIC_BLOCKED_FLOOR", "1.2"))
    assert speedups["blocked_vs_serial"] >= blocked_floor, (
        f"block kernels only {speedups['blocked_vs_serial']:.2f}x the "
        f"per-item serial answers/sec (floor {blocked_floor}x)"
    )


def test_traffic_replay_large(tmp_path):
    """``--profile large``: the executor comparison at production scale.

    Generates a ≥1M-triple KG (direct :mod:`repro.kg` world + generator,
    no corpus/mining — the KG alone carries the scale), snapshots it
    sharded, and replays the Zipf mix over KG-vocabulary queries.  Opt-in
    via ``TRAFFIC_PROFILE=large`` — the build takes minutes by design.
    """
    import pytest

    if _profile() != "large":
        pytest.skip("opt-in: set TRAFFIC_PROFILE=large (or --profile large)")
    from repro.kg.generator import KgGenerator
    from repro.kg.world import World, WorldConfig

    built = time.perf_counter()
    world = World.generate(WorldConfig(**LARGE_WORLD))
    kg = KgGenerator(world).generate()
    store = kg.store("traffic-large", backend="sharded")
    triples = len(store)
    assert triples >= 1_000_000, f"large profile too small: {triples} triples"
    snapshot = tmp_path / "traffic-large.snapd"
    save_snapshot(store, snapshot)
    segments = store.backend.num_segments
    store.close()
    build_s = time.perf_counter() - built

    ops = _workload(LARGE_QUERY_POOL)
    results = _run_modes(snapshot, ops)
    serial_rate = results["serial"]["answers_per_sec"]
    speedups = {
        f"{name}_vs_serial": results[name]["answers_per_sec"] / serial_rate
        for name in ("blocked", "thread", "process")
    }

    try:
        artifact = json.loads(ARTIFACT.read_text())
        if not isinstance(artifact, dict):
            raise ValueError
    except (OSError, json.JSONDecodeError, ValueError):
        artifact = {"bench": "traffic_replay"}
    artifact["large"] = {
        "store": {
            "triples": triples,
            "segments": segments,
            "profile": "large",
            "people": LARGE_WORLD["num_people"],
            "build_s": build_s,
        },
        "workload": {"ops": len(ops), "seed": SEED, "query_pool": LARGE_QUERY_POOL},
        "workers": WORKERS,
        "cpus": os.cpu_count(),
        "modes": results,
        "speedup": speedups,
        "identical_answers": True,
    }
    trajectory = _prior_trajectory()
    _extend_trajectory(trajectory, _trajectory_entry("large", results, speedups))
    artifact["trajectory"] = trajectory
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    rows = [
        f"store: {triples} triples, {segments} segments "
        f"(built in {build_s:.0f}s); {len(ops)} ops (Zipf mix, seed {SEED})",
        "",
    ]
    rows += _mode_table(results, serial_rate)
    rows += [
        "",
        "answers byte-identical across all modes",
        f"persisted: {ARTIFACT.name} (large entry + trajectory)",
    ]
    print_artifact(
        "Table (tab-traffic-replay --profile large): 1M-triple executor "
        "comparison",
        "\n".join(rows),
    )


def _replay_http(client, ops):
    """The same op sequence over the wire; wire-form fingerprints."""
    latencies, answers, fingerprints = [], 0, []
    for op, payload, k in ops:
        started = time.perf_counter()
        if op == "ask":
            got = client.query(payload, k=k)["answers"]
        elif op == "stream":
            first = client.stream(payload, n=k[0])
            rest = client.resume(first.session, n=k[1])
            got = first.answers + rest.answers
        else:
            got = [
                answer
                for query in payload
                for answer in client.query(query, k=k)["answers"]
            ]
        latencies.append(time.perf_counter() - started)
        answers += len(got)
        fingerprints.append(got)
    return latencies, answers, fingerprints


def _replay_reference(engine, ops):
    """Direct-engine wire-form fingerprints for the HTTP replay."""
    from repro.serve.http import serialize_answer

    fingerprints = []
    for op, payload, k in ops:
        if op == "ask":
            got = [
                serialize_answer(answer, rank)
                for rank, answer in enumerate(engine.ask(payload, k=k), 1)
            ]
        elif op == "stream":
            stream = engine.stream(payload)
            raw = list(stream.next_k(k[0]))
            raw.extend(stream.next_k(k[1]))
            got = [
                serialize_answer(answer, rank)
                for rank, answer in enumerate(raw, 1)
            ]
        else:
            got = [
                serialize_answer(answer, rank)
                for query in payload
                for rank, answer in enumerate(engine.ask(query, k=k), 1)
            ]
        fingerprints.append(got)
    return fingerprints


def test_traffic_replay_server(medium_harness, tmp_path):
    """``--server`` mode: the Zipf mix over HTTP/SSE instead of in-process.

    Measures what the network front-end adds on top of the engine —
    request framing, admission, SSE session resume — and what the result
    cache gives back on a head-heavy mix; answers stay byte-identical to
    the direct-engine replay (the serialization is the shared contract).
    """
    from repro.serve import QueryService, ServeClient, ServeConfig

    store = medium_harness.xkg_store.convert("sharded")
    snapshot = tmp_path / "traffic.snapd"
    save_snapshot(store, snapshot)
    triples = len(store)
    store.close()

    ops = _workload()
    with TriniT.open(
        snapshot, config=EngineConfig(parallelism=WORKERS)
    ) as reference_engine:
        reference = _replay_reference(reference_engine, ops)

    engine = TriniT.open(snapshot, config=EngineConfig(parallelism=WORKERS))
    with QueryService(engine, ServeConfig(port=0), owns_engine=True) as service:
        client = ServeClient(service.host, service.port)
        _replay_http(client, ops)  # warm: caches, pools, interned terms
        started = time.perf_counter()
        latencies, answers, fingerprints = _replay_http(client, ops)
        total = time.perf_counter() - started
        cache = client.metrics()["cache"]
        kind = engine.executor_kind
    assert fingerprints == reference, (
        "HTTP answers diverged from the direct-engine replay"
    )

    server = {
        "executor_kind": kind,
        "p50_ms": _percentile(latencies, 0.50) * 1000,
        "p95_ms": _percentile(latencies, 0.95) * 1000,
        "p99_ms": _percentile(latencies, 0.99) * 1000,
        "total_s": total,
        "answers": answers,
        "answers_per_sec": answers / total,
        "cache_hit_ratio": cache["hit_ratio"],
        "cache_hits": cache["hits"],
        "cache_misses": cache["misses"],
    }

    try:
        artifact = json.loads(ARTIFACT.read_text())
        if not isinstance(artifact, dict):
            raise ValueError
    except (OSError, json.JSONDecodeError, ValueError):
        artifact = {"bench": "traffic_replay"}
    artifact["server"] = server
    trajectory = _prior_trajectory()
    _extend_trajectory(
        trajectory,
        {
            "sha": _git_sha(),
            "timestamp": datetime.now(timezone.utc).isoformat(),
            "cpus": os.cpu_count(),
            "server": {
                key: server[key]
                for key in ("p50_ms", "p95_ms", "p99_ms", "answers_per_sec",
                            "cache_hit_ratio")
            },
        }
    )
    artifact["trajectory"] = trajectory
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")

    rows = [
        f"store: {triples} triples; {len(ops)} ops over HTTP/SSE "
        f"({kind} executor, {WORKERS} workers)",
        "",
        f"p50 {server['p50_ms']:.2f} ms   p95 {server['p95_ms']:.2f} ms   "
        f"p99 {server['p99_ms']:.2f} ms",
        f"answers/s {server['answers_per_sec']:.0f}   "
        f"cache hit ratio {cache['hit_ratio']:.2f} "
        f"({cache['hits']} hits / {cache['misses']} misses)",
        "",
        "answers byte-identical to the direct-engine replay",
        f"persisted: {ARTIFACT.name} (server entry + trajectory)",
    ]
    print_artifact(
        "Table (tab-traffic-replay --server): the Zipf mix over HTTP/SSE",
        "\n".join(rows),
    )
    assert cache["hits"] > 0, "a Zipfian mix must produce repeat cache hits"


if __name__ == "__main__":
    import sys

    import pytest

    args = [__file__, "-q", "-s"]
    if "--server" in sys.argv:
        args += ["-k", "server"]
    if "--profile" in sys.argv:
        profile = sys.argv[sys.argv.index("--profile") + 1]
        os.environ["TRAFFIC_PROFILE"] = profile
        if profile.strip().lower() == "large":
            args += ["-k", "large"]
    raise SystemExit(pytest.main(args))
