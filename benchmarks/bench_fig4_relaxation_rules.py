"""fig4 — Figure 4: relaxation rules, mined from the XKG.

The paper shows four example rules (granularity repair, inversion, chain
expansion into the XKG, predicate→token rewrite).  This bench mines rules
from the generated XKG and shows that all four *shapes* arise from data,
with weights in the right regime.  Times the full §3 mining pass.
"""

from conftest import print_artifact

from repro.core.terms import Resource
from repro.relax.mining import mine_arg_overlap_rules, mine_chain_expansion_rules
from repro.relax.structural import granularity_rules, inversion_rules


def test_fig4_rule_shapes(benchmark, small_harness):
    statistics = small_harness.engine.statistics

    def mine_all():
        return {
            "rewrite": mine_arg_overlap_rules(statistics, min_support=2),
            "chain": mine_chain_expansion_rules(statistics, min_support=2),
            "inversion": inversion_rules(statistics, min_support=2, min_weight=0.15),
            "granularity": granularity_rules(
                statistics,
                type_predicate=Resource("type"),
                containment_predicate=Resource("locatedIn"),
                fine_class=Resource("city"),
                coarse_class=Resource("country"),
            ),
        }

    mined = benchmark(mine_all)

    rows = ["#  shape         example rule"]
    rows.append("-  -----         ------------")
    examples = [
        ("1", "granularity", mined["granularity"]),
        ("2", "inversion", mined["inversion"]),
        ("3", "chain", mined["chain"]),
        ("4", "rewrite", [
            r for r in mined["rewrite"]
            if any(t.is_token for p in r.replacement for t in p.terms())
        ]),
    ]
    for number, shape, rules in examples:
        example = rules[0].n3() if rules else "(none mined)"
        rows.append(f"{number}  {shape:<12}  {example}")
    print_artifact(
        "Figure 4: Relaxation rule shapes mined from the XKG", "\n".join(rows)
    )

    # All four shapes must arise from the data.
    for _number, shape, rules in examples:
        assert rules, f"no {shape} rules mined"
    # Granularity repairs are exact (weight 1.0), like the paper's rule 1.
    assert mined["granularity"][0].weight == 1.0
    # Mined inversions connect the advisor-relation family (rule 2's shape);
    # each paraphrase template only covers part of the relation, so weights
    # sit below the paper's 1.0 for the hand-stated rule.
    top_inversion = mined["inversion"][0]
    assert top_inversion.weight > 0.3
    inversion_text = " ".join(r.n3() for r in mined["inversion"])
    assert "hasStudent" in inversion_text or "studied under" in inversion_text
    # KG→token rewrites are attenuated (< 1 typical), like rules 3-4.
    token_rules = examples[3][2]
    assert all(0.0 < r.weight <= 1.0 for r in token_rules)
