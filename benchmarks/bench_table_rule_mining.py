"""tab-mining — rule-source comparison (Section 3's generator inventory).

The paper lists four rule sources: mining from the XKG itself (the
arg-overlap formula), manual specification, AMIE-style KG mining, paraphrase
repositories, and relatedness measures (ESA).  This bench runs every
generator over the same store and reports rule counts, weight statistics and
mining throughput — the ablation material for "where do good rules come
from".
"""

from conftest import print_artifact

from repro.core.terms import Resource
from repro.eval.benchmark import user_alias_rules
from repro.relax.amie import mine_amie_rules
from repro.relax.esa import esa_rules
from repro.relax.mining import mine_arg_overlap_rules, mine_chain_expansion_rules
from repro.relax.structural import granularity_rules, inversion_rules


def test_rule_mining_table(benchmark, small_harness):
    statistics = small_harness.engine.statistics

    def mine_arg_overlap():
        return mine_arg_overlap_rules(statistics, min_support=2)

    benchmark(mine_arg_overlap)

    sources = {
        "arg-overlap (§3 formula)": mine_arg_overlap_rules(
            statistics, min_support=2
        ),
        "chain-expansion": mine_chain_expansion_rules(statistics, min_support=2),
        "inversions": inversion_rules(statistics, min_support=2, min_weight=0.15),
        "granularity": granularity_rules(
            statistics,
            type_predicate=Resource("type"),
            containment_predicate=Resource("locatedIn"),
            fine_class=Resource("city"),
            coarse_class=Resource("country"),
        ),
        "amie (PCA)": mine_amie_rules(statistics, min_support=2),
        "esa relatedness": esa_rules(statistics, min_similarity=0.35),
        "paraphrase aliases": user_alias_rules(),
    }

    rows = ["source                     rules  w-min  w-mean  w-max"]
    rows.append("------                     -----  -----  ------  -----")
    for name, rules in sources.items():
        if rules:
            weights = [r.weight for r in rules]
            rows.append(
                f"{name:<26} {len(rules):>5}  {min(weights):.2f}   "
                f"{sum(weights)/len(weights):.2f}    {max(weights):.2f}"
            )
        else:
            rows.append(f"{name:<26} {0:>5}")
    print_artifact(
        "Table (tab-mining): relaxation rules per source", "\n".join(rows)
    )

    assert len(sources["arg-overlap (§3 formula)"]) > 10
    assert sources["chain-expansion"]
    assert sources["inversions"]
    assert sources["granularity"]
    for rules in sources.values():
        assert all(0.0 < r.weight <= 1.0 for r in rules)
