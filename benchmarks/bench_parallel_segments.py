"""tab-parallel-segments — segment-parallel execution vs the serial reference.

The paper served its XKG from a sharded ElasticSearch index where one query
fans out across shards; this bench measures the reproduction's version of
that fan-out on the medium-profile KG, comparing two engine configurations
over the *same* segment-aware (v2) snapshot:

* **serial** — ``parallelism=1, merge_batch=1``: no worker pool, posting
  heads pulled item-at-a-time on the consuming thread (the byte-identical
  reference the property suite pins parallel execution against); and
* **parallel** — 4 workers + batched pulls: segment first-batches prime on
  the shared executor and the k-way merge materialises heads
  ``merge_batch`` at a time with one prepared batch per segment in flight.

Three measurements:

1. **cold open** — time until a freshly loaded store is ready: legacy v1
   snapshot (eager: every record, term and posting table decoded up front)
   vs the segment-aware v2 snapshot (header + global id maps only; records,
   dictionary and segments materialise on first touch);
2. **multi-segment posting drain** — the storage→merge component of one
   query: every workload pattern's posting stream consumed in global score
   order through the segmented merge, serial vs parallel configuration
   (this is where the batching/prefetch machinery lives, so it carries the
   acceptance floor, PARALLEL_SPEEDUP_FLOOR); and
3. **end-to-end top-k latency** — the same workload through the full
   adaptive processor under both configurations, answers verified
   identical (rank-join and scoring costs dilute the merge win here;
   reported, not floored).
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import print_artifact

from repro.core.parser import parse_query
from repro.storage.snapshot import load_snapshot, save_snapshot
from repro.topk.processor import TopKProcessor

WORKERS = 4
BATCH = 64


def _workload():
    return [
        parse_query("?x ?p ?y"),
        parse_query("?x affiliation ?y"),
        parse_query("?p 'works at' ?u . ?u locatedIn ?c"),
        parse_query("?p affiliation ?u . ?u locatedIn ?c"),
    ]


def _fingerprint(answers):
    return [(a.binding, a.score, a.num_derivations) for a in answers]


def _best_of(action, reps=3):
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best


def test_parallel_segments_table(medium_harness, tmp_path):
    store = medium_harness.xkg_store
    sharded = store.convert("sharded")
    rules = medium_harness.engine.rules
    queries = _workload()
    patterns = [pattern for query in queries for pattern in query.patterns]

    v1_path = tmp_path / "legacy.snap"
    v2_path = tmp_path / "segments.snap"
    save_snapshot(store, v1_path, version=1)
    save_snapshot(sharded, v2_path)

    # -- 1. cold open: eager v1 vs lazy segment-aware v2 -------------------
    t_open_v1 = _best_of(lambda: load_snapshot(v1_path).close())
    t_open_v2 = _best_of(lambda: load_snapshot(v2_path).close())
    open_speedup = t_open_v1 / t_open_v2 if t_open_v2 > 0 else float("inf")

    # -- 2. multi-segment drain: serial vs parallel pulls ------------------
    # One mapped store, segments materialised up front, so the timing
    # isolates the k-way merge itself — the component the batched pulls
    # and executor prefetch actually change.
    drained = load_snapshot(v2_path)
    drained.backend.load_segments()

    def drain(executor, batch):
        drained.backend.configure_prefetch(executor, batch)
        total = 0
        for pattern in patterns:
            for _tid in drained.sorted_ids(pattern):
                total += 1
        return total

    t_drain_serial = _best_of(lambda: drain(None, 1))
    pool = ThreadPoolExecutor(max_workers=WORKERS)
    t_drain_parallel = _best_of(lambda: drain(pool, BATCH))
    drained.close()
    drain_speedup = (
        t_drain_serial / t_drain_parallel if t_drain_parallel > 0 else float("inf")
    )

    # -- 3. end-to-end top-k over the same snapshot ------------------------
    def topk(executor, batch, k=10):
        loaded = load_snapshot(v2_path)
        loaded.backend.configure_prefetch(executor, batch)
        processor = TopKProcessor(loaded, rules=rules, executor=executor)
        results = [
            _fingerprint(processor.query(query, k)) for query in queries
        ]
        loaded.close()
        return results

    answers_serial = topk(None, 1)
    answers_parallel = topk(pool, BATCH)
    assert answers_parallel == answers_serial, (
        "parallel answers diverged from the serial reference"
    )
    t_topk_serial = _best_of(lambda: topk(None, 1))
    t_topk_parallel = _best_of(lambda: topk(pool, BATCH))
    pool.shutdown()

    segments = sharded.backend.num_segments
    rows = [
        f"store: {len(store)} triples, {segments} segments "
        "(medium scale-bench profile)",
        f"snapshot: v1 {v1_path.stat().st_size / 1024:.0f} KiB, "
        f"v2 {v2_path.stat().st_size / 1024:.0f} KiB",
        "",
        "measurement                     serial(ms)   parallel(ms)   speedup",
        "-----------------------------   ----------   ------------   -------",
        f"cold open (v1 -> v2 lazy)       {t_open_v1 * 1000:>10.2f}   "
        f"{t_open_v2 * 1000:>12.2f}   {open_speedup:>6.1f}x",
        f"multi-segment posting drain     {t_drain_serial * 1000:>10.2f}   "
        f"{t_drain_parallel * 1000:>12.2f}   {drain_speedup:>6.1f}x",
        f"end-to-end top-k (k=10)         {t_topk_serial * 1000:>10.2f}   "
        f"{t_topk_parallel * 1000:>12.2f}   "
        f"{t_topk_serial / t_topk_parallel:>6.2f}x",
        "",
        f"parallel config: {WORKERS} workers, merge_batch={BATCH}; serial: "
        "no pool, batch=1",
        "answers byte-identical across serial and parallel configurations",
    ]
    print_artifact(
        "Table (tab-parallel-segments): segment-parallel execution",
        "\n".join(rows),
    )

    # The merge component must clear the acceptance bar (CI relaxes the
    # floor: shared runners have noisy clocks and one core).
    floor = float(os.environ.get("PARALLEL_SPEEDUP_FLOOR", "1.5"))
    assert drain_speedup >= floor, (
        f"segment drain only {drain_speedup:.2f}x faster (floor {floor}x)"
    )
    open_floor = float(os.environ.get("COLD_OPEN_SPEEDUP_FLOOR", "1.5"))
    assert open_speedup >= open_floor, (
        f"lazy cold open only {open_speedup:.2f}x faster (floor {open_floor}x)"
    )
