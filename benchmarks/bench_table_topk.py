"""tab-topk — Section 4: adaptive top-k avoids exploring the rewrite space.

"It is crucial to avoid exploring the entire space of possible rewritings,
as this can be prohibitively expensive. ... query processing utilizes
incremental merging of triple patterns and their relaxed forms, invoking a
relaxation only when it can contribute to the top-k answers."

This bench compares the adaptive processor against reference exhaustive
evaluation over the same store and rules, for k ∈ {1, 5, 10, 20}: sorted
accesses, relaxations invoked vs considered, and wall time.  The shape:
adaptive work grows with k and stays below exhaustive, while answers remain
identical (verified continuously by the test suite).
"""

import time

from conftest import print_artifact

from repro.core.parser import parse_query


def _workload(harness):
    world = harness.world
    queries = []
    for person in world.people[:6]:
        queries.append(parse_query(f"{person.id} affiliation ?x"))
    for org in world.universities[:3]:
        queries.append(parse_query(f"?x affiliation {org.id}"))
    queries.append(parse_query("?x 'works at' ?y"))
    return queries


def test_topk_efficiency_table(benchmark, small_harness):
    engine = small_harness.engine
    exhaustive = engine.variant(exhaustive=True)
    queries = _workload(small_harness)

    def run_adaptive_k5():
        return [engine.ask(q, k=5) for q in queries]

    benchmark(run_adaptive_k5)

    rows = [
        "k   mode        sorted-acc  relax-invoked/considered  time(ms)",
        "--  ----------  ----------  ------------------------  --------",
    ]
    summary = {}
    for k in (1, 5, 10, 20):
        for mode, processor in (("adaptive", engine), ("exhaustive", exhaustive)):
            accesses = invoked = considered = 0
            started = time.perf_counter()
            for query in queries:
                answers = processor.ask(query, k=k)
                accesses += answers.stats.sorted_accesses
                invoked += answers.stats.relaxations_invoked
                considered += answers.stats.relaxations_considered
            elapsed_ms = (time.perf_counter() - started) * 1000
            summary[(k, mode)] = accesses
            rows.append(
                f"{k:<3} {mode:<11} {accesses:>10}  "
                f"{invoked:>10}/{considered:<13} {elapsed_ms:>8.1f}"
            )
    print_artifact(
        "Table (tab-topk): adaptive top-k vs exhaustive evaluation",
        "\n".join(rows),
    )

    for k in (1, 5, 10, 20):
        assert summary[(k, "adaptive")] <= summary[(k, "exhaustive")]
    # Smaller k must allow earlier termination (weakly monotone work).
    assert summary[(1, "adaptive")] <= summary[(20, "adaptive")]
