"""Plugging in custom relaxation rules and rule-generating operators.

Section 3: "relaxation rules can be specified manually, or automatically
obtained using rule mining ... TriniT has an API for relaxation operators,
which administrators and advanced users can use to plug in their code for
generating relaxation rules and their weights."

This example shows all three extension points:
  1. a manual rule in the textual syntax,
  2. a custom operator registered *before* engine construction,
  3. rules added interactively at runtime.

Run:  python examples/custom_relaxation_rules.py
"""

from repro.core.engine import TriniT
from repro.core.terms import Resource, Variable
from repro.core.triples import TriplePattern
from repro.kg.paper_example import paper_store
from repro.relax.operators import OperatorContext, OperatorRegistry, operator
from repro.relax.rules import RelaxationRule


def main() -> None:
    registry = OperatorRegistry()

    # -- extension point 2: a custom rule-generating operator ---------------
    # Suppose our deployment knows that 'member' relations are often queried
    # with the word 'partOf'.  An operator can derive such rules from any
    # statistics it likes; here it inspects which predicates exist.
    @operator(registry, "house-style-aliases",
              description="deployment-specific predicate aliases")
    def house_style(context: OperatorContext):
        x, y = Variable("x"), Variable("y")
        rules = []
        if Resource("member") in context.statistics.predicates():
            rules.append(
                RelaxationRule(
                    original=(TriplePattern(x, Resource("partOf"), y),),
                    replacement=(TriplePattern(x, Resource("member"), y),),
                    weight=0.9,
                    origin="house-style",
                    label="partOf is our house style for member",
                )
            )
        return rules

    engine = TriniT(paper_store(), registry=registry)
    print(f"engine built with {len(engine.rules)} rules")
    print("operators:", ", ".join(name for name, _e, _d in engine.registry.describe()))

    # The operator's alias works immediately:
    answers = engine.ask("?x partOf IvyLeague")
    print("\n?x partOf IvyLeague  ->")
    for answer in answers:
        print(f"  {answer.render()}")

    # -- extension point 1+3: manual rules at runtime -----------------------
    print("\nBefore the manual rule:")
    print("  AlbertEinstein employer ?x ->",
          [a.render() for a in engine.ask("AlbertEinstein employer ?x")])

    engine.add_rule("?x employer ?y => ?x affiliation ?y @ 0.95")
    print("After engine.add_rule('?x employer ?y => ?x affiliation ?y @ 0.95'):")
    answers = engine.ask("AlbertEinstein employer ?x")
    for answer in answers:
        print(f"  {answer.render()}")

    # Every relaxed answer explains which rule produced it:
    explanation = engine.explain(answers.top())
    print("\n" + explanation.render())


if __name__ == "__main__":
    main()
