"""A join-intensive investigative session.

Section 5: "TriniT is specifically geared for these join-intensive queries
... Such queries typically arise in the advanced information needs of
journalists, market analysts, and other knowledge workers."

A journalist investigates a prize-winning scientist: who are they, where do
they really work, who shaped their career, and which other people orbit the
same institutions — chaining joins across the KG and the XKG, with
explanations showing which facts came from text extraction.

Run:  python examples/journalist_workflow.py
"""

from repro.eval.harness import EvalHarness


def show(engine, title, query, k=5):
    print(f"\n=== {title}")
    print(f"    {query}")
    answers = engine.ask(query, k=k)
    if answers.is_empty:
        print("    (no answers)")
    for answer in answers:
        flags = []
        if answer.derivation.uses_relaxation:
            flags.append("relaxed")
        if answer.derivation.uses_xkg:
            flags.append("via XKG")
        note = f"  [{', '.join(flags)}]" if flags else ""
        print(f"    {answer.render()}{note}")
    return answers


def main() -> None:
    harness = EvalHarness("small")
    engine = harness.engine
    world = harness.world

    # Our subject: the most popular prize winner in the generated world.
    subject = world.facts_of("wonPrize")[0].subject
    surface = world.entity(subject).surface
    print(f"Investigating: {surface} ({subject})")

    show(engine, "What prizes did they win?", f"{subject} wonPrize ?x")

    show(
        engine,
        "What was the prize for? (KG has no such predicate — XKG only)",
        f"{subject} 'won a nobel for' ?x",
    )

    answers = show(
        engine,
        "Where do they work — and where do they merely lecture?",
        f"{subject} affiliation ?x",
    )
    if not answers.is_empty:
        print("\n    provenance of the top answer:")
        explanation = engine.explain(answers.top(), answers.query)
        for line in explanation.render().splitlines():
            print(f"    | {line}")

    show(
        engine,
        "Who shaped their career? (advisor, via the user's vocabulary)",
        f"{subject} hasAdvisor ?x",
    )

    # The join-intensive finale: colleagues at organisations in the same
    # city — no single document contains this; it needs joins.
    city = world.objects_of("orgInCity", world.objects_of("worksAt", subject)[0])
    if city:
        show(
            engine,
            f"Who else works at an organisation in {world.entity(city[0]).surface}?",
            f"SELECT ?p WHERE ?p affiliation ?o ; ?o locatedIn {city[0]}",
            k=8,
        )

    # Close the loop: let TriniT teach the journalist better vocabulary.
    print("\n=== What TriniT suggests for future queries")
    query = engine.parse(f"{subject} 'works at' ?x")
    for suggestion in engine.suggest(query, engine.ask(query)):
        print(f"    [{suggestion.kind}] {suggestion.text}")


if __name__ == "__main__":
    main()
