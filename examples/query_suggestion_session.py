"""An exploratory session: from vague tokens to canonical queries.

Section 5, Query Suggestion: "This helps the user to learn more about the
structure and node/edge labels of the underlying KG, making future queries
easier to formulate."

The scripted session mimics a user who knows *no* KG vocabulary: they start
with free-text phrases, read TriniT's suggestions, and reformulate — ending
with a well-aligned canonical query.

Run:  python examples/query_suggestion_session.py
"""

from repro.eval.harness import EvalHarness


def step(engine, number, description, query_text, k=5):
    print(f"\n--- step {number}: {description}")
    print(f"    query: {query_text}")
    answers = engine.ask(query_text, k=k)
    for answer in answers:
        print(f"      {answer.render()}")
    if answers.is_empty:
        print("      (no answers)")
    suggestions = engine.suggest(engine.parse(query_text), answers)
    for suggestion in suggestions[:4]:
        print(f"    suggest [{suggestion.kind}]: {suggestion.text}")
    return answers, suggestions


def main() -> None:
    harness = EvalHarness("small")
    engine = harness.engine
    world = harness.world

    org = world.universities[0]
    print(f"Goal: find out who works at {org.surface} — knowing zero schema.")

    # 1. Pure text query: phrases in the predicate slot.
    _answers, suggestions = step(
        engine, 1, "free-text attempt", f"?x 'works at' {org.id}"
    )

    # 2. The user adopts the suggested canonical predicate.
    canonical = next(
        (s.replacement for s in suggestions if s.kind == "resource"),
        "affiliation",
    )
    step(
        engine,
        2,
        f"adopting suggested predicate '{canonical}'",
        f"?x {canonical} {org.id}",
    )

    # 3. Drilling deeper with a join — now fluent in the schema.
    step(
        engine,
        3,
        "join: where did those people study?",
        f"SELECT ?p ?u WHERE ?p {canonical} {org.id} ; ?p graduatedFrom ?u",
        k=6,
    )

    # 4. Auto-completion also guides typing (the Figure 5 input aids).
    from repro.demo.autocomplete import AutoCompleter

    completer = AutoCompleter(engine.store)
    prefix = org.id[:4]
    print(f"\nauto-completion for '{prefix}': "
          f"{completer.complete_resource(prefix, limit=5)}")
    print(f"auto-completion for \"'lect\": {completer.complete(chr(39) + 'lect')}")


if __name__ == "__main__":
    main()
