"""Quickstart: the paper's running example in ~40 lines.

Builds TriniT over the Figure 1 KG + Figure 3 XKG extension with the
Figure 4 relaxation rules, then answers all four Figure 2 user queries that
plain SPARQL cannot.

Run:  python examples/quickstart.py
"""

from repro.kg.paper_example import paper_engine


def main() -> None:
    engine = paper_engine()  # Figures 1 + 3 data, Figure 4 rules

    queries = [
        ("A: Who was born in Germany?", "?x bornIn Germany"),
        ("B: Who was Einstein's advisor?", "AlbertEinstein hasAdvisor ?x"),
        (
            "C: Ivy League university Einstein was affiliated with",
            "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague",
        ),
        (
            "D: What did Einstein win a Nobel for?",
            "AlbertEinstein 'won nobel for' ?x",
        ),
    ]

    for label, query in queries:
        print(f"\n=== {label}")
        print(f"    query: {query}")
        answers = engine.ask(query, k=3)
        if answers.is_empty:
            print("    (no answers)")
            continue
        for answer in answers:
            print(f"    {answer.render()}")

    # Every answer is explainable: how was Princeton obtained for user C?
    print("\n=== Explanation for user C's top answer")
    answers = engine.ask(queries[2][1])
    print(engine.explain(answers.top(), answers.query).render())


if __name__ == "__main__":
    main()
