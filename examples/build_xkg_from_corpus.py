"""The full XKG construction pipeline, step by step.

Section 2 of the paper: run Open IE over Web text, link arguments to KG
entities, and pour curated facts plus extractions into one extended store.
This example makes every stage visible:

    world  →  (incomplete) KG  →  text corpus  →  ReVerb extractions
           →  NED linking      →  XKG store    →  save / reload

Run:  python examples/build_xkg_from_corpus.py
"""

import tempfile
from pathlib import Path

from repro.kg.generator import KgGenerator
from repro.kg.world import World, WorldConfig
from repro.openie.corpus import CorpusConfig, CorpusGenerator
from repro.openie.ned import EntityLinker
from repro.openie.reverb import ReverbExtractor
from repro.storage.persistence import load_store, save_store
from repro.xkg.builder import XkgBuilder


def main() -> None:
    # 1. A complete hidden world, and the lossy KG sampled from it.
    world = World.generate(WorldConfig(num_people=120, seed=42))
    kg = KgGenerator(world).generate()
    print(f"world: {len(world.facts)} facts over {len(world.entities)} entities")
    print(f"KG:    {len(kg.triples)} triples "
          f"(e.g. worksAt coverage {kg.coverage_of('worksAt'):.0%}, "
          f"lecturedAt coverage {kg.coverage_of('lecturedAt'):.0%})")

    # 2. A Web-style corpus verbalising the world (including what the KG dropped).
    documents = CorpusGenerator(
        world, CorpusConfig(num_popularity_documents=250, seed=42)
    ).generate()
    print(f"corpus: {len(documents)} documents")
    print(f"  sample: \"{documents[0].sentences[0].text}\"")

    # 3. Open IE on one sentence, to see what the extractor produces.
    extractor = ReverbExtractor()
    sample = documents[0].sentences[0].text
    for extraction in extractor.extract(sample):
        print(f"  ReVerb: {extraction.as_tuple()}  conf={extraction.confidence}")

    # 4. Entity linking quality against the corpus's gold annotations.
    linker = EntityLinker(world)
    ned_metrics = linker.evaluate(documents[:100])
    print(f"NED: precision {ned_metrics['precision']:.2f}, "
          f"recall {ned_metrics['recall']:.2f}")

    # 5. The XKG: curated KG + extractions, with provenance and confidence.
    store, report = XkgBuilder(linker=linker).build(kg.triples, documents)
    print(f"XKG: {report.summary()}")

    # 6. Persistence round-trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "xkg.jsonl"
        written = save_store(store, path)
        reloaded = load_store(path)
        print(f"saved {written} triples to JSONL and reloaded "
              f"{len(reloaded)} — identical: {len(reloaded) == len(store)}")

    # 7. One token triple with its provenance, end to end.
    token_records = [r for r in store.records() if r.triple.is_token_triple]
    best = max(token_records, key=lambda r: r.count)
    print(f"\nmost-observed extraction: {best.triple.n3()}  [x{best.count}]")
    for provenance in best.provenances[:2]:
        print(f"  - {provenance.describe()}")


if __name__ == "__main__":
    main()
