"""Unit tests for XKG construction."""

import pytest

from repro.core.terms import Resource, TextToken
from repro.kg.generator import KgGenerator
from repro.kg.world import World, WorldConfig
from repro.openie.corpus import CorpusConfig, CorpusGenerator
from repro.openie.ned import EntityLinker
from repro.xkg.builder import XkgBuilder, build_xkg


@pytest.fixture(scope="module")
def setup():
    world = World.generate(WorldConfig(num_people=50, seed=3))
    kg = KgGenerator(world).generate()
    corpus = CorpusGenerator(world, CorpusConfig(num_popularity_documents=60)).generate()
    linker = EntityLinker(world)
    store, report = build_xkg(kg.triples, corpus, linker=linker)
    return world, kg, corpus, store, report


class TestBuild:
    def test_kg_triples_all_present(self, setup):
        _w, kg, _c, store, report = setup
        assert report.kg_triples == len(set(kg.triples))
        for triple in kg.triples[:50]:
            assert store.lookup(triple) is not None

    def test_extension_larger_than_zero(self, setup):
        *_rest, report = setup
        assert report.extension_triples > 0
        assert report.extension_ratio > 0.5

    def test_extension_triples_have_provenance(self, setup):
        _w, _kg, _c, store, _r = setup
        for record in store.records():
            if record.triple.is_token_triple:
                assert any(p.is_extraction for p in record.provenances)
                assert record.confidence < 1.0

    def test_arguments_linked_to_resources(self, setup):
        """NED must canonicalise a decent share of S/O arguments."""
        _w, _kg, _c, _store, report = setup
        linked_fraction = report.arguments_linked / (
            report.arguments_linked + report.arguments_unlinked
        )
        assert linked_fraction > 0.5

    def test_repeated_facts_accumulate_counts(self, setup):
        _w, _kg, _c, store, _r = setup
        counts = [r.count for r in store.records() if r.triple.is_token_triple]
        assert max(counts) > 1  # popular facts observed repeatedly

    def test_store_frozen(self, setup):
        _w, _kg, _c, store, _r = setup
        assert store.is_frozen

    def test_report_summary_renders(self, setup):
        *_rest, report = setup
        summary = report.summary()
        assert "distinct triples" in summary
        assert "ratio" in summary


class TestBuilderOptions:
    def test_without_linker_all_tokens(self):
        world = World.generate(WorldConfig(num_people=20, seed=4))
        kg = KgGenerator(world).generate()
        corpus = CorpusGenerator(
            world, CorpusConfig(num_popularity_documents=10)
        ).generate()
        store, report = build_xkg(kg.triples, corpus, linker=None)
        assert report.arguments_linked == 0
        for record in store.records():
            if record.triple.is_token_triple and not record.provenances[0].is_kg:
                # With no NED every extraction argument is a token.
                assert record.triple.p.is_token

    def test_min_confidence_filters(self):
        world = World.generate(WorldConfig(num_people=20, seed=4))
        kg = KgGenerator(world).generate()
        corpus = CorpusGenerator(
            world, CorpusConfig(num_popularity_documents=10)
        ).generate()
        permissive = XkgBuilder(min_confidence=0.0).build(kg.triples, corpus)[1]
        strict = XkgBuilder(min_confidence=0.9).build(kg.triples, corpus)[1]
        assert strict.extractions_kept < permissive.extractions_kept

    def test_unfrozen_option(self):
        world = World.generate(WorldConfig(num_people=10, seed=4))
        kg = KgGenerator(world).generate()
        store, _report = XkgBuilder().build(kg.triples, [], freeze=False)
        assert not store.is_frozen


class TestExtend:
    """The streaming consumer: extractions flow into a *live* engine."""

    def test_extend_streams_into_live_engine(self):
        from repro.core.engine import EngineConfig, TriniT

        world = World.generate(WorldConfig(num_people=20, seed=5))
        kg = KgGenerator(world).generate()
        corpus = CorpusGenerator(
            world, CorpusConfig(num_popularity_documents=12)
        ).generate()
        linker = EntityLinker(world)
        builder = XkgBuilder(linker=linker)

        # Batch oracle: everything built up front.
        batch_store, batch_report = builder.build(kg.triples, corpus)

        # Streaming: KG only, frozen, then documents fed to the engine.
        engine = TriniT.from_triples(
            kg.triples, config=EngineConfig(executor_kind="serial")
        )
        kg_size = len(engine.store)
        report = XkgBuilder(linker=linker).extend(engine, corpus)
        try:
            assert report.kg_triples == kg_size
            assert report.documents == batch_report.documents
            assert report.extractions_kept == batch_report.extractions_kept
            assert len(engine.store) == len(batch_store)
            assert report.extension_triples == batch_report.extension_triples
            # The ingested statements are queryable without a compaction.
            assert engine.store.delta_size > 0
            record = next(
                r for r in engine.store.records() if r.triple.is_token_triple
            )
            assert any(p.is_extraction for p in record.provenances)
            # A report threaded through a second call keeps accumulating.
            grown = XkgBuilder(linker=linker).extend(
                engine, corpus[:2], report=report
            )
            assert grown.documents == batch_report.documents + 2
        finally:
            engine.close()
        batch_store.close()
