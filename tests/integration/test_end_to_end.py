"""Integration tests over the generated pipeline (tiny profile)."""

import pytest

from repro.eval.runner import evaluate_systems


class TestPipeline:
    def test_xkg_larger_than_kg(self, tiny_harness):
        report = tiny_harness.xkg_report
        assert report.extension_triples > report.kg_triples * 0.5

    def test_engine_has_mined_rules(self, tiny_harness):
        origins = {rule.origin for rule in tiny_harness.engine.rules}
        assert "mined-xkg" in origins
        assert "paraphrase" in origins  # the alias repository
        assert "structural" in origins  # inversions / granularity

    def test_benchmark_generated(self, tiny_harness):
        assert len(tiny_harness.benchmark) == 7 * 4  # tiny: 4 per class

    def test_vocabulary_gap_query_answerable(self, tiny_harness):
        world = tiny_harness.world
        engine = tiny_harness.engine
        fact = world.facts_of("lecturedAt")[0]
        answers = engine.ask(f"{fact.subject} lecturedAt ?x", k=5)
        found = {a.value("x").lexical() for a in answers}
        assert fact.obj in found or world.entity(fact.obj).surface in {
            f.lower() for f in found
        }

    def test_granularity_query_answerable(self, tiny_harness):
        world = tiny_harness.world
        country = world.countries[0]
        cities = set(world.subjects_of("cityInCountry", country.id))
        expected = {
            person
            for person, city in world.pairs("bornInCity")
            if city in cities
        }
        answers = tiny_harness.engine.ask(f"?x bornIn {country.id}", k=10)
        found = {a.value("x").lexical() for a in answers}
        assert found & expected

    def test_explanations_never_crash(self, tiny_harness):
        engine = tiny_harness.engine
        for query in list(tiny_harness.benchmark)[:10]:
            answers = engine.ask(query.parse(), k=3)
            for answer in answers:
                assert engine.explain(answer).render()


class TestEvaluationShape:
    """The headline result's *shape* on the tiny profile: TriniT must beat
    every baseline, and strict SPARQL must fail the mismatch classes."""

    @pytest.fixture(scope="class")
    def report(self, tiny_harness):
        return evaluate_systems(
            tiny_harness.all_systems(), tiny_harness.benchmark, k=10
        )

    def test_trinit_wins_overall(self, report):
        trinit = report.by_name("trinit").ndcg5
        for system in report.systems:
            if system.name != "trinit":
                assert trinit > system.ndcg5, system.name

    def test_gap_is_large(self, report):
        """Paper: 0.775 vs 0.419.  We require at least a 1.5× gap."""
        trinit = report.by_name("trinit").ndcg5
        best_baseline = max(
            s.ndcg5 for s in report.systems if s.name != "trinit"
        )
        assert trinit > 1.5 * best_baseline

    def test_strict_fails_mismatch_classes(self, report):
        by_class = report.by_name("strict-sparql").ndcg5_by_class()
        for query_class in ("synonym", "misnomer", "granularity", "incomplete"):
            assert by_class.get(query_class, 0.0) == 0.0

    def test_trinit_positive_everywhere(self, report):
        by_class = report.by_name("trinit").ndcg5_by_class()
        for query_class, score in by_class.items():
            assert score > 0.0, query_class

    def test_everyone_ok_on_direct(self, report):
        for name in ("trinit", "strict-sparql", "qars-kg-relaxation"):
            assert report.by_name(name).ndcg5_by_class()["direct"] > 0.5
