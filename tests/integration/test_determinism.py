"""Determinism: identical seeds produce byte-identical artifacts."""

from repro.eval.harness import EvalHarness, HarnessConfig
from repro.kg.generator import KgGenerator
from repro.kg.world import World, WorldConfig
from repro.openie.corpus import CorpusConfig, CorpusGenerator
from repro.openie.ned import EntityLinker
from repro.xkg.builder import build_xkg


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        def build():
            world = World.generate(WorldConfig(num_people=30, seed=5))
            kg = KgGenerator(world).generate()
            corpus = CorpusGenerator(
                world, CorpusConfig(num_popularity_documents=20)
            ).generate()
            store, report = build_xkg(
                kg.triples, corpus, linker=EntityLinker(world)
            )
            return store, report

        store_a, report_a = build()
        store_b, report_b = build()
        assert len(store_a) == len(store_b)
        assert report_a.summary() == report_b.summary()
        for rec_a, rec_b in zip(store_a.records(), store_b.records()):
            assert rec_a.triple == rec_b.triple
            assert rec_a.count == rec_b.count
            assert rec_a.confidence == rec_b.confidence

    def test_engine_rules_reproducible(self):
        config = HarnessConfig(
            world=WorldConfig(num_people=30, seed=5),
            corpus=CorpusConfig(num_popularity_documents=20),
        )
        a = EvalHarness(config)
        b = EvalHarness(config)
        rules_a = sorted(r.n3() for r in a.engine.rules)
        rules_b = sorted(r.n3() for r in b.engine.rules)
        assert rules_a == rules_b

    def test_query_results_reproducible(self):
        config = HarnessConfig(
            world=WorldConfig(num_people=30, seed=5),
            corpus=CorpusConfig(num_popularity_documents=20),
        )
        a = EvalHarness(config)
        b = EvalHarness(config)
        fact = a.world.facts_of("worksAt")[0]
        query = f"{fact.subject} affiliation ?x"
        result_a = [(x.binding, x.score) for x in a.engine.ask(query)]
        result_b = [(x.binding, x.score) for x in b.engine.ask(query)]
        assert result_a == result_b

    def test_store_save_is_stable(self, tmp_path):
        from repro.storage.persistence import save_store

        world = World.generate(WorldConfig(num_people=15, seed=5))
        kg = KgGenerator(world).generate()
        store = kg.store(freeze=False)
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_store(store, path_a)
        save_store(store, path_b)
        assert path_a.read_bytes() == path_b.read_bytes()
