"""Failure injection: the engine must degrade gracefully, never crash.

Noisy extractions, adversarial rule sets (cycles, self-references, weight
extremes), garbage queries, and hostile text inputs — the error paths a
production system meets on day one.
"""

import pytest

from repro.core.engine import TriniT
from repro.core.parser import parse_query, parse_rule
from repro.core.terms import Resource, TextToken
from repro.core.triples import Provenance, Triple
from repro.errors import ParseError, TrinitError
from repro.relax.rules import RuleSet
from repro.storage.store import TripleStore
from repro.topk.processor import ProcessorConfig, TopKProcessor


@pytest.fixture(scope="module")
def noisy_engine():
    """A store polluted with junk extractions alongside real facts."""
    store = TripleStore()
    store.add(Triple(Resource("Ada"), Resource("bornIn"), Resource("London")))
    store.add(Triple(Resource("Ada"), Resource("affiliation"), Resource("RoyalSociety")))
    junk = Provenance("openie", "spam-doc", "junk", "reverb")
    for i in range(50):
        store.add(
            Triple(
                TextToken(f"garbled phrase {i}"),
                TextToken("click here for"),
                TextToken(f"amazing deal {i}"),
            ),
            junk,
            confidence=0.06,
        )
    store.add(
        Triple(Resource("Ada"), TextToken("worked with"), Resource("Babbage")),
        Provenance("openie", "doc-ok", "Ada worked with Babbage", "reverb"),
        confidence=0.9,
    )
    return TriniT(store.freeze())


class TestNoiseTolerance:
    def test_real_facts_still_found(self, noisy_engine):
        answers = noisy_engine.ask("Ada bornIn ?x")
        assert answers.top().value("x") == Resource("London")

    def test_noise_scores_below_signal(self, noisy_engine):
        good = noisy_engine.ask("Ada 'worked with' ?x").top()
        assert good.value("x") == Resource("Babbage")

    def test_junk_queries_return_junk_not_crash(self, noisy_engine):
        answers = noisy_engine.ask("?x 'click here for' ?y", k=5)
        assert len(answers) == 5  # junk in, junk out — but ranked and scored
        assert all(0 < a.score <= 1 for a in answers)


class TestAdversarialRules:
    def _engine_with_rules(self, *rule_texts):
        store = TripleStore()
        store.add(Triple(Resource("A"), Resource("p"), Resource("B")))
        store.add(Triple(Resource("B"), Resource("q"), Resource("C")))
        store.freeze()
        rules = RuleSet(parse_rule(t) for t in rule_texts)
        return TopKProcessor(store, rules=rules)

    def test_rule_cycle_terminates(self):
        processor = self._engine_with_rules(
            "?x p ?y => ?x q ?y @ 0.9",
            "?x q ?y => ?x p ?y @ 0.9",
        )
        answers = processor.query(parse_query("?x p ?y"), 10)
        assert not answers.is_empty  # and we got here: no infinite loop

    def test_self_inverse_rule_terminates(self):
        processor = self._engine_with_rules("?x p ?y => ?y p ?x @ 0.9")
        answers = processor.query(parse_query("?x p ?y"), 10)
        assert len(answers) >= 1

    def test_expanding_rule_chain_bounded(self):
        processor = self._engine_with_rules(
            "?x p ?y => ?x p ?z ; ?z q ?y @ 0.9",
        )
        answers = processor.query(parse_query("?x p ?y"), 10)
        assert answers.stats.rewritings_enumerated <= 201  # max_rewrites + 1

    def test_tiny_weights_pruned(self):
        processor = self._engine_with_rules("?x p ?y => ?x q ?y @ 0.001")
        answers = processor.query(parse_query("?x missing ?y"), 10)
        assert answers.is_empty  # below min_cursor_multiplier / min weight


class TestGarbageInputs:
    @pytest.mark.parametrize(
        "bad_query",
        ["", "   ", "?x", "?x bornIn", "SELECT WHERE ?x p ?y",
         "?x 'unclosed phrase", "?x p ?y LIMIT zero"],
    )
    def test_bad_queries_raise_parse_error(self, noisy_engine, bad_query):
        with pytest.raises(ParseError):
            noisy_engine.ask(bad_query)

    def test_whitespace_token_rejected(self, noisy_engine):
        with pytest.raises(TrinitError):
            noisy_engine.ask("?x '   ' ?y")

    def test_unicode_text_handled(self):
        from repro.openie.reverb import ReverbExtractor

        extractor = ReverbExtractor()
        # Must not crash on non-ASCII or odd whitespace.
        for text in ("Einstein wön a Nobel", "  \t ", "Ω λ π", "a" * 5000):
            extractor.extract(text)

    def test_giant_k_is_fine(self, noisy_engine):
        answers = noisy_engine.ask("?x bornIn ?y", k=10_000)
        assert len(answers) >= 1


class TestEmptyStore:
    def test_empty_store_engine(self):
        engine = TriniT(TripleStore().freeze())
        answers = engine.ask("?x p ?y")
        assert answers.is_empty
        assert engine.suggest("?x 'anything' ?y") == []
