"""Ingest-while-query stress: live ingestion under concurrent load.

Several threads pour new statements through :meth:`TriniT.ingest` while
query threads hammer ``ask`` and ``stream`` on the same engine — with a
compaction threshold low enough that the engine compacts (and swaps
stores) repeatedly mid-flight.  The CI smoke runs this file under both
``TRINIT_EXECUTOR_KIND=thread`` and ``=process``.

Invariants under fire:

* no query or ingest ever raises;
* every answer batch is internally sane (scores descending);
* after the dust settles (threads joined, final compact), the engine
  holds exactly the union of the seeded and ingested statements, and its
  answers match a fresh-built reference engine as a set — ingestion
  interleaving may permute equal-weight ids across runs, so the ordered
  byte-identity contract lives in the property tests, and the stress
  asserts set equality at full depth instead.
"""

import threading

from repro.core.engine import EngineConfig, TriniT
from repro.core.terms import Resource
from repro.core.triples import Triple
from repro.storage.snapshot import save_snapshot
from repro.storage.store import TripleStore

PREDICATES = ["bornIn", "livesIn", "locatedIn", "type"]

SEED_ROWS = [
    (f"E{i % 11}", PREDICATES[i % 4], f"E{(i * 7 + 3) % 11}", 0.05 + (i % 18) / 20)
    for i in range(150)
]

#: Three disjoint ingest feeds (distinct subjects per feed, all new keys).
FEEDS = [
    [
        (f"N{feed}_{i}", PREDICATES[(feed + i) % 4], f"E{(i * 3 + feed) % 11}",
         0.1 + ((feed * 13 + i) % 16) / 20)
        for i in range(40)
    ]
    for feed in range(3)
]

QUERIES = ["?x bornIn ?y", "?x ?p ?y", "?x locatedIn ?y", "E1 ?p ?y"]

NO_MINING = dict(mine_arg_overlap=False, mine_chains=False, mine_inversions=False)


def _seed_engine(tmp_path):
    store = TripleStore("stress", backend="sharded")
    for s, p, o, conf in SEED_ROWS:
        store.add(Triple(Resource(s), Resource(p), Resource(o)), confidence=conf)
    store.freeze()
    path = tmp_path / "stress.snapd"
    save_snapshot(store, path)
    store.close()
    # executor_kind defaults from TRINIT_EXECUTOR_KIND — the CI smoke runs
    # this test under both "thread" and "process".
    return TriniT.open(
        path,
        config=EngineConfig(
            parallelism=4, compaction_threshold=25, **NO_MINING
        ),
    )


def _set_signature(answers):
    return sorted(((repr(a.binding), a.score) for a in answers))


def test_ingest_while_query_stress(tmp_path):
    engine = _seed_engine(tmp_path)
    errors: list[BaseException] = []
    stop = threading.Event()

    def ingester(feed):
        try:
            for s, p, o, conf in feed:
                engine.ingest(
                    [Triple(Resource(s), Resource(p), Resource(o))],
                    confidence=conf,
                )
        except BaseException as exc:  # noqa: BLE001 - collected for the report
            errors.append(exc)

    def querier(index):
        try:
            while not stop.is_set():
                text = QUERIES[index % len(QUERIES)]
                answers = engine.ask(text, k=10)
                scores = [a.score for a in answers]
                assert scores == sorted(scores, reverse=True)
                stream = engine.stream(text)
                first = list(stream.next_k(4))
                first.extend(stream.next_k(4))
                scores = [a.score for a in first]
                assert scores == sorted(scores, reverse=True)
                index += 1
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    ingesters = [threading.Thread(target=ingester, args=(feed,)) for feed in FEEDS]
    queriers = [threading.Thread(target=querier, args=(i,)) for i in range(2)]
    try:
        for thread in ingesters + queriers:
            thread.start()
        for thread in ingesters:
            thread.join(timeout=120)
        stop.set()
        for thread in queriers:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in ingesters + queriers)
        assert not errors, errors

        engine.compact()
        assert not engine.store.has_delta
        # Threshold 25 with 120 ingested statements: compaction must have
        # fired at least once (background or the final explicit call).
        assert engine.generation >= 1

        expected = len(SEED_ROWS) - _seed_duplicates() + sum(len(f) for f in FEEDS)
        assert len(engine.store) == expected

        reference = _reference_engine()
        try:
            for text in QUERIES:
                live = engine.ask(text, k=500)
                fresh = reference.ask(text, k=500)
                assert _set_signature(live) == _set_signature(fresh)
        finally:
            reference.close()
    finally:
        stop.set()
        engine.close()


def _seed_duplicates():
    seen = set()
    duplicates = 0
    for s, p, o, _conf in SEED_ROWS:
        if (s, p, o) in seen:
            duplicates += 1
        seen.add((s, p, o))
    return duplicates


def _reference_engine():
    store = TripleStore("stress", backend="sharded")
    for s, p, o, conf in SEED_ROWS:
        store.add(Triple(Resource(s), Resource(p), Resource(o)), confidence=conf)
    for feed in FEEDS:
        for s, p, o, conf in feed:
            store.add(Triple(Resource(s), Resource(p), Resource(o)), confidence=conf)
    store.freeze()
    return TriniT(
        store,
        config=EngineConfig(
            executor_kind="serial", merge_batch=1, parallelism=1, **NO_MINING
        ),
    )


def test_stream_opened_mid_ingest_completes(tmp_path):
    """A stream opened between ingests survives the store swap under it."""
    engine = _seed_engine(tmp_path)
    try:
        stream = engine.stream("?x ?p ?y")
        head = list(stream.next_k(5))
        assert len(head) == 5
        for feed in FEEDS:
            for s, p, o, conf in feed[:15]:
                engine.ingest(
                    [Triple(Resource(s), Resource(p), Resource(o))],
                    confidence=conf,
                )
        engine.compact()
        # The pinned stream keeps answering from its generation, to
        # exhaustion, with scores still descending across the swap.
        collected = head
        while True:
            batch = list(stream.next_k(50))
            if not batch:
                break
            collected.extend(batch)
        scores = [a.score for a in collected]
        assert scores == sorted(scores, reverse=True)
        # Opened before the first ingest, the stream answers exactly the
        # seeded statements — the post-swap store never leaks in.
        assert len(collected) == len(SEED_ROWS) - _seed_duplicates()
    finally:
        engine.close()
