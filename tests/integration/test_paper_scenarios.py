"""Integration tests: the four Figure 2 user scenarios, end to end.

These are the paper's motivating examples.  Each user's query fails (or is
impossible) under strict KG evaluation; TriniT with the Figure 4 rules and
the Figure 3 XKG extension answers all four.
"""

import pytest

from repro.core.terms import Resource, TextToken
from repro.kg.paper_example import paper_engine


@pytest.fixture(scope="module")
def engine():
    return paper_engine()


@pytest.fixture(scope="module")
def strict(engine):
    return engine.variant(
        use_relaxation=False,
        use_token_expansion=False,
        unknown_resource_fallback=False,
    )


class TestUserA:
    """'Who was born in Germany?' — KG stores birth *cities*."""

    QUERY = "?x bornIn Germany"

    def test_strict_fails(self, strict):
        assert strict.ask(self.QUERY).is_empty

    def test_trinit_answers(self, engine):
        answers = engine.ask(self.QUERY)
        assert answers.top().value("x") == Resource("AlbertEinstein")

    def test_explanation_shows_granularity_chain(self, engine):
        answers = engine.ask(self.QUERY)
        rendered = engine.explain(answers.top(), answers.query).render()
        assert "Ulm" in rendered           # the intermediate city
        assert "locatedIn" in rendered
        assert "Germany type country" in rendered  # the checked condition


class TestUserB:
    """'Who was the advisor of Albert Einstein?' — KG models hasStudent."""

    QUERY = "AlbertEinstein hasAdvisor ?x"

    def test_strict_fails(self, strict):
        assert strict.ask(self.QUERY).is_empty

    def test_trinit_answers(self, engine):
        answers = engine.ask(self.QUERY)
        assert answers.top().value("x") == Resource("AlfredKleiner")

    def test_inversion_rule_in_derivation(self, engine):
        answers = engine.ask(self.QUERY)
        rules = answers.top().derivation.rules_used()
        assert any("hasStudent" in rule.n3() for rule in rules)


class TestUserC:
    """'Ivy League university Einstein was affiliated with.' — IAS is only
    *housed in* Princeton; the KG cannot connect them."""

    QUERY = "SELECT ?x WHERE AlbertEinstein affiliation ?x ; ?x member IvyLeague"

    def test_strict_fails(self, strict):
        assert strict.ask(self.QUERY).is_empty

    def test_trinit_answers_princeton(self, engine):
        answers = engine.ask(self.QUERY)
        assert answers.top().value("x") == Resource("PrincetonUniversity")

    def test_explanation_matches_papers_narrative(self, engine):
        """The paper: 'A more useful answer would be PrincetonUniversity
        along with an explanation like the one above.'"""
        answers = engine.ask(self.QUERY)
        explanation = engine.explain(answers.top(), answers.query)
        rendered = explanation.render()
        assert "AlbertEinstein affiliation IAS" in rendered
        assert "housed in" in rendered
        assert explanation.used_xkg

    def test_score_attenuated_by_rule_weight(self, engine):
        answers = engine.ask(self.QUERY)
        assert answers.top().score <= 0.8  # rule 3's weight caps it


class TestUserD:
    """'What did Albert Einstein win a Nobel prize for?' — no KG predicate
    exists at all; only the XKG token triple knows.  (User D could not even
    *formulate* a KG query; the extended language plus the XKG make the
    information need expressible.)"""

    QUERY = "AlbertEinstein 'won nobel for' ?x"

    def test_kg_only_cannot_express(self):
        from repro.core.engine import TriniT
        from repro.kg.paper_example import paper_kg, paper_type_triples
        from repro.storage.store import TripleStore

        store = TripleStore("kg-only")
        for triple in paper_kg() + paper_type_triples():
            store.add(triple)
        kg_only = TriniT(store.freeze())
        assert kg_only.ask(self.QUERY).is_empty

    def test_trinit_answers_from_xkg(self, engine):
        answers = engine.ask(self.QUERY)
        top = answers.top()
        assert top.value("x") == TextToken("discovery of the photoelectric effect")

    def test_answer_provenance_is_extraction(self, engine):
        answers = engine.ask(self.QUERY)
        explanation = engine.explain(answers.top())
        assert explanation.used_xkg
        assert not explanation.kg_triples


class TestRanking:
    def test_all_four_users_answered(self, engine):
        queries = [
            TestUserA.QUERY,
            TestUserB.QUERY,
            TestUserC.QUERY,
            TestUserD.QUERY,
        ]
        for query in queries:
            assert not engine.ask(query).is_empty, query

    def test_exact_beats_relaxed_for_same_need(self, engine):
        exact = engine.ask("AlbertEinstein affiliation ?x").top()
        # IAS via exact match outranks Princeton via relaxation.
        assert exact.value("x") == Resource("IAS")
