"""Unit tests for the evaluation runner."""

import pytest

from repro.core.query import Query
from repro.core.terms import Resource, Term, Variable
from repro.eval.benchmark import Benchmark, BenchmarkQuery
from repro.eval.judgments import GRADE_EXACT, Judgments
from repro.eval.runner import evaluate_systems, run_query
from repro.kg.world import World, WorldConfig


@pytest.fixture(scope="module")
def world():
    return World.generate(WorldConfig(num_people=20, seed=3))


def make_query(world, answers):
    judgments = Judgments()
    for answer in answers:
        judgments.add(world, answer, GRADE_EXACT)
    return BenchmarkQuery(
        qid="q1",
        query_class="direct",
        text=f"?x bornIn {world.cities[0].id}",
        target="x",
        intent="test",
        judgments=judgments,
    )


class PerfectSystem:
    name = "perfect"

    def __init__(self, answers):
        self._answers = answers

    def rank(self, query, target, k):
        return [Resource(a) for a in self._answers[:k]]


class EmptySystem:
    name = "empty"

    def rank(self, query, target, k):
        return []


class CrashingSystem:
    name = "crashing"

    def rank(self, query, target, k):
        raise RuntimeError("boom")


class TestRunQuery:
    def test_perfect_scores_one(self, world):
        answers = [world.people[0].id, world.people[1].id]
        query = make_query(world, answers)
        result = run_query(PerfectSystem(answers), query, k=10)
        assert result.gains[:2] == [GRADE_EXACT, GRADE_EXACT]
        assert result.ndcg5 == pytest.approx(1.0)

    def test_empty_scores_zero(self, world):
        query = make_query(world, [world.people[0].id])
        result = run_query(EmptySystem(), query, k=10)
        assert result.ndcg5 == 0.0

    def test_crash_scores_zero_not_fatal(self, world):
        query = make_query(world, [world.people[0].id])
        result = run_query(CrashingSystem(), query, k=10)
        assert result.gains == []


class TestEvaluateSystems:
    def test_report_aggregates(self, world):
        answers = [world.people[0].id]
        benchmark = Benchmark(queries=[make_query(world, answers)])
        report = evaluate_systems(
            [PerfectSystem(answers), EmptySystem()], benchmark, k=5
        )
        assert report.by_name("perfect").ndcg5 == pytest.approx(1.0)
        assert report.by_name("empty").ndcg5 == 0.0

    def test_render_table(self, world):
        answers = [world.people[0].id]
        benchmark = Benchmark(queries=[make_query(world, answers)])
        report = evaluate_systems([PerfectSystem(answers)], benchmark)
        table = report.render_table()
        assert "NDCG@5" in table
        assert "perfect" in table

    def test_class_breakdown(self, world):
        answers = [world.people[0].id]
        benchmark = Benchmark(queries=[make_query(world, answers)])
        report = evaluate_systems([PerfectSystem(answers)], benchmark)
        breakdown = report.render_class_breakdown()
        assert "direct" in breakdown

    def test_unknown_system_raises(self, world):
        benchmark = Benchmark(queries=[make_query(world, [world.people[0].id])])
        report = evaluate_systems([EmptySystem()], benchmark)
        with pytest.raises(KeyError):
            report.by_name("ghost")
