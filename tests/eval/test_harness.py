"""Unit tests for the evaluation harness and scale profiles."""

import pytest

from repro.eval.harness import SCALE_PROFILES, EvalHarness, HarnessConfig
from repro.kg.world import WorldConfig
from repro.openie.corpus import CorpusConfig


class TestProfiles:
    def test_all_profiles_defined(self):
        assert set(SCALE_PROFILES) == {"tiny", "small", "medium", "large"}

    def test_profiles_scale_monotonically(self):
        sizes = [
            SCALE_PROFILES[name].world.num_people
            for name in ("tiny", "small", "medium", "large")
        ]
        assert sizes == sorted(sizes)

    def test_string_construction(self):
        harness = EvalHarness("tiny")
        assert harness.config.world.num_people == 60

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            EvalHarness("galactic")


class TestCaching:
    def test_components_cached(self, tiny_harness):
        assert tiny_harness.world is tiny_harness.world
        assert tiny_harness.xkg_store is tiny_harness.xkg_store
        assert tiny_harness.engine is tiny_harness.engine

    def test_kg_store_distinct_from_xkg(self, tiny_harness):
        assert tiny_harness.kg_store is not tiny_harness.xkg_store
        assert len(tiny_harness.kg_store) < len(tiny_harness.xkg_store)

    def test_all_systems_have_unique_names(self, tiny_harness):
        names = [s.name for s in tiny_harness.all_systems()]
        assert len(set(names)) == len(names)
        assert "trinit" in names

    def test_ablation_systems_have_unique_names(self, tiny_harness):
        names = [s.name for s in tiny_harness.ablation_systems()]
        assert len(set(names)) == len(names)
        assert len(names) == 5


class TestEngineSetup:
    def test_engine_has_granularity_rules(self, tiny_harness):
        labels = [r.label for r in tiny_harness.engine.rules]
        assert any("granularity" in label for label in labels)

    def test_engine_has_alias_rules(self, tiny_harness):
        origins = {r.origin for r in tiny_harness.engine.rules}
        assert "paraphrase" in origins

    def test_custom_config(self):
        config = HarnessConfig(
            world=WorldConfig(num_people=15, seed=99),
            corpus=CorpusConfig(num_popularity_documents=5),
        )
        harness = EvalHarness(config)
        assert len(harness.world.people) == 15
