"""Unit tests for world-derived judgments."""

import pytest

from repro.core.terms import Resource, TextToken
from repro.eval.judgments import GRADE_EXACT, GRADE_NEAR, Judgments
from repro.kg.world import World, WorldConfig


@pytest.fixture(scope="module")
def world():
    return World.generate(WorldConfig(num_people=30, seed=3))


class TestJudgments:
    def test_grade_by_entity_id(self, world):
        person = world.people[0]
        judgments = Judgments()
        judgments.add(world, person.id, GRADE_EXACT)
        assert judgments.grade(Resource(person.id)) == GRADE_EXACT

    def test_grade_by_surface_token(self, world):
        """A TextToken answer carrying the surface form counts."""
        person = world.people[0]
        judgments = Judgments()
        judgments.add(world, person.id, GRADE_EXACT)
        assert judgments.grade(TextToken(person.surface)) == GRADE_EXACT

    def test_irrelevant_term_zero(self, world):
        judgments = Judgments()
        judgments.add(world, world.people[0].id, GRADE_EXACT)
        assert judgments.grade(Resource("SomeoneElse")) == 0.0

    def test_higher_grade_wins(self, world):
        person = world.people[0]
        judgments = Judgments()
        judgments.add(world, person.id, GRADE_NEAR)
        judgments.add(world, person.id, GRADE_EXACT)
        judgments.add(world, person.id, GRADE_NEAR)
        assert judgments.grade(Resource(person.id)) == GRADE_EXACT

    def test_positive_gains_one_per_entity(self, world):
        judgments = Judgments()
        judgments.add(world, world.people[0].id, GRADE_EXACT)
        judgments.add(world, world.people[1].id, GRADE_NEAR)
        gains = judgments.positive_gains()
        assert sorted(gains, reverse=True) == [GRADE_EXACT, GRADE_NEAR]
        assert judgments.num_relevant == 2
        assert judgments.num_exact == 1

    def test_literal_values_judgeable(self, world):
        judgments = Judgments()
        judgments.add(world, "1879-03-14", GRADE_EXACT)
        assert judgments.grade(TextToken("1879-03-14")) == GRADE_EXACT
