"""Unit tests for ranking metrics."""

import math

import pytest

from repro.eval.metrics import (
    average_precision,
    dcg,
    mean,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)


class TestDcg:
    def test_single_item(self):
        assert dcg([3]) == pytest.approx((2**3 - 1) / math.log2(2))

    def test_discounting(self):
        # The same gain is worth less at a later rank.
        assert dcg([0, 3]) < dcg([3, 0])

    def test_k_truncation(self):
        assert dcg([3, 3, 3], k=1) == dcg([3])

    def test_zero_gains(self):
        assert dcg([0, 0, 0]) == 0.0


class TestNdcg:
    def test_perfect_ranking(self):
        assert ndcg_at_k([3, 1], [3, 1], 5) == pytest.approx(1.0)

    def test_perfect_despite_missing_tail_beyond_k(self):
        assert ndcg_at_k([3], [3], 5) == pytest.approx(1.0)

    def test_reversed_ranking_below_one(self):
        assert ndcg_at_k([1, 3], [3, 1], 5) < 1.0

    def test_relevant_at_rank_out_of_k(self):
        assert ndcg_at_k([0, 3], [3], 1) == 0.0

    def test_no_relevant_at_all(self):
        assert ndcg_at_k([0, 0], [], 5) == 0.0

    def test_graded_preference(self):
        # Placing the higher grade first must score strictly better.
        better = ndcg_at_k([3, 1], [3, 1], 5)
        worse = ndcg_at_k([1, 3], [3, 1], 5)
        assert better > worse

    def test_bounded(self):
        assert 0.0 <= ndcg_at_k([1, 0, 3], [3, 1, 1], 5) <= 1.0


class TestPrecisionRecall:
    def test_precision_at_k(self):
        assert precision_at_k([3, 0, 1, 0, 0], 5) == pytest.approx(0.4)

    def test_precision_counts_missing_ranks_as_misses(self):
        assert precision_at_k([3], 5) == pytest.approx(0.2)

    def test_precision_rejects_bad_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1], 0)

    def test_recall_at_k(self):
        assert recall_at_k([3, 0, 1], 4, 3) == pytest.approx(0.5)

    def test_recall_no_relevant(self):
        assert recall_at_k([0], 0, 5) == 0.0


class TestMapMrr:
    def test_average_precision(self):
        # Relevant at ranks 1 and 3, two relevant total.
        expected = (1 / 1 + 2 / 3) / 2
        assert average_precision([1, 0, 1], 2) == pytest.approx(expected)

    def test_average_precision_counts_unretrieved(self):
        assert average_precision([1], 2) == pytest.approx(0.5)

    def test_reciprocal_rank(self):
        assert reciprocal_rank([0, 0, 2]) == pytest.approx(1 / 3)

    def test_reciprocal_rank_none(self):
        assert reciprocal_rank([0, 0]) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
