"""Unit tests for the 70-query benchmark generator."""

import pytest

from repro.core.parser import parse_query
from repro.eval.benchmark import (
    QUERY_CLASSES,
    BenchmarkConfig,
    generate_benchmark,
    user_alias_rules,
)
from repro.kg.world import World, WorldConfig


@pytest.fixture(scope="module")
def world():
    return World.generate(WorldConfig(num_people=120, seed=3))


@pytest.fixture(scope="module")
def bench70(world):
    return generate_benchmark(world, BenchmarkConfig(queries_per_class=10))


class TestShape:
    def test_seventy_queries(self, bench70):
        assert len(bench70) == 70

    def test_all_classes_present(self, bench70):
        assert set(bench70.classes()) == set(QUERY_CLASSES)
        for query_class in QUERY_CLASSES:
            assert len(bench70.of_class(query_class)) == 10

    def test_qids_unique(self, bench70):
        qids = [q.qid for q in bench70]
        assert len(set(qids)) == len(qids)

    def test_deterministic(self, world):
        a = generate_benchmark(world, BenchmarkConfig(queries_per_class=5))
        b = generate_benchmark(world, BenchmarkConfig(queries_per_class=5))
        assert [q.text for q in a] == [q.text for q in b]

    def test_different_seed_differs(self, world):
        a = generate_benchmark(world, BenchmarkConfig(seed=1, queries_per_class=10))
        b = generate_benchmark(world, BenchmarkConfig(seed=2, queries_per_class=10))
        assert [q.text for q in a] != [q.text for q in b]


class TestQueries:
    def test_all_parse(self, bench70):
        for query in bench70:
            parsed = query.parse()
            assert query.target_variable in parsed.variables()

    def test_every_query_answerable(self, bench70):
        for query in bench70:
            assert query.judgments.num_relevant >= 1

    def test_misnomer_predicates_outside_kg_vocabulary(self, bench70):
        kg_predicates = {
            "bornIn", "bornOnDate", "diedIn", "citizenOf", "affiliation",
            "graduatedFrom", "hasStudent", "wonPrize", "marriedTo",
            "locatedIn", "member", "inField", "researchArea", "type",
            "subclassOf",
        }
        for query in bench70.of_class("misnomer"):
            parsed = query.parse()
            predicates = {
                p.p.lexical() for p in parsed.patterns if p.p.is_constant
            }
            assert not predicates & kg_predicates

    def test_join_queries_multi_pattern(self, bench70):
        for query in bench70.of_class("join"):
            assert len(query.parse().patterns) >= 2

    def test_synonym_queries_use_tokens(self, bench70):
        for query in bench70.of_class("synonym"):
            assert query.parse().has_token

    def test_granularity_targets_countries(self, world, bench70):
        country_ids = {c.id for c in world.countries}
        for query in bench70.of_class("granularity"):
            constants = {
                t.lexical()
                for p in query.parse().patterns
                for t in p.terms()
                if t.is_constant
            }
            assert constants & country_ids

    def test_judgments_match_world(self, world, bench70):
        """Spot-check: direct bornIn queries grade exactly the world set."""
        for query in bench70.of_class("direct"):
            if "bornIn" not in query.text:
                continue
            city = query.text.split()[-1]
            expected = set(world.subjects_of("bornInCity", city))
            graded = {
                entity
                for entity, grade in query.judgments.entities.items()
                if grade >= 3.0
            }
            assert graded == expected


class TestAliasRules:
    def test_alias_rules_well_formed(self):
        rules = user_alias_rules()
        assert rules
        assert all(0 < r.weight <= 1 for r in rules)
        names = {r.original[0].p.lexical() for r in rules}
        assert "hasAdvisor" in names
        assert "worksFor" in names
