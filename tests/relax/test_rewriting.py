"""Unit tests for rewrite-space enumeration."""

import pytest

from repro.core.parser import parse_query, parse_rule
from repro.relax.rewriting import RewriteEngine, canonical_form
from repro.relax.rules import RuleSet


def _rules(*texts):
    return RuleSet(parse_rule(t) for t in texts)


class TestCanonicalForm:
    def test_variable_renaming_invariant(self):
        a = parse_query("?x affiliation ?y ; ?y member IvyLeague")
        b = parse_query("?u affiliation ?v ; ?v member IvyLeague")
        assert canonical_form(a) == canonical_form(b)

    def test_pattern_order_invariant(self):
        b = parse_query("?x member IvyLeague ; AlbertEinstein affiliation ?x")
        c = parse_query("AlbertEinstein affiliation ?x ; ?x member IvyLeague")
        assert canonical_form(b) == canonical_form(c)

    def test_different_constants_differ(self):
        a = parse_query("?x bornIn Ulm")
        b = parse_query("?x bornIn Munich")
        assert canonical_form(a) != canonical_form(b)


class TestRewriteEngine:
    def test_original_first(self):
        engine = RewriteEngine(_rules("?x p ?y => ?x q ?y @ 0.5"))
        rewrites = engine.rewrites(parse_query("?a p ?b"))
        assert rewrites[0].is_original
        assert rewrites[0].weight == 1.0

    def test_weights_descending(self):
        engine = RewriteEngine(
            _rules(
                "?x p ?y => ?x q ?y @ 0.5",
                "?x p ?y => ?x r ?y @ 0.9",
                "?x q ?y => ?x s ?y @ 0.8",
            ),
            max_depth=2,
        )
        rewrites = engine.rewrites(parse_query("?a p ?b"))
        weights = [r.weight for r in rewrites]
        assert weights == sorted(weights, reverse=True)

    def test_depth_limit(self):
        engine = RewriteEngine(
            _rules("?x p ?y => ?x q ?y @ 0.9", "?x q ?y => ?x r ?y @ 0.9"),
            max_depth=1,
        )
        rewrites = engine.rewrites(parse_query("?a p ?b"))
        assert all(r.depth <= 1 for r in rewrites)
        predicates = {
            pattern.p.lexical() for r in rewrites for pattern in r.query.patterns
        }
        assert "r" not in predicates  # needs depth 2

    def test_depth_two_composition(self):
        engine = RewriteEngine(
            _rules("?x p ?y => ?x q ?y @ 0.9", "?x q ?y => ?x r ?y @ 0.8"),
            max_depth=2,
        )
        rewrites = engine.rewrites(parse_query("?a p ?b"))
        composed = [
            r
            for r in rewrites
            if any(p.p.lexical() == "r" for p in r.query.patterns)
        ]
        assert composed
        assert composed[0].weight == pytest.approx(0.9 * 0.8)

    def test_max_rewrites_budget(self):
        rules = _rules(*[f"?x p ?y => ?x q{i} ?y @ 0.9" for i in range(20)])
        engine = RewriteEngine(rules, max_rewrites=5)
        assert len(engine.rewrites(parse_query("?a p ?b"))) == 5

    def test_min_weight_prunes(self):
        engine = RewriteEngine(
            _rules("?x p ?y => ?x q ?y @ 0.1"), min_weight=0.5
        )
        rewrites = engine.rewrites(parse_query("?a p ?b"))
        assert len(rewrites) == 1  # only the original

    def test_dedup_by_canonical_form(self):
        # Two rule chains reach the same query; it must appear once, at the
        # higher weight (max over derivation sequences).
        engine = RewriteEngine(
            _rules(
                "?x p ?y => ?x q ?y @ 0.9",
                "?x p ?y => ?x m ?y @ 0.4",
                "?x m ?y => ?x q ?y @ 0.9",
            ),
            max_depth=2,
        )
        rewrites = engine.rewrites(parse_query("?a p ?b"))
        q_rewrites = [
            r
            for r in rewrites
            if any(p.p.lexical() == "q" for p in r.query.patterns)
        ]
        assert len(q_rewrites) == 1
        assert q_rewrites[0].weight == pytest.approx(0.9)

    def test_rule_filter(self):
        engine = RewriteEngine(
            _rules("?x p ?y => ?x q ?y @ 0.9"),
            rule_filter=lambda rule: False,
        )
        assert len(engine.rewrites(parse_query("?a p ?b"))) == 1

    def test_lazy_iteration(self):
        rules = _rules(*[f"?x p ?y => ?x q{i} ?y @ 0.9" for i in range(50)])
        engine = RewriteEngine(rules, max_rewrites=1000)
        iterator = engine.iter_rewrites(parse_query("?a p ?b"))
        first = next(iterator)
        assert first.is_original
        second = next(iterator)
        assert second.weight == pytest.approx(0.9)

    def test_describe(self):
        engine = RewriteEngine(_rules("?x p ?y => ?x q ?y @ 0.5"))
        rewrites = engine.rewrites(parse_query("?a p ?b"))
        assert "original" in rewrites[0].describe()
        assert "relaxed" in rewrites[1].describe()
