"""Unit tests for AMIE-style rule mining with PCA confidence."""

import pytest

from repro.core.terms import Resource
from repro.core.triples import Triple
from repro.relax.amie import mine_amie_rules
from repro.storage.statistics import StoreStatistics
from repro.storage.store import TripleStore


def _kg():
    """worksAt implied by employedBy for the subjects that have worksAt."""
    store = TripleStore()
    works = Resource("worksAt")
    employed = Resource("employedBy")
    # Three people with both facts (agreeing).
    for i in range(3):
        p, o = Resource(f"P{i}"), Resource(f"O{i}")
        store.add(Triple(p, works, o))
        store.add(Triple(p, employed, o))
    # One person with employedBy only — under PCA this is NOT a
    # counter-example because the subject has no worksAt fact at all.
    store.add(Triple(Resource("P9"), employed, Resource("O9")))
    # One genuine counter-example: has worksAt somewhere else.
    store.add(Triple(Resource("P8"), employed, Resource("O8")))
    store.add(Triple(Resource("P8"), works, Resource("Oother")))
    return store.freeze()


class TestPcaConfidence:
    def test_pca_ignores_unknown_subjects(self):
        rules = mine_amie_rules(
            StoreStatistics(_kg()),
            predicates=[Resource("worksAt")],
            min_support=2,
            min_confidence=0.1,
            mine_chains=False,
        )
        syn = [
            r
            for r in rules
            if r.replacement[0].p == Resource("employedBy")
            and r.label.startswith("amie-syn")
        ]
        assert syn
        # support 3; PCA body = 4 (P0-P2 and P8 have worksAt facts; P9 not
        # counted) → confidence 3/4, NOT 3/5.
        assert syn[0].weight == pytest.approx(3 / 4)

    def test_min_confidence_filters(self):
        rules = mine_amie_rules(
            StoreStatistics(_kg()),
            predicates=[Resource("worksAt")],
            min_confidence=0.9,
            mine_chains=False,
        )
        assert all(r.weight >= 0.9 for r in rules)

    def test_inversion_shape(self):
        store = TripleStore()
        adv, stu = Resource("hasAdvisor"), Resource("hasStudent")
        for i in range(3):
            a, b = Resource(f"A{i}"), Resource(f"B{i}")
            store.add(Triple(a, adv, b))
            store.add(Triple(b, stu, a))
        store.freeze()
        rules = mine_amie_rules(
            StoreStatistics(store), min_support=2, mine_chains=False
        )
        inv = [r for r in rules if "amie-inv" in r.label]
        assert inv
        assert inv[0].weight == pytest.approx(1.0)

    def test_chain_rules(self):
        store = TripleStore()
        grandpa = Resource("grandparentOf")
        parent = Resource("parentOf")
        for i in range(3):
            a = Resource(f"A{i}")
            b = Resource(f"B{i}")
            c = Resource(f"C{i}")
            store.add(Triple(a, parent, b))
            store.add(Triple(b, parent, c))
            store.add(Triple(a, grandpa, c))
        store.freeze()
        rules = mine_amie_rules(
            StoreStatistics(store),
            predicates=[grandpa],
            min_support=2,
            min_confidence=0.5,
        )
        chains = [r for r in rules if "amie-chain" in r.label]
        assert chains
        assert len(chains[0].replacement) == 2
        assert chains[0].replacement[0].p == parent
        assert chains[0].replacement[1].p == parent

    def test_token_predicates_ignored(self):
        from repro.core.terms import TextToken

        store = TripleStore()
        store.add(Triple(Resource("A"), TextToken("works at"), Resource("B")))
        store.add(Triple(Resource("A"), Resource("worksAt"), Resource("B")))
        store.freeze()
        rules = mine_amie_rules(StoreStatistics(store), min_support=1)
        for rule in rules:
            for pattern in rule.original + rule.replacement:
                assert not pattern.p.is_token

    def test_deterministic(self):
        stats = StoreStatistics(_kg())
        a = [r.n3() for r in mine_amie_rules(stats, min_support=1)]
        b = [r.n3() for r in mine_amie_rules(stats, min_support=1)]
        assert a == b
