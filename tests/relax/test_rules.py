"""Unit tests for relaxation rules: validation, unification, application."""

import itertools

import pytest

from repro.core.parser import parse_pattern, parse_query, parse_rule
from repro.core.query import Query
from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import TriplePattern
from repro.errors import RelaxationError
from repro.relax.rules import RelaxationRule, RuleSet

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
ADVISOR = Resource("hasAdvisor")
STUDENT = Resource("hasStudent")
AE = Resource("AlbertEinstein")


def fresh():
    return (f"f{i}" for i in itertools.count())


class TestValidation:
    def test_weight_bounds(self):
        pattern = TriplePattern(X, ADVISOR, Y)
        replacement = TriplePattern(Y, STUDENT, X)
        with pytest.raises(RelaxationError):
            RelaxationRule((pattern,), (replacement,), 0.0)
        with pytest.raises(RelaxationError):
            RelaxationRule((pattern,), (replacement,), 1.5)

    def test_empty_sides_rejected(self):
        pattern = TriplePattern(X, ADVISOR, Y)
        with pytest.raises(RelaxationError):
            RelaxationRule((), (pattern,), 1.0)
        with pytest.raises(RelaxationError):
            RelaxationRule((pattern,), (), 1.0)

    def test_must_share_a_variable(self):
        original = TriplePattern(X, ADVISOR, Y)
        unrelated = TriplePattern(Variable("a"), STUDENT, Variable("b"))
        with pytest.raises(RelaxationError):
            RelaxationRule((original,), (unrelated,), 1.0)

    def test_is_single_pattern(self):
        rule = parse_rule("?x hasAdvisor ?y => ?y hasStudent ?x")
        assert rule.is_single_pattern
        rule2 = parse_rule("?x a ?y ; ?y b ?z => ?x c ?z")
        assert not rule2.is_single_pattern

    def test_expands(self):
        rule = parse_rule("?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y")
        assert rule.expands

    def test_fresh_variables(self):
        rule = parse_rule("?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y")
        assert rule.fresh_variables() == (Z,)


class TestUnify:
    def test_unifies_with_constant_subject(self):
        rule = parse_rule("?x hasAdvisor ?y => ?y hasStudent ?x")
        query = parse_query("AlbertEinstein hasAdvisor ?a")
        results = list(rule.unify(query.patterns))
        assert len(results) == 1
        positions, theta = results[0]
        assert positions == (0,)
        assert theta[X] == AE
        assert theta[Y] == Variable("a")

    def test_constant_mismatch_fails(self):
        rule = parse_rule("?x hasAdvisor ?y => ?y hasStudent ?x")
        query = parse_query("AlbertEinstein hasStudent ?a")
        assert list(rule.unify(query.patterns)) == []

    def test_consistent_binding_required(self):
        rule = RelaxationRule(
            (TriplePattern(X, ADVISOR, X),),
            (TriplePattern(X, STUDENT, X),),
            1.0,
        )
        query = parse_query("AlbertEinstein hasAdvisor ?a")
        # rule var X must bind both AE and ?a — impossible.
        assert list(rule.unify(query.patterns)) == []

    def test_multi_pattern_unification(self):
        rule = parse_rule(
            "?x bornIn ?y ; ?y type country => ?x bornIn ?z ; ?z locatedIn ?y"
        )
        query = parse_query("?p bornIn ?c ; ?c type country")
        results = list(rule.unify(query.patterns))
        assert len(results) == 1


class TestApply:
    def test_simple_application(self):
        rule = parse_rule("?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0")
        query = parse_query("AlbertEinstein hasAdvisor ?a")
        applications = rule.apply(query, fresh())
        assert len(applications) == 1
        rewritten = applications[0].query
        assert rewritten.patterns == (
            TriplePattern(Variable("a"), STUDENT, AE),
        )

    def test_fresh_variable_renamed(self):
        rule = parse_rule(
            "?x affiliation ?y => ?x affiliation ?z ; ?z 'housed in' ?y @ 0.8"
        )
        query = parse_query("AlbertEinstein affiliation ?u")
        applications = rule.apply(query, fresh())
        assert len(applications) == 1
        new_vars = {
            v.name for p in applications[0].query.patterns for v in p.variables()
        }
        assert "u" in new_vars
        assert "z" not in new_vars  # renamed to a fresh name

    def test_no_op_skipped(self):
        rule = parse_rule("?x knows ?y => ?x knows ?y @ 0.9")
        query = parse_query("?a knows ?b")
        assert rule.apply(query, fresh()) == []

    def test_projection_preserving(self):
        rule = parse_rule("?x hasAdvisor ?y => ?y hasStudent ?x @ 1.0")
        query = parse_query("SELECT ?a WHERE AlbertEinstein hasAdvisor ?a")
        applications = rule.apply(query, fresh())
        assert applications[0].query.projection == (Variable("a"),)

    def test_condition_checked_against_store(self):
        rule = parse_rule(
            "?x bornIn ?y ; ?y type country => "
            "?x bornIn ?z ; ?z type city ; ?z locatedIn ?y @ 1.0"
        )
        query = parse_query("?x bornIn Germany")
        held = []

        def checker(pattern):
            held.append(pattern)
            return pattern.n3() == "Germany type country"

        applications = rule.apply(query, fresh(), checker)
        assert len(applications) == 1
        assert applications[0].conditions == (parse_pattern("Germany type country"),)

    def test_condition_rejected(self):
        rule = parse_rule(
            "?x bornIn ?y ; ?y type country => ?x bornIn ?z ; ?z locatedIn ?y @ 1.0"
        )
        query = parse_query("?x bornIn Ulm")  # Ulm is not a country
        applications = rule.apply(query, fresh(), lambda p: False)
        assert applications == []

    def test_no_conditions_without_checker(self):
        rule = parse_rule(
            "?x bornIn ?y ; ?y type country => ?x bornIn ?z ; ?z locatedIn ?y @ 1.0"
        )
        query = parse_query("?x bornIn Germany")
        # Without a checker, the two-pattern original cannot match the
        # one-pattern query at all.
        assert rule.apply(query, fresh()) == []


class TestRuleSet:
    def test_dedup_keeps_higher_weight(self):
        a = parse_rule("?x p ?y => ?y q ?x @ 0.5")
        b = parse_rule("?x p ?y => ?y q ?x @ 0.8")
        rules = RuleSet([a, b])
        assert len(rules) == 1
        assert next(iter(rules)).weight == 0.8

    def test_lower_weight_ignored(self):
        a = parse_rule("?x p ?y => ?y q ?x @ 0.8")
        b = parse_rule("?x p ?y => ?y q ?x @ 0.5")
        rules = RuleSet([a, b])
        assert next(iter(rules)).weight == 0.8

    def test_best_first(self):
        rules = RuleSet(
            [
                parse_rule("?x p ?y => ?x q ?y @ 0.3"),
                parse_rule("?x p ?y => ?x r ?y @ 0.9"),
            ]
        )
        assert [r.weight for r in rules.best_first()] == [0.9, 0.3]

    def test_filtered(self):
        rules = RuleSet(
            [
                parse_rule("?x p ?y => ?x q ?y @ 0.3"),
                parse_rule("?x p ?y => ?x r ?y @ 0.9"),
            ]
        )
        assert len(rules.filtered(0.5)) == 1

    def test_partition_by_arity(self):
        single = parse_rule("?x p ?y => ?x q ?y @ 0.5")
        multi = parse_rule("?x p ?y ; ?y t c => ?x q ?y @ 0.5")
        rules = RuleSet([single, multi])
        assert rules.single_pattern_rules() == [single]
        assert rules.multi_pattern_rules() == [multi]

    def test_by_origin(self):
        manual = parse_rule("?x p ?y => ?x q ?y @ 0.5")
        rules = RuleSet([manual])
        assert rules.by_origin("manual") == [manual]
        assert rules.by_origin("amie") == []

    def test_contains(self):
        rule = parse_rule("?x p ?y => ?x q ?y @ 0.5")
        rules = RuleSet([rule])
        assert rule in rules
