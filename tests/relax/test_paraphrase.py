"""Unit tests for the paraphrase repository and alias rules."""

import pytest

from repro.core.terms import Resource, TextToken, Variable
from repro.errors import RelaxationError
from repro.relax.paraphrase import (
    Paraphrase,
    ParaphraseRepository,
    paraphrase_rules,
    predicate_alias_rules,
)


class TestRepository:
    def test_add_and_len(self):
        repo = ParaphraseRepository()
        repo.add_alignment("affiliation", "works at", 0.9)
        repo.add_alignment("affiliation", "lectured at", 0.7)
        assert len(repo) == 2

    def test_duplicate_keeps_higher_score(self):
        repo = ParaphraseRepository()
        repo.add_alignment("affiliation", "works at", 0.5)
        repo.add_alignment("affiliation", "works at", 0.9)
        repo.add_alignment("affiliation", "works at", 0.3)
        assert len(repo) == 1
        assert next(iter(repo)).score == 0.9

    def test_inverted_is_distinct(self):
        repo = ParaphraseRepository()
        repo.add_alignment("hasStudent", "student of", 0.8, inverted=True)
        repo.add_alignment("hasStudent", "student of", 0.7, inverted=False)
        assert len(repo) == 2

    def test_score_bounds(self):
        with pytest.raises(RelaxationError):
            Paraphrase(Resource("p"), TextToken("q"), 0.0)

    def test_phrases_for(self):
        repo = ParaphraseRepository()
        repo.add_alignment("affiliation", "works at", 0.9)
        repo.add_alignment("affiliation", "lectured at", 0.7)
        repo.add_alignment("bornIn", "was born in", 0.95)
        found = repo.phrases_for(Resource("affiliation"))
        assert [p.phrase.norm for p in found] == ["works at", "lectured at"]

    def test_save_load_roundtrip(self, tmp_path):
        repo = ParaphraseRepository()
        repo.add_alignment("affiliation", "works at", 0.9)
        repo.add_alignment("hasStudent", "student of", 0.8, inverted=True)
        path = tmp_path / "paraphrases.json"
        repo.save(path)
        loaded = ParaphraseRepository.load(path)
        assert len(loaded) == 2
        assert {(p.predicate.name, p.phrase.norm, p.inverted) for p in loaded} == {
            (p.predicate.name, p.phrase.norm, p.inverted) for p in repo
        }


class TestParaphraseRules:
    def _repo(self):
        repo = ParaphraseRepository()
        repo.add_alignment("affiliation", "works at", 0.9)
        repo.add_alignment("hasStudent", "studied under", 0.8, inverted=True)
        return repo

    def test_both_directions(self):
        rules = paraphrase_rules(self._repo())
        assert len(rules) == 4
        renderings = {r.n3() for r in rules}
        assert "?x affiliation ?y => ?x 'works at' ?y @ 0.9" in renderings
        assert "?x 'works at' ?y => ?x affiliation ?y @ 0.9" in renderings

    def test_single_direction(self):
        rules = paraphrase_rules(self._repo(), both_directions=False)
        assert len(rules) == 2
        assert all(r.original[0].p.is_resource for r in rules)

    def test_inverted_alignment_flips_arguments(self):
        rules = paraphrase_rules(self._repo(), both_directions=False)
        inverted = [r for r in rules if r.original[0].p == Resource("hasStudent")]
        assert inverted[0].replacement[0].s == Variable("y")
        assert inverted[0].replacement[0].o == Variable("x")

    def test_min_score(self):
        rules = paraphrase_rules(self._repo(), min_score=0.85)
        assert all(r.weight >= 0.85 for r in rules)

    def test_origin(self):
        rules = paraphrase_rules(self._repo())
        assert all(r.origin == "paraphrase" for r in rules)


class TestAliasRules:
    def test_resource_target(self):
        rules = predicate_alias_rules([("worksFor", "affiliation", 0.9, False)])
        assert rules[0].n3() == "?x worksFor ?y => ?x affiliation ?y @ 0.9"

    def test_inverted_target(self):
        rules = predicate_alias_rules([("hasAdvisor", "hasStudent", 1.0, True)])
        assert rules[0].n3() == "?x hasAdvisor ?y => ?y hasStudent ?x @ 1"

    def test_phrase_target(self):
        rules = predicate_alias_rules([("lecturer", "'lectured at'", 0.8, False)])
        assert rules[0].replacement[0].p == TextToken("lectured at")
