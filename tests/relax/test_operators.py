"""Unit tests for the relaxation-operator plug-in API."""

import pytest

from repro.core.parser import parse_rule
from repro.errors import OperatorError
from repro.relax.operators import OperatorContext, OperatorRegistry, operator
from repro.relax.rules import RuleSet
from repro.storage.statistics import StoreStatistics


@pytest.fixture()
def context(frozen_small_store):
    return OperatorContext(frozen_small_store, StoreStatistics(frozen_small_store))


RULE_A = parse_rule("?x a ?y => ?x b ?y @ 0.5")
RULE_B = parse_rule("?x c ?y => ?x d ?y @ 0.7")


class TestRegistry:
    def test_register_and_run(self, context):
        registry = OperatorRegistry()
        registry.register("one", lambda ctx: [RULE_A])
        registry.register("two", lambda ctx: [RULE_B])
        rules = registry.run(context)
        assert len(rules) == 2

    def test_duplicate_name_rejected(self):
        registry = OperatorRegistry()
        registry.register("x", lambda ctx: [])
        with pytest.raises(OperatorError):
            registry.register("x", lambda ctx: [])

    def test_empty_name_rejected(self):
        registry = OperatorRegistry()
        with pytest.raises(OperatorError):
            registry.register("", lambda ctx: [])

    def test_non_callable_rejected(self):
        registry = OperatorRegistry()
        with pytest.raises(OperatorError):
            registry.register("x", "not callable")

    def test_disable_skips_operator(self, context):
        registry = OperatorRegistry()
        registry.register("one", lambda ctx: [RULE_A])
        registry.enable("one", False)
        assert len(registry.run(context)) == 0
        registry.enable("one", True)
        assert len(registry.run(context)) == 1

    def test_enable_unknown_raises(self):
        registry = OperatorRegistry()
        with pytest.raises(OperatorError):
            registry.enable("ghost")

    def test_unregister(self, context):
        registry = OperatorRegistry()
        registry.register("one", lambda ctx: [RULE_A])
        registry.unregister("one")
        assert "one" not in registry
        with pytest.raises(OperatorError):
            registry.unregister("one")

    def test_bad_production_reported_with_name(self, context):
        registry = OperatorRegistry()
        registry.register("bad", lambda ctx: ["not a rule"])
        with pytest.raises(OperatorError) as exc:
            registry.run(context)
        assert "bad" in str(exc.value)

    def test_none_production_tolerated(self, context):
        registry = OperatorRegistry()
        registry.register("noop", lambda ctx: None)
        assert len(registry.run(context)) == 0

    def test_run_into_existing_ruleset(self, context):
        registry = OperatorRegistry()
        registry.register("one", lambda ctx: [RULE_A])
        pool = RuleSet([RULE_B])
        result = registry.run(context, into=pool)
        assert result is pool
        assert len(pool) == 2

    def test_operator_receives_context(self, context):
        received = []
        registry = OperatorRegistry()
        registry.register("probe", lambda ctx: received.append(ctx) or [])
        registry.run(context)
        assert received[0] is context
        assert received[0].store is context.store

    def test_describe(self, context):
        registry = OperatorRegistry()
        registry.register("one", lambda ctx: [], description="does nothing")
        name, enabled, description = registry.describe()[0]
        assert (name, enabled, description) == ("one", True, "does nothing")


class TestDecorator:
    def test_decorator_registers(self, context):
        registry = OperatorRegistry()

        @operator(registry, "decorated")
        def my_operator(ctx):
            """Produces rule A."""
            return [RULE_A]

        assert "decorated" in registry
        assert len(registry.run(context)) == 1

    def test_docstring_used_as_description(self):
        registry = OperatorRegistry()

        @operator(registry, "documented")
        def my_operator(ctx):
            """From the docstring."""
            return []

        assert registry.describe()[0][2] == "From the docstring."
