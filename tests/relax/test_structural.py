"""Unit tests for structural rule generators (inversion, granularity, bridges)."""

import pytest

from repro.core.terms import Resource, TextToken, Variable
from repro.core.triples import Triple
from repro.relax.structural import (
    granularity_rules,
    inversion_rules,
    kg_to_token_bridge_rules,
)
from repro.storage.statistics import StoreStatistics
from repro.storage.store import TripleStore


def _inverse_store():
    store = TripleStore()
    adv, stu = Resource("hasAdvisor"), Resource("hasStudent")
    for i in range(4):
        a, b = Resource(f"A{i}"), Resource(f"B{i}")
        store.add(Triple(a, adv, b))
        store.add(Triple(b, stu, a))
    return store.freeze()


class TestInversionRules:
    def test_perfect_inverse_weight_one(self):
        rules = inversion_rules(StoreStatistics(_inverse_store()), min_support=2)
        pairs = {
            (r.original[0].p.lexical(), r.replacement[0].p.lexical()): r.weight
            for r in rules
        }
        assert pairs[("hasAdvisor", "hasStudent")] == pytest.approx(1.0)
        assert pairs[("hasStudent", "hasAdvisor")] == pytest.approx(1.0)

    def test_replacement_is_flipped(self):
        rules = inversion_rules(StoreStatistics(_inverse_store()), min_support=2)
        rule = rules[0]
        # original ?x p ?y, replacement ?y q ?x
        assert rule.original[0].s == Variable("x")
        assert rule.replacement[0].s == Variable("y")
        assert rule.replacement[0].o == Variable("x")

    def test_min_weight_filters_partial_inverses(self):
        store = TripleStore()
        adv, stu = Resource("hasAdvisor"), Resource("hasStudent")
        store.add(Triple(Resource("A"), adv, Resource("B")))
        store.add(Triple(Resource("B"), stu, Resource("A")))
        store.add(Triple(Resource("C"), stu, Resource("D")))
        store.add(Triple(Resource("E"), stu, Resource("F")))
        store.add(Triple(Resource("G"), stu, Resource("H")))
        store.freeze()
        rules = inversion_rules(
            StoreStatistics(store), min_support=1, min_weight=0.5
        )
        # adv → stu has weight 1/4 (one of four stu pairs) — filtered out.
        assert not any(
            r.original[0].p == adv and r.replacement[0].p == stu for r in rules
        )


class TestGranularityRules:
    def _geo_store(self):
        store = TripleStore()
        t = Resource("type")
        located = Resource("locatedIn")
        born = Resource("bornIn")
        cities = [Resource(f"City{i}") for i in range(3)]
        country = Resource("Freedonia")
        store.add(Triple(country, t, Resource("country")))
        for index, city in enumerate(cities):
            store.add(Triple(city, t, Resource("city")))
            store.add(Triple(city, located, country))
            store.add(Triple(Resource(f"P{index}"), born, city))
        return store.freeze()

    def test_rule_generated_for_city_predicates(self):
        stats = StoreStatistics(self._geo_store())
        rules = granularity_rules(
            stats,
            type_predicate=Resource("type"),
            containment_predicate=Resource("locatedIn"),
            fine_class=Resource("city"),
            coarse_class=Resource("country"),
        )
        born_rules = [r for r in rules if r.original[0].p == Resource("bornIn")]
        assert len(born_rules) == 1
        rule = born_rules[0]
        assert len(rule.original) == 2  # bornIn + type guard
        assert len(rule.replacement) == 3
        assert rule.weight == 1.0

    def test_skips_type_and_containment_predicates(self):
        stats = StoreStatistics(self._geo_store())
        rules = granularity_rules(
            stats,
            type_predicate=Resource("type"),
            containment_predicate=Resource("locatedIn"),
            fine_class=Resource("city"),
            coarse_class=Resource("country"),
        )
        heads = {r.original[0].p for r in rules}
        assert Resource("type") not in heads
        assert Resource("locatedIn") not in heads

    def test_no_fine_instances_no_rules(self):
        store = TripleStore()
        store.add(
            Triple(Resource("A"), Resource("bornIn"), Resource("B"))
        )
        store.freeze()
        rules = granularity_rules(
            StoreStatistics(store),
            type_predicate=Resource("type"),
            containment_predicate=Resource("locatedIn"),
            fine_class=Resource("city"),
            coarse_class=Resource("country"),
        )
        assert rules == []

    def test_min_fine_fraction(self):
        stats = StoreStatistics(self._geo_store())
        rules = granularity_rules(
            stats,
            type_predicate=Resource("type"),
            containment_predicate=Resource("locatedIn"),
            fine_class=Resource("city"),
            coarse_class=Resource("country"),
            min_fine_fraction=1.01,  # impossible
        )
        assert rules == []


class TestBridgeRules:
    def test_bridges_target_tokens_only(self):
        store = TripleStore()
        aff = Resource("affiliation")
        works = TextToken("works at")
        other = Resource("colleagueOf")
        for i in range(3):
            p, o = Resource(f"P{i}"), Resource(f"O{i}")
            store.add(Triple(p, aff, o))
            store.add(Triple(p, works, o))
            store.add(Triple(p, other, o))
        store.freeze()
        rules = kg_to_token_bridge_rules(StoreStatistics(store), min_support=2)
        assert rules
        for rule in rules:
            assert rule.original[0].p.is_resource
            assert any(
                term.is_token
                for pattern in rule.replacement
                for term in pattern.terms()
            )

    def test_empty_without_tokens(self):
        store = TripleStore()
        store.add(Triple(Resource("A"), Resource("p"), Resource("B")))
        store.freeze()
        assert kg_to_token_bridge_rules(StoreStatistics(store)) == []
